//! The step-program executor: the runtime of the "generated fuzz code".
//!
//! Where the paper compiles its generated C with Clang `-O2` and runs it
//! in-process under LibFuzzer, this reproduction executes the step-IR with a
//! tight register VM — still orders of magnitude faster than the
//! interpretive simulator, which is the property the evaluation relies on.

use cftcg_coverage::Recorder;
use cftcg_model::interp::{lookup1d, lookup2d};
use cftcg_model::Value;

use crate::compile::CompiledModel;
use crate::ir::Instr;
use crate::layout::TestCase;

/// An execution session over one compiled model: registers + state.
///
/// See the crate-level example for usage. `step` is generic over the
/// [`Recorder`] so the fuzz loop's branch bitmap monomorphizes to direct
/// stores.
#[derive(Debug, Clone)]
pub struct Executor<'c> {
    compiled: &'c CompiledModel,
    regs: Vec<f64>,
    state: Vec<f64>,
    inputs: Vec<f64>,
    outputs: Vec<f64>,
}

impl<'c> Executor<'c> {
    /// Creates an executor with freshly initialized state.
    pub fn new(compiled: &'c CompiledModel) -> Self {
        Executor {
            regs: vec![0.0; compiled.num_regs],
            state: compiled.state_init.clone(),
            inputs: vec![0.0; compiled.input_types.len()],
            outputs: vec![0.0; compiled.output_types.len()],
            compiled,
        }
    }

    /// The compiled model this executor runs.
    pub fn compiled(&self) -> &CompiledModel {
        self.compiled
    }

    /// Resets all state to initial conditions — the generated driver's
    /// `Model_init()` call, executed once per test case.
    pub fn reset(&mut self) {
        self.state.copy_from_slice(&self.compiled.state_init);
    }

    /// Executes one model iteration, collecting the outputs into a fresh
    /// `Vec`. Allocation-sensitive callers (per-iteration loops) should use
    /// [`Executor::step_into`] and reuse one buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the model's inport count.
    pub fn step<R: Recorder>(&mut self, inputs: &[Value], recorder: &mut R) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.compiled.output_types.len());
        self.step_into(inputs, &mut out, recorder);
        out
    }

    /// Executes one model iteration, writing the outputs into `out`
    /// (cleared first, capacity reused) — [`Executor::step`] without the
    /// per-iteration `Vec` allocation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the model's inport count.
    pub fn step_into<R: Recorder>(
        &mut self,
        inputs: &[Value],
        out: &mut Vec<Value>,
        recorder: &mut R,
    ) {
        assert_eq!(inputs.len(), self.compiled.input_types.len(), "input arity mismatch");
        for (slot, v) in self.inputs.iter_mut().zip(inputs) {
            *slot = v.as_f64();
        }
        self.run_body_owned(recorder);
        out.clear();
        out.extend(
            self.compiled
                .output_types
                .iter()
                .zip(&self.outputs)
                .map(|(ty, &x)| Value::from_f64(x, *ty)),
        );
    }

    /// Executes one iteration from a raw input tuple (driver fast path: no
    /// `Value` allocation).
    ///
    /// # Panics
    ///
    /// Panics if `tuple` is shorter than the layout's tuple size.
    pub fn step_tuple<R: Recorder>(&mut self, tuple: &[u8], recorder: &mut R) {
        let layout = self.compiled.layout();
        for (i, field) in layout.fields().iter().enumerate() {
            let v = Value::from_le_bytes(&tuple[field.offset..], field.dtype);
            self.inputs[i] = v.as_f64();
        }
        self.run_body_owned(recorder);
    }

    /// Runs a whole test case: `Model_init()` then one iteration per tuple,
    /// exactly like the generated `FuzzTestOneInput` of the paper's
    /// Figure 3. Returns the number of iterations executed.
    pub fn run_case<R: Recorder>(&mut self, case: &TestCase, recorder: &mut R) -> usize {
        self.reset();
        // Copy the `&'c` reference out of `self` so iterating the layout
        // doesn't hold a borrow of `self` (and doesn't clone the layout).
        let compiled: &'c CompiledModel = self.compiled;
        let mut iterations = 0;
        for tuple in compiled.layout().split(&case.bytes) {
            self.step_tuple(tuple, recorder);
            iterations += 1;
        }
        iterations
    }

    /// The current state vector (delay lines, chart variables, held
    /// outputs, ...). Together with [`Executor::set_state`] this lets
    /// search-based generators (the SLDV-like baseline) snapshot and
    /// restore execution states.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Restores a state vector captured with [`Executor::state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length for this model.
    pub fn set_state(&mut self, state: &[f64]) {
        self.state.copy_from_slice(state);
    }

    /// Reads one register of the current register file.
    ///
    /// With the registers listed in
    /// [`CompiledModel::signals`](crate::CompiledModel::signals) this is the
    /// VM's signal probe: after a step, `reg(meta.reg)` is the value block
    /// port `meta.name` produced (or held) this tick. Reading costs one
    /// index per probed signal — tracing is O(probed), not O(model).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range for this model's register file.
    pub fn reg(&self, reg: crate::ir::Reg) -> f64 {
        self.regs[reg as usize]
    }

    /// Current outport values (after a step).
    pub fn outputs(&self) -> Vec<Value> {
        self.compiled
            .output_types
            .iter()
            .zip(&self.outputs)
            .map(|(ty, &x)| Value::from_f64(x, *ty))
            .collect()
    }

    fn run_body_owned<R: Recorder>(&mut self, recorder: &mut R) {
        // Move the body out via the compiled reference to satisfy borrowck:
        // the program is immutable and lives as long as `self`.
        let program: &[Instr] = &self.compiled.program;
        run_body(
            program,
            &mut self.regs,
            &mut self.state,
            &self.inputs,
            &mut self.outputs,
            &self.compiled.tables1,
            &self.compiled.tables2,
            recorder,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_body<R: Recorder>(
    body: &[Instr],
    regs: &mut [f64],
    state: &mut [f64],
    inputs: &[f64],
    outputs: &mut [f64],
    tables1: &[(Vec<f64>, Vec<f64>)],
    tables2: &[crate::compile::Lookup2Table],
    recorder: &mut R,
) {
    for instr in body {
        match instr {
            Instr::Const { dst, value } => regs[*dst as usize] = *value,
            Instr::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Instr::Input { dst, index } => regs[*dst as usize] = inputs[*index],
            Instr::Output { index, src } => outputs[*index] = regs[*src as usize],
            Instr::Unop { dst, op, src } => {
                let x = regs[*src as usize];
                regs[*dst as usize] = match op {
                    crate::ir::UnopCode::Neg => -x,
                    crate::ir::UnopCode::Not => f64::from(x == 0.0),
                    crate::ir::UnopCode::Truthy => f64::from(x != 0.0),
                };
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let (l, r) = (regs[*lhs as usize], regs[*rhs as usize]);
                if matches!(
                    op,
                    crate::ir::BinopCode::Lt
                        | crate::ir::BinopCode::Le
                        | crate::ir::BinopCode::Gt
                        | crate::ir::BinopCode::Ge
                        | crate::ir::BinopCode::Eq
                        | crate::ir::BinopCode::Ne
                ) {
                    recorder.compare(l, r);
                }
                regs[*dst as usize] = op.apply(l, r);
            }
            Instr::Call { dst, func, args } => {
                let mut xs = [0.0f64; 3];
                for (i, a) in args.iter().enumerate() {
                    xs[i] = regs[*a as usize];
                }
                regs[*dst as usize] = func.apply(&xs[..args.len()]);
            }
            Instr::CastSat { dst, src, ty } => {
                regs[*dst as usize] = Value::from_f64(regs[*src as usize], *ty).as_f64();
            }
            Instr::LoadState { dst, slot } => regs[*dst as usize] = state[*slot],
            Instr::StoreState { slot, src } => state[*slot] = regs[*src as usize],
            Instr::ShiftState { base, len, src } => {
                state.copy_within(base + 1..base + len, *base);
                state[base + len - 1] = regs[*src as usize];
            }
            Instr::Lookup1 { dst, src, table } => {
                let (breaks, values) = &tables1[*table];
                regs[*dst as usize] = lookup1d(breaks, values, regs[*src as usize]);
            }
            Instr::Lookup2 { dst, row, col, table } => {
                let (rb, cb, values) = &tables2[*table];
                regs[*dst as usize] =
                    lookup2d(rb, cb, values, regs[*row as usize], regs[*col as usize]);
            }
            Instr::Probe { branch } => recorder.branch(*branch),
            Instr::Assert { id, cond } => {
                recorder.assertion(*id, regs[*cond as usize] != 0.0);
            }
            Instr::CondProbe { cond, src } => {
                recorder.condition(*cond, regs[*src as usize] != 0.0);
            }
            Instr::DecisionEval { decision, conds, outcome } => {
                let mut vector = 0u64;
                for (bit, c) in conds.iter().enumerate() {
                    if regs[*c as usize] != 0.0 {
                        vector |= 1 << bit;
                    }
                }
                let out = u32::from(regs[*outcome as usize] != 0.0);
                recorder.decision_eval(*decision, vector, out);
            }
            Instr::If { cond, then_body, else_body } => {
                let taken = regs[*cond as usize] != 0.0;
                let branch = if taken { then_body } else { else_body };
                run_body(branch, regs, state, inputs, outputs, tables1, tables2, recorder);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cftcg_coverage::{BranchBitmap, FullTracker, NullRecorder};
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn saturation_model() -> CompiledModel {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let sat = b.add("sat", BlockKind::Saturation { lower: -1.0, upper: 1.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn step_produces_expected_outputs() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        assert_eq!(exec.step(&[Value::F64(0.5)], &mut rec), vec![Value::F64(0.5)]);
        assert_eq!(exec.step(&[Value::F64(9.0)], &mut rec), vec![Value::F64(1.0)]);
        assert_eq!(exec.step(&[Value::F64(-9.0)], &mut rec), vec![Value::F64(-1.0)]);
    }

    #[test]
    fn probes_fire_into_bitmap() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut cov = BranchBitmap::new(compiled.map().branch_count());
        exec.step(&[Value::F64(9.0)], &mut cov);
        // Upper-limit decision true outcome fired; lower-limit decision
        // never evaluated this iteration.
        assert_eq!(cov.count(), 1);
        cov.clear();
        exec.step(&[Value::F64(0.0)], &mut cov);
        // Upper false + lower false.
        assert_eq!(cov.count(), 2);
    }

    #[test]
    fn run_case_resets_and_counts_iterations() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut tracker = FullTracker::new(compiled.map());
        let case = TestCase::new(vec![0u8; 8 * 3 + 2]); // 3 tuples + fragment
        assert_eq!(exec.run_case(&case, &mut tracker), 3);
    }

    #[test]
    fn full_tracker_scores_saturation() {
        use cftcg_coverage::CoverageReport;
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut tracker = FullTracker::new(compiled.map());
        for x in [0.0, 9.0, -9.0] {
            exec.step(&[Value::F64(x)], &mut tracker);
        }
        let report = CoverageReport::score(compiled.map(), &tracker);
        assert_eq!(report.decision.covered, 4);
        assert_eq!(report.decision.total, 4);
        assert_eq!(report.condition.percent(), 100.0);
        assert_eq!(report.mcdc.percent(), 100.0);
    }
}
