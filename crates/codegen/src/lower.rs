//! Lowering of the embedded expression/statement language (If-block
//! conditions, MATLAB Function bodies, chart guards and actions) to step-IR,
//! with mode-(d) instrumentation: every decision gets outcome probes,
//! condition probes, and an MCDC evaluation record.

use std::collections::HashMap;

use cftcg_model::expr::{BinOp, Expr, Stmt, UnaryOp};
use cftcg_model::{DataType, Value};

use crate::compile::Ctx;
use crate::ir::{BinopCode, FuncCode, Instr, Reg, UnopCode};

/// Where a named variable lives during lowering.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Place {
    /// A register (function inputs/outputs/locals, chart inputs).
    Reg(Reg),
    /// A state slot (chart variables and outputs).
    Slot(usize),
}

/// A variable binding: its storage plus the type assignments cast to
/// (`None` = untyped `double`, used by function locals).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Binding {
    pub place: Place,
    pub ty: Option<DataType>,
}

/// The name → binding map for one lowering scope.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    vars: HashMap<String, Binding>,
}

impl Scope {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn bind_reg(&mut self, name: &str, reg: Reg, ty: Option<DataType>) {
        self.vars.insert(name.to_string(), Binding { place: Place::Reg(reg), ty });
    }

    pub fn bind_slot(&mut self, name: &str, slot: usize, ty: DataType) {
        self.vars.insert(name.to_string(), Binding { place: Place::Slot(slot), ty: Some(ty) });
    }

    pub fn get(&self, name: &str) -> Option<Binding> {
        self.vars.get(name).copied()
    }
}

/// Lowers a *numeric* expression; the result register holds its value
/// (booleans as 0/1). No coverage probes are emitted — decisions use
/// [`lower_decision`].
pub(crate) fn lower_expr(ctx: &mut Ctx, body: &mut Vec<Instr>, scope: &Scope, expr: &Expr) -> Reg {
    match expr {
        Expr::Literal(v) => {
            let dst = ctx.reg();
            let value = match v {
                Value::Bool(b) => f64::from(*b),
                other => other.as_f64(),
            };
            body.push(Instr::Const { dst, value });
            dst
        }
        Expr::Var(name) => {
            let binding = scope
                .get(name)
                .unwrap_or_else(|| panic!("validated model references unknown var `{name}`"));
            match binding.place {
                Place::Reg(r) => r,
                Place::Slot(slot) => {
                    let dst = ctx.reg();
                    body.push(Instr::LoadState { dst, slot });
                    dst
                }
            }
        }
        Expr::Unary(op, inner) => {
            let src = lower_expr(ctx, body, scope, inner);
            let dst = ctx.reg();
            let op = match op {
                UnaryOp::Neg => UnopCode::Neg,
                UnaryOp::Not => UnopCode::Not,
            };
            body.push(Instr::Unop { dst, op, src });
            dst
        }
        Expr::Binary(op, lhs, rhs) => {
            let l = lower_expr(ctx, body, scope, lhs);
            let r = lower_expr(ctx, body, scope, rhs);
            let dst = ctx.reg();
            let code = match op {
                BinOp::Add => BinopCode::Add,
                BinOp::Sub => BinopCode::Sub,
                BinOp::Mul => BinopCode::Mul,
                BinOp::Div => BinopCode::Div,
                BinOp::Rem => BinopCode::Rem,
                BinOp::Lt => BinopCode::Lt,
                BinOp::Le => BinopCode::Le,
                BinOp::Gt => BinopCode::Gt,
                BinOp::Ge => BinopCode::Ge,
                BinOp::Eq => BinopCode::Eq,
                BinOp::Ne => BinopCode::Ne,
                BinOp::And => BinopCode::And,
                BinOp::Or => BinopCode::Or,
            };
            body.push(Instr::Binop { dst, op: code, lhs: l, rhs: r });
            dst
        }
        Expr::Call(name, args) => {
            let arg_regs: Vec<Reg> = args.iter().map(|a| lower_expr(ctx, body, scope, a)).collect();
            let func = FuncCode::from_builtin_name(name)
                .unwrap_or_else(|| panic!("validated model calls unknown function `{name}`"));
            let dst = ctx.reg();
            body.push(Instr::Call { dst, func, args: arg_regs });
            dst
        }
    }
}

/// Lowers a *decision* expression with full instrumentation: leaf conditions
/// get [`Instr::CondProbe`]s and map entries, the decision gets an MCDC
/// [`Instr::DecisionEval`], and both outcomes get branch [`Instr::Probe`]s.
///
/// Returns the 0/1 outcome register.
pub(crate) fn lower_decision(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    scope: &Scope,
    expr: &Expr,
    label: &str,
) -> Reg {
    let decision = ctx.map.begin_decision(label);
    let mut cond_regs = Vec::new();
    let outcome = lower_condition_tree(ctx, body, scope, expr, decision, label, &mut cond_regs);
    body.push(Instr::DecisionEval { decision, conds: cond_regs, outcome });
    let t = ctx.map.add_outcome(decision, format!("{label}: true"));
    let f = ctx.map.add_outcome(decision, format!("{label}: false"));
    body.push(Instr::If {
        cond: outcome,
        then_body: vec![Instr::Probe { branch: t }],
        else_body: vec![Instr::Probe { branch: f }],
    });
    outcome
}

/// Recursively lowers the boolean structure of a decision: `&&`/`||`/`!`
/// combine sub-results; any other node is a *leaf condition*.
fn lower_condition_tree(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    scope: &Scope,
    expr: &Expr,
    decision: cftcg_coverage::DecisionId,
    label: &str,
    cond_regs: &mut Vec<Reg>,
) -> Reg {
    match expr {
        Expr::Binary(op @ (BinOp::And | BinOp::Or), lhs, rhs) => {
            let l = lower_condition_tree(ctx, body, scope, lhs, decision, label, cond_regs);
            let r = lower_condition_tree(ctx, body, scope, rhs, decision, label, cond_regs);
            let dst = ctx.reg();
            let code = if *op == BinOp::And { BinopCode::And } else { BinopCode::Or };
            body.push(Instr::Binop { dst, op: code, lhs: l, rhs: r });
            dst
        }
        Expr::Unary(UnaryOp::Not, inner) => {
            let src = lower_condition_tree(ctx, body, scope, inner, decision, label, cond_regs);
            let dst = ctx.reg();
            body.push(Instr::Unop { dst, op: UnopCode::Not, src });
            dst
        }
        leaf => {
            let raw = lower_expr(ctx, body, scope, leaf);
            let b = ctx.reg();
            body.push(Instr::Unop { dst: b, op: UnopCode::Truthy, src: raw });
            let cond = ctx.map.add_condition(decision, format!("{label}: {leaf}"));
            body.push(Instr::CondProbe { cond, src: b });
            cond_regs.push(b);
            b
        }
    }
}

/// Lowers a statement list. Assignments cast to the target binding's type;
/// `if` statements are instrumented decisions (mode d), with the implicit
/// `else` branch completed by the decision's false probe.
pub(crate) fn lower_stmts(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    scope: &mut Scope,
    stmts: &[Stmt],
    label: &str,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(name, value) => {
                let src = lower_expr(ctx, body, scope, value);
                let binding = match scope.get(name) {
                    Some(b) => b,
                    None => {
                        // New local: an untyped double register.
                        let r = ctx.reg();
                        scope.bind_reg(name, r, None);
                        Binding { place: Place::Reg(r), ty: None }
                    }
                };
                let cast = match binding.ty {
                    Some(ty) if ty != DataType::F64 => {
                        let dst = ctx.reg();
                        body.push(Instr::CastSat { dst, src, ty });
                        dst
                    }
                    _ => src,
                };
                match binding.place {
                    Place::Reg(r) => body.push(Instr::Copy { dst: r, src: cast }),
                    Place::Slot(slot) => body.push(Instr::StoreState { slot, src: cast }),
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let outcome = lower_decision(ctx, body, scope, cond, label);
                let mut then_ir = Vec::new();
                let mut else_ir = Vec::new();
                // Both arms share the outer scope: variables assigned in a
                // branch must already exist outside it for deterministic
                // register identity. Pre-create locals assigned in either
                // arm so both arms write the same register.
                for var in stmt.assigned_vars() {
                    if scope.get(&var).is_none() {
                        let r = ctx.reg();
                        // Locals default to 0.0 when a branch skips them.
                        body.push(Instr::Const { dst: r, value: 0.0 });
                        scope.bind_reg(&var, r, None);
                    }
                }
                lower_stmts(ctx, &mut then_ir, scope, then_body, label);
                lower_stmts(ctx, &mut else_ir, scope, else_body, label);
                body.push(Instr::If { cond: outcome, then_body: then_ir, else_body: else_ir });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::expr::{parse_expr, parse_stmts};

    fn fresh_ctx() -> Ctx {
        Ctx::new()
    }

    #[test]
    fn literal_and_var_lowering() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let u = ctx.reg();
        scope.bind_reg("u", u, None);
        let e = parse_expr("u + 2.5").unwrap();
        let out = lower_expr(&mut ctx, &mut body, &scope, &e);
        assert!(out > u);
        assert!(matches!(body[0], Instr::Const { value, .. } if value == 2.5));
        assert!(matches!(body[1], Instr::Binop { op: BinopCode::Add, .. }));
    }

    #[test]
    fn slot_reads_emit_load_state() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let slot = ctx.slot(7.0);
        scope.bind_slot("count", slot, DataType::I32);
        let e = parse_expr("count + 1").unwrap();
        lower_expr(&mut ctx, &mut body, &scope, &e);
        assert!(matches!(body[0], Instr::LoadState { slot: s, .. } if s == slot));
    }

    #[test]
    fn decision_registers_conditions_in_bit_order() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        for name in ["a", "b", "c"] {
            let r = ctx.reg();
            scope.bind_reg(name, r, None);
        }
        let e = parse_expr("a && (b || !c)").unwrap();
        lower_decision(&mut ctx, &mut body, &scope, &e, "test");
        let map = ctx.map.clone().finish();
        assert_eq!(map.decision_count(), 1);
        assert_eq!(map.condition_count(), 3);
        assert_eq!(map.branch_count(), 2);
        assert_eq!(map.conditions()[0].bit, 0);
        assert_eq!(map.conditions()[2].bit, 2);
        assert!(map.conditions()[0].label.contains('a'));
        // DecisionEval carries three condition registers.
        let eval = body
            .iter()
            .find_map(|i| match i {
                Instr::DecisionEval { conds, .. } => Some(conds.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(eval, 3);
    }

    #[test]
    fn typed_assignment_emits_cast() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let slot = ctx.slot(0.0);
        scope.bind_slot("y", slot, DataType::U8);
        let stmts = parse_stmts("y = 300;").unwrap();
        lower_stmts(&mut ctx, &mut body, &mut scope, &stmts, "t");
        assert!(body.iter().any(|i| matches!(i, Instr::CastSat { ty: DataType::U8, .. })));
        assert!(body.iter().any(|i| matches!(i, Instr::StoreState { slot: s, .. } if *s == slot)));
    }

    #[test]
    fn untyped_local_has_no_cast() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let stmts = parse_stmts("tmp = 1.5;").unwrap();
        lower_stmts(&mut ctx, &mut body, &mut scope, &stmts, "t");
        assert!(!body.iter().any(|i| matches!(i, Instr::CastSat { .. })));
        assert!(scope.get("tmp").is_some());
    }

    #[test]
    fn if_stmt_produces_instrumented_branch() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let u = ctx.reg();
        scope.bind_reg("u", u, None);
        let stmts = parse_stmts("if (u > 0) { y = 1; } else { y = 2; }").unwrap();
        lower_stmts(&mut ctx, &mut body, &mut scope, &stmts, "blk");
        let map = ctx.map.clone().finish();
        assert_eq!(map.decision_count(), 1);
        assert_eq!(map.branch_count(), 2);
        assert_eq!(map.condition_count(), 1);
        // The structural If for the statement body exists beyond the probe If.
        let ifs = body.iter().filter(|i| matches!(i, Instr::If { .. })).count();
        assert_eq!(ifs, 2);
    }

    #[test]
    fn branch_locals_share_registers_across_arms() {
        let mut ctx = fresh_ctx();
        let mut body = Vec::new();
        let mut scope = Scope::new();
        let u = ctx.reg();
        scope.bind_reg("u", u, None);
        let stmts = parse_stmts("if (u > 0) { y = 1; } else { y = 2; } z = y;").unwrap();
        lower_stmts(&mut ctx, &mut body, &mut scope, &stmts, "blk");
        // `y` must resolve to one register visible after the If.
        assert!(scope.get("y").is_some());
        assert!(scope.get("z").is_some());
    }
}
