//! The step-IR mid-end: observation-preserving optimization passes.
//!
//! The paper runs Clang `-O2` over its generated C; this module is the
//! reproduction's stand-in for that back half. Three passes run over the
//! structured step-IR before flattening:
//!
//! 1. **Local value numbering** — one forward walk performing constant
//!    folding, copy propagation and common-subexpression elimination at
//!    once. Every fold reuses the *runtime* apply functions
//!    ([`BinopCode::apply`], [`FuncCode::apply`], `Value::from_f64`), so a
//!    compile-time fold is bit-identical to what the reference walker would
//!    have computed — including NaN payloads and signed zeros.
//! 2. **Dead-register elimination** — a fixpoint mark/sweep that removes
//!    pure definitions nothing reads.
//! 3. **Register-file compaction** — renumbers the surviving registers
//!    densely and remaps the [`SignalMeta`] table to match.
//!
//! # Observation preservation
//!
//! The optimizer must be invisible to every recorder and probe surface:
//!
//! * `Probe` / `CondProbe` / `DecisionEval` / `Assert` instructions are
//!   never reordered, shared, or deleted (except inside a branch that is
//!   *statically untaken*, which the reference walker would never execute
//!   either).
//! * Relational `Binop`s fire [`Recorder::compare`](cftcg_coverage::Recorder::compare)
//!   — the TORC mine — so they are pinned: never folded away, never CSE'd,
//!   never swept, even when both operands are constants (the destination is
//!   still *known* constant, which downstream `If` folding may exploit).
//! * Registers named by [`SignalMeta`] are the VM's signal-probe surface:
//!   every write to one is kept, and compaction remaps the table instead of
//!   discarding entries, so `cftcg-trace` probes and the lockstep auditor
//!   read the same values they would from the reference walker.
//! * `Output` sources are left untouched so the "outputs are driven by
//!   signal registers" contract (`ProbeMask::outputs`) survives rewriting.

use std::collections::{HashMap, HashSet};

use cftcg_model::{DataType, Value};

use crate::compile::SignalMeta;
use crate::ir::{instr_count, BinopCode, FuncCode, Instr, Reg, UnopCode};

/// Per-pass accounting for one [`optimize`] run — the numbers behind
/// `results/BENCH_vm.json`'s instruction-reduction columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions in the unoptimized program (recursing into `If` arms).
    pub instrs_before: usize,
    /// Instructions after local value numbering (fold + copy-prop + CSE).
    pub instrs_after_lvn: usize,
    /// Instructions after dead-register elimination.
    pub instrs_after_dce: usize,
    /// Register-file size before compaction.
    pub regs_before: usize,
    /// Register-file size after compaction.
    pub regs_after: usize,
    /// Pure instructions replaced by a compile-time constant.
    pub consts_folded: usize,
    /// `If`s with a statically-known condition inlined to one arm.
    pub branches_folded: usize,
    /// Instructions replaced by a copy of an earlier identical computation.
    pub cse_hits: usize,
    /// Operand reads redirected to an equivalent earlier register.
    pub operands_forwarded: usize,
    /// `Truthy(x)` normalizations of an already-boolean `x` (relational or
    /// logical result) strength-reduced to plain copies.
    pub bools_reduced: usize,
    /// Dead pure instructions swept (including emptied `If`s).
    pub instrs_removed: usize,
}

/// The result of running the mid-end over one step program.
#[derive(Debug, Clone)]
pub(crate) struct Optimized {
    /// The optimized structured program, in the compacted register space.
    pub program: Vec<Instr>,
    /// Compacted register-file size.
    pub num_regs: usize,
    /// The signal table remapped into the compacted register space.
    pub signals: Vec<SignalMeta>,
    /// Per-pass accounting.
    pub stats: OptStats,
}

/// Runs the full mid-end pipeline: value numbering, DCE, compaction.
pub(crate) fn optimize(program: &[Instr], num_regs: usize, signals: &[SignalMeta]) -> Optimized {
    let mut stats = OptStats {
        instrs_before: instr_count(program),
        regs_before: num_regs,
        ..OptStats::default()
    };

    let mut lvn = Lvn::new(num_regs);
    let mut body = Vec::with_capacity(program.len());
    lvn.run_body(program, &mut body);
    stats.consts_folded = lvn.consts_folded;
    stats.branches_folded = lvn.branches_folded;
    stats.cse_hits = lvn.cse_hits;
    stats.operands_forwarded = lvn.operands_forwarded;
    stats.bools_reduced = lvn.bools_reduced;
    stats.instrs_after_lvn = instr_count(&body);

    let sig_regs: HashSet<Reg> = signals.iter().map(|m| m.reg).collect();
    stats.instrs_removed = dce(&mut body, &sig_regs, true);
    stats.instrs_after_dce = instr_count(&body);

    let mut signals = signals.to_vec();
    let num_regs = compact(&mut body, &mut signals);
    stats.regs_after = num_regs;

    Optimized { program: body, num_regs, signals, stats }
}

/// Produces the probe-stripped program variant for recorders that promise
/// [`OBSERVES_PROBES`](cftcg_coverage::Recorder::OBSERVES_PROBES)` == false`
/// (replay, minimization baselines, pure-throughput benchmarks).
///
/// Strips `Probe`/`CondProbe`/`DecisionEval`/`Assert`, then re-runs DCE with
/// relational binops *unpinned* (a no-op `compare` makes them pure), in the
/// **same register space** as the optimized program: signal registers stay
/// roots, so `trace_vm_case` still reads correct values through this
/// variant.
/// Produces the batch tier's program variant: condition probes and MCDC
/// decision evaluations are dropped (the batched fuzz loop's lane recorder
/// observes neither), but `Probe`, `Assert`, and every relational binop
/// stay — the lanes still collect branch bitmaps, assertion verdicts, and
/// TORC compare operands.
///
/// Deliberately **no DCE pass** runs afterwards: unpinning relational
/// binops could delete a compare whose result only fed a stripped
/// `DecisionEval`, and losing that compare event would let the batched
/// loop misclassify a dictionary-earning input as boring (a byte-identity
/// bug, not a perf bug). The stripped-only registers still compute; their
/// cost is noise next to the dispatch win.
pub(crate) fn strip_decision_probes(program: &[Instr]) -> Vec<Instr> {
    let mut out = Vec::with_capacity(program.len());
    for instr in program {
        match instr {
            Instr::CondProbe { .. } | Instr::DecisionEval { .. } => {}
            Instr::If { cond, then_body, else_body } => out.push(Instr::If {
                cond: *cond,
                then_body: strip_decision_probes(then_body),
                else_body: strip_decision_probes(else_body),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

pub(crate) fn strip_probes(program: &[Instr], signals: &[SignalMeta]) -> Vec<Instr> {
    fn strip(body: &[Instr]) -> Vec<Instr> {
        let mut out = Vec::with_capacity(body.len());
        for instr in body {
            match instr {
                Instr::Probe { .. }
                | Instr::CondProbe { .. }
                | Instr::DecisionEval { .. }
                | Instr::Assert { .. } => {}
                Instr::If { cond, then_body, else_body } => out.push(Instr::If {
                    cond: *cond,
                    then_body: strip(then_body),
                    else_body: strip(else_body),
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }
    let mut body = strip(program);
    let sig_regs: HashSet<Reg> = signals.iter().map(|m| m.reg).collect();
    dce(&mut body, &sig_regs, false);
    body
}

// ---------------------------------------------------------------------------
// Pass 1: local value numbering (constant folding + copy prop + CSE).
// ---------------------------------------------------------------------------

type Vn = u32;

/// A value-numbered pure expression. `Load` carries the store epoch at
/// which it was read, so any intervening `StoreState`/`ShiftState` (or a
/// branch that might contain one) keys later loads differently.
#[derive(Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Input(usize),
    Unop(UnopCode, Vn),
    Binop(BinopCode, Vn, Vn),
    Call(FuncCode, Vec<Vn>),
    Cast(DataType, Vn),
    Load(usize, u64),
    Lookup1(usize, Vn),
    Lookup2(usize, Vn, Vn),
}

struct Lvn {
    /// Current value number per register. Registers start with a unique
    /// "program-entry value of r" number — *not* a constant: the register
    /// file persists across ticks, so the entry value is whatever last
    /// tick left behind.
    reg_vn: Vec<Vn>,
    next_vn: Vn,
    /// Value numbers with a known constant, by bit pattern.
    vn_const: HashMap<Vn, u64>,
    /// Dedup: identical constants share one value number.
    const_vn: HashMap<u64, Vn>,
    /// Preferred register currently holding a value number. Entries are
    /// only trusted when `reg_vn[home] == vn` still holds, which makes
    /// stale entries from sibling branches self-invalidating.
    home: HashMap<Vn, Reg>,
    /// Available pure expressions, validity-checked like `home`.
    exprs: HashMap<ExprKey, (Reg, Vn)>,
    /// Bumped by every state mutation; keys `ExprKey::Load`.
    store_epoch: u64,
    /// Value numbers proven to hold exactly 0.0 or 1.0 (relational and
    /// logical results) — the precondition for `Truthy` strength reduction.
    vn_bool: std::collections::HashSet<Vn>,
    consts_folded: usize,
    branches_folded: usize,
    cse_hits: usize,
    operands_forwarded: usize,
    bools_reduced: usize,
}

impl Lvn {
    fn new(num_regs: usize) -> Self {
        Lvn {
            reg_vn: (0..num_regs as Vn).collect(),
            next_vn: num_regs as Vn,
            vn_const: HashMap::new(),
            const_vn: HashMap::new(),
            home: HashMap::new(),
            exprs: HashMap::new(),
            store_epoch: 0,
            vn_bool: std::collections::HashSet::new(),
            consts_folded: 0,
            branches_folded: 0,
            cse_hits: 0,
            operands_forwarded: 0,
            bools_reduced: 0,
        }
    }

    /// Whether a value number is proven to be exactly 0.0 or 1.0.
    fn is_bool(&self, vn: Vn) -> bool {
        self.vn_bool.contains(&vn)
            || self
                .vn_const
                .get(&vn)
                .is_some_and(|&bits| bits == 0.0f64.to_bits() || bits == 1.0f64.to_bits())
    }

    fn fresh_vn(&mut self) -> Vn {
        let v = self.next_vn;
        self.next_vn += 1;
        v
    }

    fn vn_of(&self, reg: Reg) -> Vn {
        self.reg_vn[reg as usize]
    }

    /// The constant a register is known to hold, if any.
    fn const_of(&self, reg: Reg) -> Option<f64> {
        self.vn_const.get(&self.vn_of(reg)).map(|&bits| f64::from_bits(bits))
    }

    /// Redirects an operand read to the earliest register still holding the
    /// same value (copy propagation).
    fn resolve(&mut self, reg: Reg) -> Reg {
        let vn = self.vn_of(reg);
        if let Some(&h) = self.home.get(&vn) {
            if h != reg && self.reg_vn[h as usize] == vn {
                self.operands_forwarded += 1;
                return h;
            }
        }
        reg
    }

    /// Records that `dst` now holds `vn` and claims it as the value's home
    /// register when no earlier valid home exists.
    fn set(&mut self, dst: Reg, vn: Vn) {
        self.reg_vn[dst as usize] = vn;
        let valid = self.home.get(&vn).is_some_and(|&h| self.reg_vn[h as usize] == vn);
        if !valid {
            self.home.insert(vn, dst);
        }
    }

    /// Defines `dst` as a known constant, sharing the value number with any
    /// earlier identical constant so duplicates become copy-propagatable.
    fn set_const(&mut self, dst: Reg, value: f64) {
        let bits = value.to_bits();
        let vn = match self.const_vn.get(&bits) {
            Some(&vn) => vn,
            None => {
                let vn = self.fresh_vn();
                self.const_vn.insert(bits, vn);
                self.vn_const.insert(vn, bits);
                vn
            }
        };
        self.set(dst, vn);
    }

    /// Emits a folded constant definition.
    fn fold(&mut self, out: &mut Vec<Instr>, dst: Reg, value: f64) {
        self.consts_folded += 1;
        self.set_const(dst, value);
        out.push(Instr::Const { dst, value });
    }

    /// CSE lookup: reuse an earlier identical computation when its result
    /// register still holds the value, else emit `instr` as a new entry.
    fn cse(&mut self, out: &mut Vec<Instr>, key: ExprKey, dst: Reg, instr: Instr) {
        if let Some(&(r, vn)) = self.exprs.get(&key) {
            if self.reg_vn[r as usize] == vn {
                self.cse_hits += 1;
                out.push(Instr::Copy { dst, src: r });
                self.set(dst, vn);
                return;
            }
        }
        out.push(instr);
        let vn = self.fresh_vn();
        self.set(dst, vn);
        self.exprs.insert(key, (dst, vn));
    }

    fn run_body(&mut self, body: &[Instr], out: &mut Vec<Instr>) {
        for instr in body {
            match instr {
                Instr::Const { dst, value } => {
                    self.set_const(*dst, *value);
                    out.push(Instr::Const { dst: *dst, value: *value });
                }
                Instr::Copy { dst, src } => {
                    let s = self.resolve(*src);
                    let vn = self.vn_of(s);
                    out.push(Instr::Copy { dst: *dst, src: s });
                    self.set(*dst, vn);
                }
                Instr::Input { dst, index } => {
                    self.cse(
                        out,
                        ExprKey::Input(*index),
                        *dst,
                        Instr::Input { dst: *dst, index: *index },
                    );
                }
                // `Output` sources are deliberately not rewritten: outports
                // read their driver's signal register, and
                // `ProbeMask::outputs` matches on exactly that.
                Instr::Output { index, src } => {
                    out.push(Instr::Output { index: *index, src: *src });
                }
                Instr::Unop { dst, op, src } => {
                    let s = self.resolve(*src);
                    if let Some(x) = self.const_of(s) {
                        let value = match op {
                            UnopCode::Neg => -x,
                            UnopCode::Not => f64::from(x == 0.0),
                            UnopCode::Truthy => f64::from(x != 0.0),
                        };
                        self.fold(out, *dst, value);
                    } else if *op == UnopCode::Truthy && self.is_bool(self.vn_of(s)) {
                        // `Truthy` of a relational/logical result is the
                        // identity (those produce exactly 0.0 or 1.0):
                        // strength-reduce to a copy, which downstream
                        // copy-prop then forwards away entirely.
                        self.bools_reduced += 1;
                        out.push(Instr::Copy { dst: *dst, src: s });
                        self.set(*dst, self.vn_of(s));
                    } else {
                        self.cse(
                            out,
                            ExprKey::Unop(*op, self.vn_of(s)),
                            *dst,
                            Instr::Unop { dst: *dst, op: *op, src: s },
                        );
                        if matches!(op, UnopCode::Not | UnopCode::Truthy) {
                            self.vn_bool.insert(self.vn_of(*dst));
                        }
                    }
                }
                Instr::Binop { dst, op, lhs, rhs } => {
                    let l = self.resolve(*lhs);
                    let r = self.resolve(*rhs);
                    let consts = (self.const_of(l), self.const_of(r));
                    if op.is_relational() {
                        // Pinned: the instruction must execute so the TORC
                        // `compare` hook fires, but a constant *result*
                        // still feeds downstream `If` folding.
                        out.push(Instr::Binop { dst: *dst, op: *op, lhs: l, rhs: r });
                        match consts {
                            (Some(a), Some(b)) => self.set_const(*dst, op.apply(a, b)),
                            _ => {
                                let vn = self.fresh_vn();
                                self.set(*dst, vn);
                                self.vn_bool.insert(vn);
                            }
                        }
                    } else if let (Some(a), Some(b)) = consts {
                        self.fold(out, *dst, op.apply(a, b));
                    } else {
                        let (mut a, mut b) = (self.vn_of(l), self.vn_of(r));
                        if op.is_commutative_bitexact() && a > b {
                            std::mem::swap(&mut a, &mut b);
                        }
                        self.cse(
                            out,
                            ExprKey::Binop(*op, a, b),
                            *dst,
                            Instr::Binop { dst: *dst, op: *op, lhs: l, rhs: r },
                        );
                        if matches!(op, BinopCode::And | BinopCode::Or) {
                            self.vn_bool.insert(self.vn_of(*dst));
                        }
                    }
                }
                Instr::Call { dst, func, args } => {
                    let args: Vec<Reg> = args.iter().map(|a| self.resolve(*a)).collect();
                    let vals: Option<Vec<f64>> = args.iter().map(|&a| self.const_of(a)).collect();
                    if let Some(vals) = vals {
                        self.fold(out, *dst, func.apply(&vals));
                    } else {
                        let vns = args.iter().map(|&a| self.vn_of(a)).collect();
                        self.cse(
                            out,
                            ExprKey::Call(*func, vns),
                            *dst,
                            Instr::Call { dst: *dst, func: *func, args },
                        );
                    }
                }
                Instr::CastSat { dst, src, ty } => {
                    let s = self.resolve(*src);
                    if let Some(x) = self.const_of(s) {
                        self.fold(out, *dst, Value::from_f64(x, *ty).as_f64());
                    } else {
                        self.cse(
                            out,
                            ExprKey::Cast(*ty, self.vn_of(s)),
                            *dst,
                            Instr::CastSat { dst: *dst, src: s, ty: *ty },
                        );
                    }
                }
                Instr::LoadState { dst, slot } => {
                    self.cse(
                        out,
                        ExprKey::Load(*slot, self.store_epoch),
                        *dst,
                        Instr::LoadState { dst: *dst, slot: *slot },
                    );
                }
                Instr::StoreState { slot, src } => {
                    let s = self.resolve(*src);
                    out.push(Instr::StoreState { slot: *slot, src: s });
                    self.store_epoch += 1;
                    // Store-to-load forwarding: a load of this slot at the
                    // new epoch sees exactly the stored value.
                    self.exprs.insert(ExprKey::Load(*slot, self.store_epoch), (s, self.vn_of(s)));
                }
                Instr::ShiftState { base, len, src } => {
                    let s = self.resolve(*src);
                    out.push(Instr::ShiftState { base: *base, len: *len, src: s });
                    // A shift rewrites `len` slots at once; no forwarding.
                    self.store_epoch += 1;
                }
                Instr::Lookup1 { dst, src, table } => {
                    let s = self.resolve(*src);
                    self.cse(
                        out,
                        ExprKey::Lookup1(*table, self.vn_of(s)),
                        *dst,
                        Instr::Lookup1 { dst: *dst, src: s, table: *table },
                    );
                }
                Instr::Lookup2 { dst, row, col, table } => {
                    let r = self.resolve(*row);
                    let c = self.resolve(*col);
                    self.cse(
                        out,
                        ExprKey::Lookup2(*table, self.vn_of(r), self.vn_of(c)),
                        *dst,
                        Instr::Lookup2 { dst: *dst, row: r, col: c, table: *table },
                    );
                }
                Instr::Probe { branch } => out.push(Instr::Probe { branch: *branch }),
                Instr::CondProbe { cond, src } => {
                    let s = self.resolve(*src);
                    out.push(Instr::CondProbe { cond: *cond, src: s });
                }
                Instr::DecisionEval { decision, conds, outcome } => {
                    let conds = conds.iter().map(|c| self.resolve(*c)).collect();
                    let outcome = self.resolve(*outcome);
                    out.push(Instr::DecisionEval { decision: *decision, conds, outcome });
                }
                Instr::Assert { id, cond } => {
                    let c = self.resolve(*cond);
                    out.push(Instr::Assert { id: *id, cond: c });
                }
                Instr::If { cond, then_body, else_body } => {
                    let c = self.resolve(*cond);
                    if let Some(x) = self.const_of(c) {
                        // Statically-decided branch: inline the taken arm —
                        // but only when the untaken arm carries no declared
                        // instrumentation point. Runtime events would be
                        // identical either way (the arm never executes), but
                        // the emitted C must keep one probe site per branch
                        // the InstrumentationMap declares, even unreachable
                        // ones.
                        let (taken, dropped) =
                            if x != 0.0 { (then_body, else_body) } else { (else_body, then_body) };
                        if !contains_probe(dropped) {
                            self.branches_folded += 1;
                            self.run_body(taken, out);
                            continue;
                        }
                    }
                    let snapshot = self.reg_vn.clone();
                    let epoch_before = self.store_epoch;
                    let mut then_out = Vec::with_capacity(then_body.len());
                    self.run_body(then_body, &mut then_out);
                    let then_vns = std::mem::replace(&mut self.reg_vn, snapshot.clone());
                    // The else arm must not see the then arm's store-to-load
                    // forwarding entries (its stores never ran on this path),
                    // so move past every epoch the then arm touched.
                    if self.store_epoch != epoch_before {
                        self.store_epoch += 1;
                    }
                    let mut else_out = Vec::with_capacity(else_body.len());
                    self.run_body(else_body, &mut else_out);
                    // Merge: any register either arm may have written gets a
                    // fresh opaque value number in the join state.
                    for r in 0..self.reg_vn.len() {
                        if then_vns[r] != snapshot[r] || self.reg_vn[r] != snapshot[r] {
                            self.reg_vn[r] = self.fresh_vn();
                        }
                    }
                    // If either arm touched state, later loads must not
                    // match pre-branch (or in-branch) load/store entries.
                    if self.store_epoch != epoch_before {
                        self.store_epoch += 1;
                    }
                    out.push(Instr::If { cond: c, then_body: then_out, else_body: else_out });
                }
            }
        }
    }
}

/// Whether `body` contains a declared instrumentation point
/// (`Probe`/`CondProbe`/`DecisionEval`/`Assert`), recursively.
fn contains_probe(body: &[Instr]) -> bool {
    body.iter().any(|instr| match instr {
        Instr::Probe { .. }
        | Instr::CondProbe { .. }
        | Instr::DecisionEval { .. }
        | Instr::Assert { .. } => true,
        Instr::If { then_body, else_body, .. } => {
            contains_probe(then_body) || contains_probe(else_body)
        }
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Pass 2: dead-register elimination (fixpoint mark/sweep).
// ---------------------------------------------------------------------------

/// Removes pure definitions whose destination no surviving instruction
/// reads and that is not a signal register, iterating to a fixpoint
/// (removing a reader can kill its operands' definitions, and emptying an
/// `If` kills the condition read). Returns the number of instructions
/// removed.
///
/// `pin_relational` keeps relational binops unconditionally (their
/// `compare` side effect); the probe-stripped variant passes `false`.
fn dce(body: &mut Vec<Instr>, sig_regs: &HashSet<Reg>, pin_relational: bool) -> usize {
    let mut removed = 0;
    loop {
        let mut needed: HashSet<Reg> = sig_regs.clone();
        collect_reads(body, &mut needed);
        let swept = sweep(body, &needed, sig_regs, pin_relational);
        if swept == 0 {
            return removed;
        }
        removed += swept;
    }
}

/// Adds every register read by any instruction in `body` to `needed`.
fn collect_reads(body: &[Instr], needed: &mut HashSet<Reg>) {
    for instr in body {
        match instr {
            Instr::Const { .. } | Instr::Input { .. } | Instr::LoadState { .. } => {}
            Instr::Copy { src, .. }
            | Instr::Output { src, .. }
            | Instr::Unop { src, .. }
            | Instr::CastSat { src, .. }
            | Instr::StoreState { src, .. }
            | Instr::ShiftState { src, .. }
            | Instr::Lookup1 { src, .. }
            | Instr::CondProbe { src, .. } => {
                needed.insert(*src);
            }
            Instr::Binop { lhs, rhs, .. } => {
                needed.insert(*lhs);
                needed.insert(*rhs);
            }
            Instr::Call { args, .. } => needed.extend(args.iter().copied()),
            Instr::Lookup2 { row, col, .. } => {
                needed.insert(*row);
                needed.insert(*col);
            }
            Instr::Probe { .. } => {}
            Instr::DecisionEval { conds, outcome, .. } => {
                needed.extend(conds.iter().copied());
                needed.insert(*outcome);
            }
            Instr::Assert { cond, .. } => {
                needed.insert(*cond);
            }
            Instr::If { cond, then_body, else_body } => {
                needed.insert(*cond);
                collect_reads(then_body, needed);
                collect_reads(else_body, needed);
            }
        }
    }
}

/// One removal sweep against a fixed `needed` set. Returns removals.
fn sweep(
    body: &mut Vec<Instr>,
    needed: &HashSet<Reg>,
    sig_regs: &HashSet<Reg>,
    pin_relational: bool,
) -> usize {
    let mut removed = 0;
    body.retain_mut(|instr| {
        let keep = match instr {
            // Externally-visible effects are never swept.
            Instr::Output { .. }
            | Instr::StoreState { .. }
            | Instr::ShiftState { .. }
            | Instr::Probe { .. }
            | Instr::CondProbe { .. }
            | Instr::DecisionEval { .. }
            | Instr::Assert { .. } => true,
            Instr::Binop { dst, op, .. } if op.is_relational() => {
                pin_relational || needed.contains(dst) || sig_regs.contains(dst)
            }
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Input { dst, .. }
            | Instr::Unop { dst, .. }
            | Instr::Binop { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CastSat { dst, .. }
            | Instr::LoadState { dst, .. }
            | Instr::Lookup1 { dst, .. }
            | Instr::Lookup2 { dst, .. } => needed.contains(dst) || sig_regs.contains(dst),
            Instr::If { then_body, else_body, .. } => {
                removed += sweep(then_body, needed, sig_regs, pin_relational);
                removed += sweep(else_body, needed, sig_regs, pin_relational);
                !(then_body.is_empty() && else_body.is_empty())
            }
        };
        if !keep {
            removed += 1;
        }
        keep
    });
    removed
}

// ---------------------------------------------------------------------------
// Pass 3: register-file compaction.
// ---------------------------------------------------------------------------

/// Renumbers every register mentioned by `body` or the signal table into a
/// dense `0..n` space (ascending old-index order, so the remap is a stable
/// bijection) and rewrites both in place. Returns the new register count.
fn compact(body: &mut [Instr], signals: &mut [SignalMeta]) -> usize {
    let mut used: HashSet<Reg> = signals.iter().map(|m| m.reg).collect();
    collect_reads(body, &mut used);
    collect_writes(body, &mut used);
    let mut order: Vec<Reg> = used.into_iter().collect();
    order.sort_unstable();
    let map: HashMap<Reg, Reg> = order.iter().enumerate().map(|(i, &r)| (r, i as Reg)).collect();
    remap_body(body, &map);
    for meta in signals {
        meta.reg = map[&meta.reg];
    }
    order.len()
}

fn collect_writes(body: &[Instr], used: &mut HashSet<Reg>) {
    for instr in body {
        match instr {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Input { dst, .. }
            | Instr::Unop { dst, .. }
            | Instr::Binop { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CastSat { dst, .. }
            | Instr::LoadState { dst, .. }
            | Instr::Lookup1 { dst, .. }
            | Instr::Lookup2 { dst, .. } => {
                used.insert(*dst);
            }
            Instr::If { then_body, else_body, .. } => {
                collect_writes(then_body, used);
                collect_writes(else_body, used);
            }
            _ => {}
        }
    }
}

fn remap_body(body: &mut [Instr], map: &HashMap<Reg, Reg>) {
    let m = |r: &mut Reg| *r = map[r];
    for instr in body {
        match instr {
            Instr::Const { dst, .. } | Instr::Input { dst, .. } | Instr::LoadState { dst, .. } => {
                m(dst);
            }
            Instr::Copy { dst, src }
            | Instr::Unop { dst, src, .. }
            | Instr::CastSat { dst, src, .. }
            | Instr::Lookup1 { dst, src, .. } => {
                m(dst);
                m(src);
            }
            Instr::Output { src, .. }
            | Instr::StoreState { src, .. }
            | Instr::ShiftState { src, .. }
            | Instr::CondProbe { src, .. } => m(src),
            Instr::Binop { dst, lhs, rhs, .. } => {
                m(dst);
                m(lhs);
                m(rhs);
            }
            Instr::Call { dst, args, .. } => {
                m(dst);
                args.iter_mut().for_each(&m);
            }
            Instr::Lookup2 { dst, row, col, .. } => {
                m(dst);
                m(row);
                m(col);
            }
            Instr::Probe { .. } => {}
            Instr::DecisionEval { conds, outcome, .. } => {
                conds.iter_mut().for_each(&m);
                m(outcome);
            }
            Instr::Assert { cond, .. } => m(cond),
            Instr::If { cond, then_body, else_body } => {
                m(cond);
                remap_body(then_body, map);
                remap_body(else_body, map);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinopCode;
    use cftcg_coverage::BranchId;

    fn sig(name: &str, reg: Reg) -> SignalMeta {
        SignalMeta { name: name.into(), dtype: cftcg_model::DataType::F64, reg }
    }

    #[test]
    fn folds_constants_through_arithmetic() {
        let program = vec![
            Instr::Const { dst: 0, value: 2.0 },
            Instr::Const { dst: 1, value: 3.0 },
            Instr::Binop { dst: 2, op: BinopCode::Mul, lhs: 0, rhs: 1 },
            Instr::Output { index: 0, src: 2 },
        ];
        let opt = optimize(&program, 3, &[sig("m/b:0", 2)]);
        assert!(opt.stats.consts_folded >= 1);
        // The output's driver register now holds a folded constant.
        assert!(opt
            .program
            .iter()
            .any(|i| matches!(i, Instr::Const { value, .. } if *value == 6.0)));
    }

    #[test]
    fn cse_shares_repeated_pure_expressions() {
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::Unop { dst: 1, op: UnopCode::Neg, src: 0 },
            Instr::Unop { dst: 2, op: UnopCode::Neg, src: 0 },
            Instr::Binop { dst: 3, op: BinopCode::Add, lhs: 1, rhs: 2 },
            Instr::Output { index: 0, src: 3 },
        ];
        let opt = optimize(&program, 4, &[sig("m/b:0", 3)]);
        assert_eq!(opt.stats.cse_hits, 1);
        let negs = opt
            .program
            .iter()
            .filter(|i| matches!(i, Instr::Unop { op: UnopCode::Neg, .. }))
            .count();
        assert_eq!(negs, 1, "second negation shares the first: {:?}", opt.program);
    }

    #[test]
    fn relational_binops_survive_even_when_dead() {
        // Nothing reads r2, but the comparison fires `compare` (TORC), so
        // the instrumented program must keep it.
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::Const { dst: 1, value: 5.0 },
            Instr::Binop { dst: 2, op: BinopCode::Lt, lhs: 0, rhs: 1 },
            Instr::Output { index: 0, src: 0 },
        ];
        let opt = optimize(&program, 3, &[sig("m/b:0", 0)]);
        assert!(
            opt.program.iter().any(|i| matches!(i, Instr::Binop { op: BinopCode::Lt, .. })),
            "pinned relational swept: {:?}",
            opt.program
        );
        // The probe-stripped variant is free to drop it.
        let stripped = strip_probes(&opt.program, &opt.signals);
        assert!(!stripped.iter().any(|i| matches!(i, Instr::Binop { op: BinopCode::Lt, .. })));
    }

    #[test]
    fn compaction_remaps_signal_registers() {
        let program = vec![
            Instr::Input { dst: 100, index: 0 },
            Instr::Copy { dst: 200, src: 100 },
            Instr::Output { index: 0, src: 200 },
        ];
        let opt = optimize(&program, 201, &[sig("m/b:0", 200)]);
        assert_eq!(opt.num_regs, 2);
        assert_eq!(opt.signals[0].reg, 1);
        assert!(opt.num_regs < opt.stats.regs_before);
    }

    #[test]
    fn state_stores_split_load_cse() {
        // load; store; load — the second load must NOT be CSE'd to the
        // first (the store changed the slot), but store-to-load forwarding
        // may redirect it to the stored register.
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::LoadState { dst: 1, slot: 0 },
            Instr::StoreState { slot: 0, src: 0 },
            Instr::LoadState { dst: 2, slot: 0 },
            Instr::Binop { dst: 3, op: BinopCode::Sub, lhs: 2, rhs: 1 },
            Instr::Output { index: 0, src: 3 },
        ];
        let opt = optimize(&program, 4, &[sig("m/b:0", 3)]);
        // The second load forwards from the store's source (input), so the
        // subtraction must read two *different* sources.
        let sub = opt
            .program
            .iter()
            .find_map(|i| match i {
                Instr::Binop { op: BinopCode::Sub, lhs, rhs, .. } => Some((*lhs, *rhs)),
                _ => None,
            })
            .expect("subtraction survives");
        assert_ne!(sub.0, sub.1, "store must split load CSE: {:?}", opt.program);
    }

    #[test]
    fn probes_in_runtime_dead_else_survive_dce() {
        // The else arm computes nothing anyone reads — but its probe is a
        // declared instrumentation point, so DCE may sweep the dead
        // arithmetic yet must keep the probe, the arm, and the `If`.
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Probe { branch: BranchId(0) }],
                else_body: vec![
                    Instr::Probe { branch: BranchId(1) },
                    Instr::Unop { dst: 1, op: UnopCode::Neg, src: 0 },
                ],
            },
            Instr::Output { index: 0, src: 0 },
        ];
        let opt = optimize(&program, 2, &[sig("m/b:0", 0)]);
        let (then_body, else_body) = opt
            .program
            .iter()
            .find_map(|i| match i {
                Instr::If { then_body, else_body, .. } => Some((then_body, else_body)),
                _ => None,
            })
            .expect("the branch survives");
        assert_eq!(then_body.as_slice(), &[Instr::Probe { branch: BranchId(0) }]);
        assert_eq!(
            else_body.as_slice(),
            &[Instr::Probe { branch: BranchId(1) }],
            "dead arithmetic swept, probe kept"
        );
    }

    #[test]
    fn statically_dead_arm_with_probe_blocks_branch_folding() {
        // A constant condition normally inlines the taken arm — but not
        // when the dropped arm declares a probe site: the emitted C must
        // keep one `CoverageStatistics` call per mapped branch, reachable
        // or not.
        let program = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Probe { branch: BranchId(0) }],
                else_body: vec![Instr::Probe { branch: BranchId(1) }],
            },
            Instr::Output { index: 0, src: 0 },
        ];
        let opt = optimize(&program, 1, &[sig("m/b:0", 0)]);
        assert_eq!(opt.stats.branches_folded, 0);
        assert!(
            opt.program.iter().any(|i| matches!(i, Instr::If { .. })),
            "probe-bearing arm must not be folded away: {:?}",
            opt.program
        );
    }

    #[test]
    fn shift_state_aliasing_blocks_load_cse() {
        // A delay-line shift writes `state[base..base+len]` wholesale, so a
        // load of any slot in (or near) the line must not be CSE'd across
        // it — the epoch scheme treats every state mutation as a full
        // barrier.
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::LoadState { dst: 1, slot: 1 },
            Instr::ShiftState { base: 0, len: 3, src: 0 },
            Instr::LoadState { dst: 2, slot: 1 },
            Instr::Binop { dst: 3, op: BinopCode::Sub, lhs: 2, rhs: 1 },
            Instr::Output { index: 0, src: 3 },
        ];
        let opt = optimize(&program, 4, &[sig("m/b:0", 3)]);
        let loads =
            opt.program.iter().filter(|i| matches!(i, Instr::LoadState { slot: 1, .. })).count();
        assert_eq!(loads, 2, "both loads must execute: {:?}", opt.program);
    }

    #[test]
    fn nan_constant_folds_are_bit_exact() {
        // Folding must use the exact runtime arithmetic: 0/0 and inf-inf
        // produce NaNs whose bit patterns the fold must reproduce, because
        // downstream relational compares feed those bits to TORC.
        for (op, a, b) in [
            (BinopCode::Div, 0.0f64, 0.0f64),
            (BinopCode::Sub, f64::INFINITY, f64::INFINITY),
            (BinopCode::Add, f64::NAN, 1.0),
        ] {
            let program = vec![
                Instr::Const { dst: 0, value: a },
                Instr::Const { dst: 1, value: b },
                Instr::Binop { dst: 2, op, lhs: 0, rhs: 1 },
                Instr::Output { index: 0, src: 2 },
            ];
            let opt = optimize(&program, 3, &[sig("m/b:0", 2)]);
            let folded = opt
                .program
                .iter()
                .find_map(|i| match i {
                    Instr::Const { value, .. } if value.is_nan() => Some(*value),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{op:?} fold produced no NaN const: {:?}", opt.program));
            assert_eq!(
                folded.to_bits(),
                op.apply(a, b).to_bits(),
                "{op:?}({a}, {b}) folded to different bits"
            );
        }
    }

    #[test]
    fn else_arm_loads_never_forward_then_arm_stores() {
        // Regression: a then-arm `StoreState` used to leave a store-to-load
        // forwarding entry the else arm could match when the stored source
        // was defined before the branch, silently turning the else path's
        // load into a copy of a value that was never stored on that path
        // (CPUTask's queue chart miscounted its length this way).
        let program = vec![
            Instr::Input { dst: 0, index: 0 },
            Instr::Input { dst: 1, index: 1 },
            Instr::If {
                cond: 0,
                then_body: vec![Instr::StoreState { slot: 0, src: 1 }],
                else_body: vec![Instr::LoadState { dst: 2, slot: 0 }],
            },
            Instr::Output { index: 0, src: 2 },
        ];
        let opt = optimize(&program, 3, &[sig("m/b:0", 2)]);
        let else_body = opt
            .program
            .iter()
            .find_map(|i| match i {
                Instr::If { else_body, .. } => Some(else_body),
                _ => None,
            })
            .expect("the branch survives");
        assert!(
            else_body.iter().any(|i| matches!(i, Instr::LoadState { slot: 0, .. })),
            "else arm must still load the slot: {:?}",
            opt.program
        );
    }
}
