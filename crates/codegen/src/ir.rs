//! The step-IR: a structured instruction tree over an `f64` register file.
//!
//! All numeric signals live in `f64` registers (every supported integer
//! type embeds exactly in `f64`); booleans are `0.0`/`1.0`. Typed storage
//! semantics are explicit [`Instr::CastSat`] instructions, so the VM stays a
//! tight scalar machine while reproducing saturating fixed-point behaviour.

use std::fmt;

use cftcg_coverage::{AssertionId, BranchId, ConditionId, DecisionId};
use cftcg_model::DataType;

/// A register index in the step program's `f64` register file.
pub type Reg = u32;

/// Unary operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnopCode {
    /// `-x`
    Neg,
    /// `(x == 0) ? 1 : 0`
    Not,
    /// `(x != 0) ? 1 : 0`
    Truthy,
}

/// Binary operation codes. Comparisons yield `0.0`/`1.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinopCode {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// C `fmod`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// both truthy
    And,
    /// either truthy
    Or,
}

impl BinopCode {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, l: f64, r: f64) -> f64 {
        match self {
            BinopCode::Add => l + r,
            BinopCode::Sub => l - r,
            BinopCode::Mul => l * r,
            BinopCode::Div => l / r,
            BinopCode::Rem => l % r,
            BinopCode::Lt => bool_f64(l < r),
            BinopCode::Le => bool_f64(l <= r),
            BinopCode::Gt => bool_f64(l > r),
            BinopCode::Ge => bool_f64(l >= r),
            BinopCode::Eq => bool_f64(l == r),
            BinopCode::Ne => bool_f64(l != r),
            BinopCode::And => bool_f64(l != 0.0 && r != 0.0),
            BinopCode::Or => bool_f64(l != 0.0 || r != 0.0),
        }
    }

    /// Whether the operation is a relational comparison (`<`, `<=`, `>`,
    /// `>=`, `==`, `!=`).
    ///
    /// Relational binops are *observable*: executing one fires the
    /// recorder's [`compare`](cftcg_coverage::Recorder::compare) hook (the
    /// TORC mine), so the optimizer must never fold, share, or drop them,
    /// and the VM dispatches them through a dedicated opcode instead of
    /// re-testing the code at run time.
    #[inline]
    pub const fn is_relational(self) -> bool {
        matches!(
            self,
            BinopCode::Lt
                | BinopCode::Le
                | BinopCode::Gt
                | BinopCode::Ge
                | BinopCode::Eq
                | BinopCode::Ne
        )
    }

    /// Whether swapping the operands cannot change the result bit pattern.
    ///
    /// Deliberately excludes float `Add`/`Mul`: IEEE addition is commutative
    /// for numeric results but the NaN *payload* of `NaN + NaN` follows
    /// operand order on common hardware, and the optimizer promises
    /// bit-exact equivalence with the reference walker.
    #[inline]
    pub(crate) const fn is_commutative_bitexact(self) -> bool {
        matches!(self, BinopCode::And | BinopCode::Or)
    }

    /// The C operator spelling (for emission).
    pub const fn c_symbol(self) -> &'static str {
        match self {
            BinopCode::Add => "+",
            BinopCode::Sub => "-",
            BinopCode::Mul => "*",
            BinopCode::Div => "/",
            BinopCode::Rem => "%",
            BinopCode::Lt => "<",
            BinopCode::Le => "<=",
            BinopCode::Gt => ">",
            BinopCode::Ge => ">=",
            BinopCode::Eq => "==",
            BinopCode::Ne => "!=",
            BinopCode::And => "&&",
            BinopCode::Or => "||",
        }
    }
}

#[inline]
fn bool_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Builtin function codes, unifying the expression-language builtins and the
/// Math block functions. Application delegates to the *same* definitions the
/// interpreter uses ([`cftcg_model::expr::apply_builtin`] /
/// [`cftcg_model::MathFunc::apply`]), so the engines cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncCode {
    /// One of the expression-language builtins, by table index into
    /// [`cftcg_model::expr::BUILTINS`].
    Builtin(u8),
    /// A Math block function.
    Math(cftcg_model::MathFunc),
}

impl FuncCode {
    /// Resolves an expression-language builtin by name.
    pub fn from_builtin_name(name: &str) -> Option<FuncCode> {
        cftcg_model::expr::BUILTINS
            .iter()
            .position(|(n, _)| *n == name)
            .map(|i| FuncCode::Builtin(i as u8))
    }

    /// The function's name (for C emission).
    pub fn name(self) -> &'static str {
        match self {
            FuncCode::Builtin(i) => cftcg_model::expr::BUILTINS[i as usize].0,
            FuncCode::Math(f) => f.name(),
        }
    }

    /// Applies the function.
    ///
    /// # Panics
    ///
    /// Panics on an arity mismatch — lowering always supplies the declared
    /// arity.
    #[inline]
    pub fn apply(self, args: &[f64]) -> f64 {
        match self {
            FuncCode::Builtin(i) => {
                let name = cftcg_model::expr::BUILTINS[i as usize].0;
                cftcg_model::expr::apply_builtin(name, args)
                    .expect("lowering supplies the declared arity")
            }
            FuncCode::Math(f) => f.apply(args),
        }
    }
}

/// One step-IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate.
        value: f64,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = model_inputs[index]` (already cast to the inport type).
    Input {
        /// Destination register.
        dst: Reg,
        /// Inport index.
        index: usize,
    },
    /// `model_outputs[index] = src`
    Output {
        /// Outport index.
        index: usize,
        /// Source register.
        src: Reg,
    },
    /// `dst = op(src)`
    Unop {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: UnopCode,
        /// Operand register.
        src: Reg,
    },
    /// `dst = op(lhs, rhs)`
    Binop {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: BinopCode,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = func(args...)`
    Call {
        /// Destination register.
        dst: Reg,
        /// Function.
        func: FuncCode,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// `dst = saturating_cast(src, ty)` — the value is stored back as `f64`.
    CastSat {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
        /// Storage type emulated.
        ty: DataType,
    },
    /// `dst = state[slot]`
    LoadState {
        /// Destination register.
        dst: Reg,
        /// State slot.
        slot: usize,
    },
    /// `state[slot] = src`
    StoreState {
        /// State slot.
        slot: usize,
        /// Source register.
        src: Reg,
    },
    /// Delay-line shift: `state[base..base+len-1] = state[base+1..]`,
    /// `state[base+len-1] = src`.
    ShiftState {
        /// First slot of the line.
        base: usize,
        /// Line length (≥ 1).
        len: usize,
        /// Newest value.
        src: Reg,
    },
    /// `dst = lookup1d(tables[table], src)`
    Lookup1 {
        /// Destination register.
        dst: Reg,
        /// Input register.
        src: Reg,
        /// 1-D table index.
        table: usize,
    },
    /// `dst = lookup2d(tables2[table], row, col)`
    Lookup2 {
        /// Destination register.
        dst: Reg,
        /// Row input register.
        row: Reg,
        /// Column input register.
        col: Reg,
        /// 2-D table index.
        table: usize,
    },
    /// `CoverageStatistics(branch)` — a branch probe (decision outcome hit).
    Probe {
        /// The branch.
        branch: BranchId,
    },
    /// Records the value of a coverage condition.
    CondProbe {
        /// The condition.
        cond: ConditionId,
        /// Register holding the (0/1) condition value.
        src: Reg,
    },
    /// Records a boolean decision evaluation for MCDC: the condition bit
    /// vector is assembled from `conds` (bit *i* ← `conds[i]`), the outcome
    /// from `outcome`.
    DecisionEval {
        /// The decision.
        decision: DecisionId,
        /// Condition registers in bit order.
        conds: Vec<Reg>,
        /// Register holding the (0/1) decision outcome.
        outcome: Reg,
    },
    /// Run-time assertion check: reports `cond != 0` to the recorder.
    Assert {
        /// The assertion.
        id: AssertionId,
        /// Register holding the asserted condition.
        cond: Reg,
    },
    /// Structured conditional.
    If {
        /// Condition register (truthy test).
        cond: Reg,
        /// Instructions when truthy.
        then_body: Vec<Instr>,
        /// Instructions otherwise.
        else_body: Vec<Instr>,
    },
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "r{dst} = {value}"),
            Instr::Copy { dst, src } => write!(f, "r{dst} = r{src}"),
            Instr::Input { dst, index } => write!(f, "r{dst} = input[{index}]"),
            Instr::Output { index, src } => write!(f, "output[{index}] = r{src}"),
            Instr::Unop { dst, op, src } => write!(f, "r{dst} = {op:?}(r{src})"),
            Instr::Binop { dst, op, lhs, rhs } => {
                write!(f, "r{dst} = r{lhs} {} r{rhs}", op.c_symbol())
            }
            Instr::Call { dst, func, args } => {
                write!(f, "r{dst} = {}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "r{a}")?;
                }
                write!(f, ")")
            }
            Instr::CastSat { dst, src, ty } => write!(f, "r{dst} = ({ty})r{src}"),
            Instr::LoadState { dst, slot } => write!(f, "r{dst} = state[{slot}]"),
            Instr::StoreState { slot, src } => write!(f, "state[{slot}] = r{src}"),
            Instr::ShiftState { base, len, src } => {
                write!(f, "shift state[{base}..{}] <- r{src}", base + len)
            }
            Instr::Lookup1 { dst, src, table } => {
                write!(f, "r{dst} = lookup1d(table{table}, r{src})")
            }
            Instr::Lookup2 { dst, row, col, table } => {
                write!(f, "r{dst} = lookup2d(table{table}, r{row}, r{col})")
            }
            Instr::Probe { branch } => write!(f, "CoverageStatistics({branch})"),
            Instr::CondProbe { cond, src } => write!(f, "ConditionProbe({cond}, r{src})"),
            Instr::DecisionEval { decision, conds, outcome } => {
                write!(f, "DecisionEval({decision}, {} conds, r{outcome})", conds.len())
            }
            Instr::Assert { id, cond } => write!(f, "assert({id}, r{cond})"),
            Instr::If { cond, then_body, else_body } => write!(
                f,
                "if r{cond} {{ {} instrs }} else {{ {} instrs }}",
                then_body.len(),
                else_body.len()
            ),
        }
    }
}

/// Counts instructions in a body, recursing into `If` arms (used by tests
/// and diagnostics).
pub(crate) fn instr_count(body: &[Instr]) -> usize {
    body.iter()
        .map(|i| match i {
            Instr::If { then_body, else_body, .. } => {
                1 + instr_count(then_body) + instr_count(else_body)
            }
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinopCode::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinopCode::Rem.apply(-7.0, 3.0), -1.0);
        assert_eq!(BinopCode::Lt.apply(1.0, 2.0), 1.0);
        assert_eq!(BinopCode::Lt.apply(2.0, 2.0), 0.0);
        assert_eq!(BinopCode::And.apply(2.0, -1.0), 1.0);
        assert_eq!(BinopCode::And.apply(2.0, 0.0), 0.0);
        assert_eq!(BinopCode::Or.apply(0.0, 0.0), 0.0);
        assert_eq!(BinopCode::Div.apply(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn relational_predicate_matches_compare_semantics() {
        use BinopCode::*;
        for op in [Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne, And, Or] {
            let expected = matches!(op, Lt | Le | Gt | Ge | Eq | Ne);
            assert_eq!(op.is_relational(), expected, "{op:?}");
        }
        // And/Or are boolean combiners, not comparisons: they never fire
        // the TORC hook, so they must not be classified relational.
        assert!(!And.is_relational());
        assert!(!Or.is_relational());
    }

    #[test]
    fn func_codes_resolve_and_apply() {
        let abs = FuncCode::from_builtin_name("abs").unwrap();
        assert_eq!(abs.apply(&[-3.0]), 3.0);
        assert_eq!(abs.name(), "abs");
        let min = FuncCode::from_builtin_name("min").unwrap();
        assert_eq!(min.apply(&[4.0, 2.0]), 2.0);
        assert!(FuncCode::from_builtin_name("bogus").is_none());
        let sq = FuncCode::Math(cftcg_model::MathFunc::Square);
        assert_eq!(sq.apply(&[5.0]), 25.0);
        assert_eq!(sq.name(), "square");
    }

    #[test]
    fn instr_display_is_nonempty() {
        let instrs = vec![
            Instr::Const { dst: 0, value: 1.5 },
            Instr::Binop { dst: 1, op: BinopCode::Mul, lhs: 0, rhs: 0 },
            Instr::If { cond: 1, then_body: vec![], else_body: vec![] },
        ];
        for i in &instrs {
            assert!(!i.to_string().is_empty());
        }
    }

    #[test]
    fn instr_count_recurses() {
        let body = vec![
            Instr::Const { dst: 0, value: 0.0 },
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Const { dst: 1, value: 1.0 }],
                else_body: vec![
                    Instr::Const { dst: 1, value: 2.0 },
                    Instr::Const { dst: 2, value: 3.0 },
                ],
            },
        ];
        assert_eq!(instr_count(&body), 5);
    }
}
