//! Fuzz-driver data segmentation: the per-iteration tuple layout.
//!
//! The paper's fuzz driver (Figure 3) splits the fuzzer's byte stream into
//! *tuples* — one per model iteration — and `memcpy`s successive fields into
//! the inport variables. [`TupleLayout`] is the executable form of that
//! driver: field offsets/sizes/types computed from the model's inports,
//! plus decode/encode and the CSV exporter the paper uses to hand test
//! cases to Simulink's coverage tool.

use std::error::Error;
use std::fmt;

use cftcg_model::{DataType, Model, Value};

/// One inport's slice of the tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldLayout {
    /// Inport (block) name.
    pub name: String,
    /// Field type.
    pub dtype: DataType,
    /// Byte offset within the tuple.
    pub offset: usize,
}

/// The byte layout of one model iteration's input data.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_codegen::TupleLayout;
/// use cftcg_model::{DataType, ModelBuilder, Value};
///
/// let mut b = ModelBuilder::new("SolarPV");
/// let en = b.inport("Enable", DataType::I8);
/// let p = b.inport("Power", DataType::I32);
/// let id = b.inport("PanelID", DataType::I32);
/// let y = b.outport("Ret");
/// let t0 = b.add("t0", cftcg_model::BlockKind::Terminator);
/// let t1 = b.add("t1", cftcg_model::BlockKind::Terminator);
/// b.wire(en, y);
/// b.wire(p, t0);
/// b.wire(id, t1);
/// let model = b.finish()?;
///
/// let layout = TupleLayout::for_model(&model);
/// assert_eq!(layout.tuple_size(), 9); // the paper's `dataLen = 9`
/// assert_eq!(layout.fields()[1].offset, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleLayout {
    fields: Vec<FieldLayout>,
    tuple_size: usize,
}

impl TupleLayout {
    /// Computes the layout from a model's top-level inports, in port order.
    pub fn for_model(model: &Model) -> Self {
        let mut fields = Vec::new();
        let mut offset = 0;
        for (id, _, dtype) in model.inports() {
            fields.push(FieldLayout { name: model.block(id).name().to_string(), dtype, offset });
            offset += dtype.size();
        }
        TupleLayout { fields, tuple_size: offset }
    }

    /// The fields, in inport order.
    pub fn fields(&self) -> &[FieldLayout] {
        &self.fields
    }

    /// Bytes per iteration (the paper's `dataLen`).
    pub fn tuple_size(&self) -> usize {
        self.tuple_size
    }

    /// Number of whole tuples in `data`; trailing bytes that cannot fill a
    /// tuple are discarded, as in the paper's driver loop.
    pub fn tuple_count(&self, data: &[u8]) -> usize {
        data.len().checked_div(self.tuple_size).unwrap_or(0)
    }

    /// Iterates over the whole tuples in `data`.
    ///
    /// The iterator is exact-size, so callers that only need the iteration
    /// count (`run_case`) read it upfront instead of counting chunks.
    pub fn split<'a>(&self, data: &'a [u8]) -> impl ExactSizeIterator<Item = &'a [u8]> + 'a {
        let size = self.tuple_size.max(1);
        data.chunks_exact(size)
    }

    /// Decodes one tuple into inport values (little endian, like the
    /// driver's `memcpy` on the paper's x86 target).
    ///
    /// # Panics
    ///
    /// Panics when `tuple` is shorter than [`TupleLayout::tuple_size`].
    pub fn decode(&self, tuple: &[u8]) -> Vec<Value> {
        self.fields.iter().map(|f| Value::from_le_bytes(&tuple[f.offset..], f.dtype)).collect()
    }

    /// Encodes one iteration's values into tuple bytes (inverse of
    /// [`TupleLayout::decode`] up to `Bool` normalization).
    ///
    /// # Panics
    ///
    /// Panics when `values` does not match the field count or types are not
    /// castable (they always are).
    pub fn encode(&self, values: &[Value]) -> Vec<u8> {
        assert_eq!(values.len(), self.fields.len(), "value count mismatch");
        let mut out = vec![0u8; self.tuple_size];
        for (f, v) in self.fields.iter().zip(values) {
            let bytes = v.cast(f.dtype).to_le_bytes();
            out[f.offset..f.offset + bytes.len()].copy_from_slice(&bytes);
        }
        out
    }

    /// Byte range of field `i` within a tuple.
    pub fn field_range(&self, i: usize) -> std::ops::Range<usize> {
        let f = &self.fields[i];
        f.offset..f.offset + f.dtype.size()
    }
}

/// One generated test case: the raw byte stream the fuzz driver consumes,
/// segmented into tuples by a [`TupleLayout`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestCase {
    /// Raw bytes (whole tuples; any trailing fragment is ignored at run
    /// time, mirroring the paper's driver).
    pub bytes: Vec<u8>,
}

impl TestCase {
    /// Wraps raw bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        TestCase { bytes }
    }

    /// Builds a test case from per-iteration value tuples.
    pub fn from_tuples(layout: &TupleLayout, tuples: &[Vec<Value>]) -> Self {
        let mut bytes = Vec::with_capacity(tuples.len() * layout.tuple_size());
        for t in tuples {
            bytes.extend_from_slice(&layout.encode(t));
        }
        TestCase { bytes }
    }

    /// Number of model iterations this case drives under `layout`.
    pub fn iterations(&self, layout: &TupleLayout) -> usize {
        layout.tuple_count(&self.bytes)
    }
}

/// Converts a binary test case into the CSV form used to replay cases in
/// Simulink ("we implemented a tool to convert binary test case files into
/// csv supported by Simulink"). One header row of inport names, then one
/// row per iteration.
pub fn test_case_to_csv(layout: &TupleLayout, case: &TestCase) -> String {
    let mut out = String::new();
    let names: Vec<&str> = layout.fields().iter().map(|f| f.name.as_str()).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for tuple in layout.split(&case.bytes) {
        let values = layout.decode(tuple);
        let row: Vec<String> = values.iter().map(Value::to_string).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Error produced when CSV test-case text cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseCsvError {
    message: String,
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse test-case csv: {}", self.message)
    }
}

impl Error for ParseCsvError {}

/// Parses the CSV form back into a binary test case (inverse of
/// [`test_case_to_csv`]).
///
/// # Errors
///
/// Returns [`ParseCsvError`] when the header does not match the layout or a
/// cell is not a literal of the field's type.
pub fn test_case_from_csv(layout: &TupleLayout, csv: &str) -> Result<TestCase, ParseCsvError> {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or("");
    let expected: Vec<&str> = layout.fields().iter().map(|f| f.name.as_str()).collect();
    let found: Vec<&str> = header.split(',').collect();
    if found != expected {
        return Err(ParseCsvError {
            message: format!("header {found:?} does not match inports {expected:?}"),
        });
    }
    let mut tuples = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != layout.fields().len() {
            return Err(ParseCsvError {
                message: format!(
                    "row {} has {} cells, expected {}",
                    lineno + 2,
                    cells.len(),
                    layout.fields().len()
                ),
            });
        }
        let mut tuple = Vec::with_capacity(cells.len());
        for (cell, field) in cells.iter().zip(layout.fields()) {
            let v = Value::parse_typed(cell.trim(), field.dtype)
                .map_err(|e| ParseCsvError { message: format!("row {}: {e}", lineno + 2) })?;
            tuple.push(v);
        }
        tuples.push(tuple);
    }
    Ok(TestCase::from_tuples(layout, &tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, ModelBuilder};

    fn solar_layout() -> TupleLayout {
        let mut b = ModelBuilder::new("SolarPV");
        let en = b.inport("Enable", DataType::I8);
        let p = b.inport("Power", DataType::I32);
        let id = b.inport("PanelID", DataType::I32);
        for (i, u) in [en, p, id].into_iter().enumerate() {
            let t = b.add(format!("t{i}"), BlockKind::Terminator);
            b.wire(u, t);
        }
        TupleLayout::for_model(&b.finish().unwrap())
    }

    #[test]
    fn layout_matches_paper_figure_3() {
        let layout = solar_layout();
        assert_eq!(layout.tuple_size(), 9);
        assert_eq!(layout.fields().len(), 3);
        assert_eq!(layout.fields()[0].offset, 0);
        assert_eq!(layout.fields()[1].offset, 1);
        assert_eq!(layout.fields()[2].offset, 5);
        assert_eq!(layout.field_range(1), 1..5);
    }

    #[test]
    fn split_discards_trailing_fragment() {
        let layout = solar_layout();
        let data = vec![0u8; 9 * 2 + 5]; // two tuples + fragment
        assert_eq!(layout.tuple_count(&data), 2);
        assert_eq!(layout.split(&data).count(), 2);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let layout = solar_layout();
        let values = vec![Value::I8(-2), Value::I32(100_000), Value::I32(-7)];
        let bytes = layout.encode(&values);
        assert_eq!(bytes.len(), 9);
        assert_eq!(layout.decode(&bytes), values);
    }

    #[test]
    fn encode_casts_to_field_types() {
        let layout = solar_layout();
        let values = vec![Value::F64(300.0), Value::F64(1.6), Value::I32(1)];
        let bytes = layout.encode(&values);
        let decoded = layout.decode(&bytes);
        assert_eq!(decoded[0], Value::I8(127)); // saturated
        assert_eq!(decoded[1], Value::I32(2)); // rounded
    }

    #[test]
    fn test_case_iterations() {
        let layout = solar_layout();
        let case = TestCase::new(vec![0u8; 30]);
        assert_eq!(case.iterations(&layout), 3);
        let empty = TestCase::default();
        assert_eq!(empty.iterations(&layout), 0);
    }

    #[test]
    fn csv_roundtrip() {
        let layout = solar_layout();
        let tuples = vec![
            vec![Value::I8(1), Value::I32(500), Value::I32(3)],
            vec![Value::I8(0), Value::I32(-12), Value::I32(9)],
        ];
        let case = TestCase::from_tuples(&layout, &tuples);
        let csv = test_case_to_csv(&layout, &case);
        assert!(csv.starts_with("Enable,Power,PanelID\n"));
        assert!(csv.contains("1,500,3"));
        let back = test_case_from_csv(&layout, &csv).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn csv_rejects_bad_input() {
        let layout = solar_layout();
        assert!(test_case_from_csv(&layout, "Wrong,Header,Here\n1,2,3\n").is_err());
        assert!(test_case_from_csv(&layout, "Enable,Power,PanelID\n1,2\n").is_err());
        let err = test_case_from_csv(&layout, "Enable,Power,PanelID\n1,x,3\n").unwrap_err();
        assert!(err.to_string().contains("row 2"));
    }

    #[test]
    fn zero_inport_model_layout() {
        let mut b = ModelBuilder::new("none");
        let c = b.constant("c", 1.0);
        let y = b.outport("y");
        b.wire(c, y);
        let layout = TupleLayout::for_model(&b.finish().unwrap());
        assert_eq!(layout.tuple_size(), 0);
        assert_eq!(layout.tuple_count(&[1, 2, 3]), 0);
    }
}
