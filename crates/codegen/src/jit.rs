//! Native x86-64 back-end for the flat fuzz programs.
//!
//! The flat program (see [`crate::flatten`]) is already a dense linear
//! encoding with resolved forward-only jumps, so the JIT is a template
//! compiler: every [`FlatOp`] lowers to a short fixed x86-64 sequence, one
//! straight-line native block per basic block, with the VM's `f64`
//! register file living in memory (the executor's `regs` vector — so
//! signal probing via [`crate::Executor::reg`] keeps working unchanged).
//!
//! # Frame and register convention
//!
//! The generated function is `extern "sysv64" fn(*const JitCtx)`. The
//! prologue pins the four data planes in callee-saved registers:
//!
//! | register | contents                      |
//! |----------|-------------------------------|
//! | `rbx`    | `regs` base (`f64` frame)     |
//! | `r12`    | `state` base                  |
//! | `r13`    | `inputs` base                 |
//! | `r14`    | `outputs` base                |
//! | `r15`    | the [`JitCtx`] pointer        |
//!
//! `rax/rcx/rdx/rsi/rdi/r8–r11` and `xmm0–xmm2` are scratch. Register
//! slots address as `[rbx + 8*reg]` (u16 registers keep every
//! displacement well inside disp32).
//!
//! # Recorder trampolines
//!
//! Probe ops must produce the *bit-for-bit identical* recorder event
//! sequence the flat VM produces — that is the differential-oracle
//! contract. The machine code is compiled once per program and shared by
//! every recorder type, so probe ops call back through a fixed-ABI
//! vtable ([`RecorderVt`]) of `extern "sysv64"` trampolines
//! monomorphized per concrete [`Recorder`] and passed in the per-call
//! [`JitCtx`]. A recorder that panics inside a trampoline aborts the
//! process (Rust's `extern` panic boundary): generated frames carry no
//! unwind tables, so unwinding through them would be undefined behavior.
//!
//! Two fast paths keep probed execution near probe-stripped speed, both
//! driven by promises on the [`Recorder`] trait (skipping a promised
//! no-op is observationally identical, so the event-sequence contract is
//! untouched):
//!
//! * **Null vtable slots** — an event class the recorder promises away
//!   (`OBSERVES_CONDITIONS` & friends) gets a null [`RecorderVt`] entry;
//!   every event site loads its slot, tests for null, and skips both the
//!   callback and the argument recomputation feeding it.
//! * **Inline branch stores** — a recorder exposing dense
//!   [`branch_flags`](Recorder::branch_flags) (the fuzz loop's branch
//!   bitmap does) has branch probes lowered to a single byte store
//!   `flags[id] = true`, no call at all. The run entry validates the
//!   flags length against the program's branch-id bound once, so the
//!   generated stores need no per-probe bounds checks.
//!
//! # Fallback policy
//!
//! The whole module is gated on `cfg(cftcg_jit)` (the `jit` feature on
//! x86-64 Linux, computed by the build script). Elsewhere
//! [`Executor::new_jit`](crate::Executor::new_jit) silently resolves to
//! the flat VM, and [`compile_jit`] returning `None` (executable-page
//! allocation refused) downgrades the same way at run time.

use std::collections::HashSet;
use std::sync::OnceLock;

use cftcg_coverage::{AssertionId, BranchId, ConditionId, DecisionId, Recorder};
use cftcg_model::interp::{lookup1d, lookup2d};
use cftcg_model::{DataType, Value};

use crate::compile::{CompiledModel, Lookup2Table};
use crate::flatten::{FlatOp, FlatProgram};
use crate::ir::{BinopCode, FuncCode, UnopCode};
use crate::vm::JitStats;

// ---------------------------------------------------------------------------
// Executable memory (raw Linux syscalls — the build has no libc crate).

const PROT_RW: usize = 0x3;
const PROT_RX: usize = 0x5;
const MAP_PRIVATE_ANON: usize = 0x22;

unsafe fn sys_mmap_rw(len: usize) -> Option<*mut u8> {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 9isize => ret, // SYS_mmap
        in("rdi") 0usize,
        in("rsi") len,
        in("rdx") PROT_RW,
        in("r10") MAP_PRIVATE_ANON,
        in("r8") -1isize,
        in("r9") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    if ret < 0 {
        None
    } else {
        Some(ret as *mut u8)
    }
}

unsafe fn sys_mprotect(addr: *mut u8, len: usize, prot: usize) -> bool {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 10isize => ret, // SYS_mprotect
        in("rdi") addr,
        in("rsi") len,
        in("rdx") prot,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret == 0
}

unsafe fn sys_munmap(addr: *mut u8, len: usize) {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") 11isize => ret, // SYS_munmap
        in("rdi") addr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    let _ = ret;
}

/// An executable page run holding one compiled entry point. Pages are
/// mapped read+write for emission, then flipped to read+execute (W^X) —
/// immutable from then on, so sharing across threads is sound.
struct ExecBuf {
    ptr: *mut u8,
    map_len: usize,
}

unsafe impl Send for ExecBuf {}
unsafe impl Sync for ExecBuf {}

impl ExecBuf {
    fn new(code: &[u8]) -> Option<ExecBuf> {
        let map_len = code.len().div_ceil(4096).max(1) * 4096;
        unsafe {
            let ptr = sys_mmap_rw(map_len)?;
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
            if !sys_mprotect(ptr, map_len, PROT_RX) {
                sys_munmap(ptr, map_len);
                return None;
            }
            Some(ExecBuf { ptr, map_len })
        }
    }
}

impl Drop for ExecBuf {
    fn drop(&mut self) {
        unsafe { sys_munmap(self.ptr, self.map_len) };
    }
}

// ---------------------------------------------------------------------------
// Runtime context and recorder trampolines.

/// Per-call context handed to the generated code (field offsets are burned
/// into the machine code — keep in sync with the prologue emitter).
#[repr(C)]
#[allow(dead_code)] // fields are read by the generated machine code
pub(crate) struct JitCtx {
    regs: *mut f64,        // 0x00 -> rbx
    state: *mut f64,       // 0x08 -> r12
    inputs: *const f64,    // 0x10 -> r13
    outputs: *mut f64,     // 0x18 -> r14
    recorder: *mut (),     // 0x20
    vt: *const RecorderVt, // 0x28
    /// Dense branch-hit byte array ([`Recorder::branch_flags`]), or null
    /// to deliver branch events through the vtable.
    branch_flags: *mut bool, // 0x30
}

const CTX_RECORDER: i32 = 0x20;
const CTX_VT: i32 = 0x28;
const CTX_FLAGS: i32 = 0x30;

/// Fixed-ABI probe dispatch table: one `extern "sysv64"` trampoline per
/// recorder hook, monomorphized over the concrete recorder type. Entries
/// other than `branch` are null (`None`) when the recorder promises that
/// event class away — generated code tests each slot before computing the
/// event's arguments. (`Option` of a function pointer is
/// null-pointer-optimized, so the layout stays one plain pointer per
/// slot.)
#[repr(C)]
#[allow(dead_code)] // entries are called by the generated machine code
pub(crate) struct RecorderVt {
    branch: extern "sysv64" fn(*mut (), u32),
    condition: Option<extern "sysv64" fn(*mut (), u32, u32)>,
    decision: Option<extern "sysv64" fn(*mut (), u32, u64, u32)>,
    compare: Option<extern "sysv64" fn(*mut (), f64, f64)>,
    assertion: Option<extern "sysv64" fn(*mut (), u32, u32)>,
}

const VT_BRANCH: i32 = 0x00;
const VT_CONDITION: i32 = 0x08;
const VT_DECISION: i32 = 0x10;
const VT_COMPARE: i32 = 0x18;
const VT_ASSERTION: i32 = 0x20;

extern "sysv64" fn tramp_branch<R: Recorder>(rec: *mut (), id: u32) {
    unsafe { &mut *rec.cast::<R>() }.branch(BranchId(id));
}
extern "sysv64" fn tramp_condition<R: Recorder>(rec: *mut (), id: u32, value: u32) {
    unsafe { &mut *rec.cast::<R>() }.condition(ConditionId(id), value != 0);
}
extern "sysv64" fn tramp_decision<R: Recorder>(rec: *mut (), id: u32, vector: u64, outcome: u32) {
    unsafe { &mut *rec.cast::<R>() }.decision_eval(DecisionId(id), vector, outcome);
}
extern "sysv64" fn tramp_compare<R: Recorder>(rec: *mut (), lhs: f64, rhs: f64) {
    unsafe { &mut *rec.cast::<R>() }.compare(lhs, rhs);
}
extern "sysv64" fn tramp_assertion<R: Recorder>(rec: *mut (), id: u32, passed: u32) {
    unsafe { &mut *rec.cast::<R>() }.assertion(AssertionId(id), passed != 0);
}

impl RecorderVt {
    fn of<R: Recorder>() -> RecorderVt {
        RecorderVt {
            branch: tramp_branch::<R>,
            condition: R::OBSERVES_CONDITIONS
                .then_some(tramp_condition::<R> as extern "sysv64" fn(*mut (), u32, u32)),
            decision: R::OBSERVES_DECISIONS
                .then_some(tramp_decision::<R> as extern "sysv64" fn(*mut (), u32, u64, u32)),
            compare: R::OBSERVES_COMPARES
                .then_some(tramp_compare::<R> as extern "sysv64" fn(*mut (), f64, f64)),
            assertion: R::OBSERVES_ASSERTIONS
                .then_some(tramp_assertion::<R> as extern "sysv64" fn(*mut (), u32, u32)),
        }
    }
}

// ---------------------------------------------------------------------------
// Out-of-line helpers (recorder-independent; absolute addresses are burned
// into the code as `mov rax, imm64; call rax`).

extern "sysv64" fn jh_fmod(l: f64, r: f64) -> f64 {
    l % r
}

extern "sysv64" fn jh_call(func: *const FuncCode, argc: u64, a: f64, b: f64, c: f64) -> f64 {
    let xs = [a, b, c];
    unsafe { *func }.apply(&xs[..argc as usize])
}

extern "sysv64" fn jh_castsat(ty: u64, x: f64) -> f64 {
    Value::from_f64(x, ty_from_code(ty)).as_f64()
}

extern "sysv64" fn jh_lookup1(table: *const (Vec<f64>, Vec<f64>), x: f64) -> f64 {
    let (breaks, values) = unsafe { &*table };
    lookup1d(breaks, values, x)
}

extern "sysv64" fn jh_lookup2(table: *const Lookup2Table, row: f64, col: f64) -> f64 {
    let (rb, cb, values) = unsafe { &*table };
    lookup2d(rb, cb, values, row, col)
}

extern "sysv64" fn jh_shift_state(state: *mut f64, base: u64, len: u64, v: f64) {
    let (base, len) = (base as usize, len as usize);
    let s = unsafe { std::slice::from_raw_parts_mut(state, base + len) };
    s.copy_within(base + 1..base + len, base);
    s[base + len - 1] = v;
}

fn ty_code(ty: DataType) -> u64 {
    match ty {
        DataType::Bool => 0,
        DataType::I8 => 1,
        DataType::U8 => 2,
        DataType::I16 => 3,
        DataType::U16 => 4,
        DataType::I32 => 5,
        DataType::U32 => 6,
        DataType::F32 => 7,
        DataType::F64 => 8,
    }
}

fn ty_from_code(code: u64) -> DataType {
    match code {
        0 => DataType::Bool,
        1 => DataType::I8,
        2 => DataType::U8,
        3 => DataType::I16,
        4 => DataType::U16,
        5 => DataType::I32,
        6 => DataType::U32,
        7 => DataType::F32,
        _ => DataType::F64,
    }
}

// ---------------------------------------------------------------------------
// The x86-64 emitter.

// GPR numbers (REX-extended).
const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;
const RBX: u8 = 3;
const RSI: u8 = 6;
const RDI: u8 = 7;
const R8: u8 = 8;
const R10: u8 = 10;
const R12: u8 = 12;
const R13: u8 = 13;
const R14: u8 = 14;
const R15: u8 = 15;

// SSE condition-code immediates for `cmpsd` — chosen so NaN semantics
// match `BinopCode::apply` exactly (unordered compares to false for
// EQ/LT/LE and true for NEQ).
const CMP_EQ: u8 = 0;
const CMP_LT: u8 = 1;
const CMP_LE: u8 = 2;
const CMP_NEQ: u8 = 4;

const F64_ONE_BITS: u64 = 0x3FF0_0000_0000_0000;
const F64_SIGN_BIT: u64 = 0x8000_0000_0000_0000;

/// Machine-code assembler: byte buffer + per-op labels + pending forward
/// jump fixups (the flat program only ever jumps forward).
struct Asm {
    code: Vec<u8>,
    /// Code offset where flat op `i` begins; slot `ops.len()` is the
    /// epilogue (jump-to-end lands there).
    labels: Vec<usize>,
    /// `(offset_of_rel32, target_op_index)` pairs patched at the end.
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    fn new() -> Asm {
        Asm { code: Vec::with_capacity(4096), labels: Vec::new(), fixups: Vec::new() }
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }
    fn u32(&mut self, v: u32) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// REX prefix from extended register operands (`reg` = ModRM.reg,
    /// `base` = ModRM.rm / SIB.base); emitted only when needed.
    fn rex(&mut self, w: bool, reg: u8, base: u8) {
        let b = 0x40 | (u8::from(w) << 3) | (u8::from(reg >= 8) << 2) | u8::from(base >= 8);
        if b != 0x40 || w {
            self.u8(b);
        }
    }

    /// ModRM (+SIB) + displacement for a `[base + disp]` memory operand.
    fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
        let reg = reg & 7;
        let b = base & 7;
        let (md, d8) = if disp == 0 && b != 5 {
            (0b00u8, None)
        } else if (-128..=127).contains(&disp) {
            (0b01, Some(disp as i8))
        } else {
            (0b10, None)
        };
        self.u8((md << 6) | (reg << 3) | b);
        if b == 4 {
            self.u8(0x24); // SIB: no index, base = rsp/r12
        }
        match md {
            0b01 => self.u8(d8.unwrap() as u8),
            0b10 => self.u32(disp as u32),
            _ => {}
        }
    }

    /// ModRM register-direct form.
    fn modrm_rr(&mut self, reg: u8, rm: u8) {
        self.u8(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    // -- integer moves ------------------------------------------------------

    /// `mov r64, [base + disp]`
    fn mov_r_mem(&mut self, dst: u8, base: u8, disp: i32) {
        self.rex(true, dst, base);
        self.u8(0x8B);
        self.modrm_mem(dst, base, disp);
    }

    /// `mov [base + disp], r64`
    fn mov_mem_r(&mut self, base: u8, disp: i32, src: u8) {
        self.rex(true, src, base);
        self.u8(0x89);
        self.modrm_mem(src, base, disp);
    }

    /// `mov r64, imm64`
    fn mov_r_imm64(&mut self, dst: u8, imm: u64) {
        self.rex(true, 0, dst);
        self.u8(0xB8 | (dst & 7));
        self.u64(imm);
    }

    /// `mov r32, imm32` (zero-extends)
    fn mov_r_imm32(&mut self, dst: u8, imm: u32) {
        self.rex(false, 0, dst);
        self.u8(0xB8 | (dst & 7));
        self.u32(imm);
    }

    /// `mov r32, r32`
    fn mov_r32_r32(&mut self, dst: u8, src: u8) {
        self.rex(false, src, dst);
        self.u8(0x89);
        self.modrm_rr(src, dst);
    }

    /// `mov r64, r64`
    fn mov_r_r(&mut self, dst: u8, src: u8) {
        self.rex(true, src, dst);
        self.u8(0x89);
        self.modrm_rr(src, dst);
    }

    // -- SSE ----------------------------------------------------------------

    /// `movsd xmm, [base + disp]`
    fn movsd_load(&mut self, x: u8, base: u8, disp: i32) {
        self.u8(0xF2);
        self.rex(false, x, base);
        self.u8(0x0F);
        self.u8(0x10);
        self.modrm_mem(x, base, disp);
    }

    /// `movsd [base + disp], xmm`
    fn movsd_store(&mut self, base: u8, disp: i32, x: u8) {
        self.u8(0xF2);
        self.rex(false, x, base);
        self.u8(0x0F);
        self.u8(0x11);
        self.modrm_mem(x, base, disp);
    }

    /// `addsd/subsd/mulsd/divsd xmm, [base + disp]` (op byte in `op`).
    fn arith_sd_mem(&mut self, op: u8, x: u8, base: u8, disp: i32) {
        self.u8(0xF2);
        self.rex(false, x, base);
        self.u8(0x0F);
        self.u8(op);
        self.modrm_mem(x, base, disp);
    }

    /// `cmpsd xmm, [base + disp], pred`
    fn cmpsd_mem(&mut self, x: u8, base: u8, disp: i32, pred: u8) {
        self.u8(0xF2);
        self.rex(false, x, base);
        self.u8(0x0F);
        self.u8(0xC2);
        self.modrm_mem(x, base, disp);
        self.u8(pred);
    }

    /// `cmpsd xmm, xmm, pred`
    fn cmpsd_rr(&mut self, x: u8, y: u8, pred: u8) {
        self.u8(0xF2);
        self.rex(false, x, y);
        self.u8(0x0F);
        self.u8(0xC2);
        self.modrm_rr(x, y);
        self.u8(pred);
    }

    /// Packed logic (`xorpd`/`andpd`/`orpd`), register form.
    fn logic_pd(&mut self, op: u8, x: u8, y: u8) {
        self.u8(0x66);
        self.rex(false, x, y);
        self.u8(0x0F);
        self.u8(op);
        self.modrm_rr(x, y);
    }

    /// `movq r64, xmm`
    fn movq_r_x(&mut self, r: u8, x: u8) {
        self.u8(0x66);
        self.rex(true, x, r);
        self.u8(0x0F);
        self.u8(0x7E);
        self.modrm_rr(x, r);
    }

    /// `movq xmm, r64`
    fn movq_x_r(&mut self, x: u8, r: u8) {
        self.u8(0x66);
        self.rex(true, x, r);
        self.u8(0x0F);
        self.u8(0x6E);
        self.modrm_rr(x, r);
    }

    // -- control flow and ALU ----------------------------------------------

    /// `call r64`
    fn call_r(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0xFF);
        self.modrm_rr(2, r);
    }

    /// `call [base + disp]`
    fn call_mem(&mut self, base: u8, disp: i32) {
        self.rex(false, 0, base);
        self.u8(0xFF);
        self.modrm_mem(2, base, disp);
    }

    /// `test r32, r32`
    fn test_r32(&mut self, a: u8, b: u8) {
        self.rex(false, b, a);
        self.u8(0x85);
        self.modrm_rr(b, a);
    }

    /// `test r64, r64`
    fn test_r(&mut self, a: u8, b: u8) {
        self.rex(true, b, a);
        self.u8(0x85);
        self.modrm_rr(b, a);
    }

    /// `add r64, r64`
    fn add_r_r(&mut self, dst: u8, src: u8) {
        self.rex(true, src, dst);
        self.u8(0x01);
        self.modrm_rr(src, dst);
    }

    /// `mov byte [base + disp], 1`
    fn mov_mem8_imm1(&mut self, base: u8, disp: i32) {
        self.rex(false, 0, base);
        self.u8(0xC6);
        self.modrm_mem(0, base, disp);
        self.u8(1);
    }

    // Local (byte-offset) forward jumps, for skip regions *within* one
    // op's template — unlike `jnz_to`/`jmp_to`, which target flat-op
    // labels. Emit, remember the rel32 position, and bind once the skip
    // target is reached. rel32 keeps wide decision-vector recomputations
    // (dozens of conditions) in range.

    /// `jz rel32` to a not-yet-bound local label.
    fn jz_fwd(&mut self) -> usize {
        self.u8(0x0F);
        self.u8(0x84);
        let pos = self.code.len();
        self.u32(0);
        pos
    }

    /// `jmp rel32` to a not-yet-bound local label.
    fn jmp_fwd(&mut self) -> usize {
        self.u8(0xE9);
        let pos = self.code.len();
        self.u32(0);
        pos
    }

    /// Binds a local forward jump to the current position.
    fn bind_fwd(&mut self, pos: usize) {
        let rel = self.code.len() as i64 - (pos as i64 + 4);
        let rel32 = i32::try_from(rel).expect("local skip distance fits rel32");
        self.code[pos..pos + 4].copy_from_slice(&rel32.to_le_bytes());
    }

    /// `and r32, imm8` (sign-extended imm8)
    fn and_r32_imm8(&mut self, r: u8, imm: i8) {
        self.rex(false, 0, r);
        self.u8(0x83);
        self.modrm_rr(4, r);
        self.u8(imm as u8);
    }

    /// `shl r64, imm8`
    fn shl_r_imm8(&mut self, r: u8, imm: u8) {
        self.rex(true, 0, r);
        self.u8(0xC1);
        self.modrm_rr(4, r);
        self.u8(imm);
    }

    /// `or r64, r64`
    fn or_r_r(&mut self, dst: u8, src: u8) {
        self.rex(true, src, dst);
        self.u8(0x09);
        self.modrm_rr(src, dst);
    }

    /// `xor r32, r32`
    fn xor_r32(&mut self, dst: u8, src: u8) {
        self.rex(false, src, dst);
        self.u8(0x31);
        self.modrm_rr(src, dst);
    }

    /// `cmovnz r32, r32`
    fn cmovnz_r32(&mut self, dst: u8, src: u8) {
        self.rex(false, dst, src);
        self.u8(0x0F);
        self.u8(0x45);
        self.modrm_rr(dst, src);
    }

    fn push_r(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0x50 | (r & 7));
    }

    fn pop_r(&mut self, r: u8) {
        self.rex(false, 0, r);
        self.u8(0x58 | (r & 7));
    }

    /// `jnz rel32` toward flat op `target` (forward; patched later).
    fn jnz_to(&mut self, target: usize) {
        self.u8(0x0F);
        self.u8(0x85);
        self.fixups.push((self.code.len(), target));
        self.u32(0);
    }

    /// `jmp rel32` toward flat op `target` (forward; patched later).
    fn jmp_to(&mut self, target: usize) {
        self.u8(0xE9);
        self.fixups.push((self.code.len(), target));
        self.u32(0);
    }

    fn patch_fixups(&mut self) {
        for &(pos, target) in &self.fixups {
            let rel = self.labels[target] as i64 - (pos as i64 + 4);
            let rel32 = i32::try_from(rel).expect("forward jump distance fits rel32");
            self.code[pos..pos + 4].copy_from_slice(&rel32.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// FlatOp lowering.

#[inline]
fn slot(r: impl Into<i32>) -> i32 {
    r.into() * 8
}

/// The template compiler for one flat program.
struct Lowerer<'p> {
    asm: Asm,
    program: &'p FlatProgram,
    /// Stable addresses the emitted code points into (owned by the
    /// enclosing [`JitProgram`] — built fully before lowering starts).
    funcs: *const FuncCode,
    func_index: &'p [(FuncCode, usize)],
    tables1: &'p [(Vec<f64>, Vec<f64>)],
    tables2: &'p [Lookup2Table],
    jump_targets: HashSet<usize>,
    /// One past the highest branch id any probe in this program can emit —
    /// the bound [`run_jit`] validates [`Recorder::branch_flags`] against,
    /// so inline flag stores need no per-probe bounds checks.
    branch_bound: usize,
    /// Forwarding cache: `Some(r)` means `xmm0 == regs[r]` at this point
    /// in straight-line emission, so a reload of `r` can be elided. Must
    /// be cleared on anything that clobbers `xmm0` (calls, compares), on
    /// any store to `regs[r]` that bypasses `xmm0`, and at every control
    /// flow merge point (jump targets start with an empty cache).
    cached: Option<u16>,
}

impl<'p> Lowerer<'p> {
    /// `movsd xmm0, regs[r]`, elided when the forwarding cache already
    /// holds `r` in `xmm0`.
    fn load_xmm0(&mut self, r: u16) {
        if self.cached != Some(r) {
            self.asm.movsd_load(0, RBX, slot(r));
            self.cached = Some(r);
        }
    }

    /// `movsd regs[dst], xmm0` — afterwards `xmm0 == regs[dst]`.
    fn store_xmm0(&mut self, dst: u16) {
        self.asm.movsd_store(RBX, slot(dst), 0);
        self.cached = Some(dst);
    }

    /// A store to `regs[dst]` that bypassed `xmm0` (GPR move): the cache
    /// entry for `dst` is stale.
    fn wrote_reg(&mut self, dst: u16) {
        if self.cached == Some(dst) {
            self.cached = None;
        }
    }

    /// `xmm0` no longer mirrors any register slot.
    fn clobber_xmm0(&mut self) {
        self.cached = None;
    }

    /// `regs[r]` truthiness (`!= 0.0`, NaN truthy) into `eax` as 0/1.
    /// Clobbers `xmm0`, `xmm1`, `rax`.
    fn truthy_eax(&mut self, r: u16) {
        self.load_xmm0(r);
        self.clobber_xmm0(); // the cmpsd below destroys xmm0
        let a = &mut self.asm;
        a.logic_pd(0x57, 1, 1); // xorpd xmm1, xmm1
        a.cmpsd_rr(0, 1, CMP_NEQ);
        a.movq_r_x(RAX, 0);
        a.and_r32_imm8(RAX, 1);
    }

    /// Converts the all-ones/zero mask in `xmm0` to 1.0/0.0 and stores it
    /// to `regs[dst]`. Clobbers `rax`, `xmm1`.
    fn mask_to_bool_store(&mut self, dst: u16) {
        let a = &mut self.asm;
        a.mov_r_imm64(RAX, F64_ONE_BITS);
        a.movq_x_r(1, RAX);
        a.logic_pd(0x54, 0, 1); // andpd xmm0, xmm1
        self.store_xmm0(dst);
    }

    /// `mov rdi, ctx.recorder` — first trampoline argument.
    fn load_recorder_rdi(&mut self) {
        self.asm.mov_r_mem(RDI, R15, CTX_RECORDER);
    }

    /// Opens a guarded event region: loads the vtable slot at `off` into
    /// `r10` and emits a skip-if-null jump. The caller computes the event
    /// arguments (free to clobber every scratch register except `r10`),
    /// calls [`Lowerer::call_event`], then closes the region with
    /// [`Lowerer::end_event`] — so a promised-away event skips its whole
    /// argument recomputation, not just the call.
    fn begin_event(&mut self, off: i32) -> usize {
        self.clobber_xmm0();
        self.asm.mov_r_mem(R10, R15, CTX_VT);
        self.asm.mov_r_mem(R10, R10, off);
        self.asm.test_r(R10, R10);
        self.asm.jz_fwd()
    }

    /// `call r10` — the slot loaded by [`Lowerer::begin_event`].
    fn call_event(&mut self) {
        self.asm.call_r(R10);
    }

    /// Binds the skip label of [`Lowerer::begin_event`]. A merge point:
    /// the executed path clobbered `xmm0` in the trampoline call, so the
    /// forwarding cache dies here.
    fn end_event(&mut self, skip: usize) {
        self.asm.bind_fwd(skip);
        self.clobber_xmm0();
    }

    /// `branch(id)` event with the id already in `esi`: stores into the
    /// dense flags array when the recorder exposes one, else calls the
    /// vtable. `esi` must be below the tracked [`Lowerer::branch_bound`].
    fn branch_event_from_rsi(&mut self) {
        let a = &mut self.asm;
        a.mov_r_mem(RAX, R15, CTX_FLAGS);
        a.test_r(RAX, RAX);
        let slow = a.jz_fwd();
        a.add_r_r(RAX, RSI);
        a.mov_mem8_imm1(RAX, 0);
        let done = a.jmp_fwd();
        a.bind_fwd(slow);
        self.load_recorder_rdi();
        self.asm.mov_r_mem(R10, R15, CTX_VT);
        self.asm.call_mem(R10, VT_BRANCH);
        self.asm.bind_fwd(done);
        self.clobber_xmm0();
    }

    /// `mov rax, imm64(helper); call rax`. Helpers receive and return
    /// values in `xmm0`, so the forwarding cache dies here.
    fn call_helper(&mut self, helper: usize) {
        self.clobber_xmm0();
        self.asm.mov_r_imm64(RAX, helper as u64);
        self.asm.call_r(RAX);
    }

    /// Pure binop compute + store (no recorder interaction); operands and
    /// destination are register-file slots.
    fn binop(&mut self, op: BinopCode, dst: u16, lhs: u16, rhs: u16) {
        match op {
            BinopCode::Add | BinopCode::Sub | BinopCode::Mul | BinopCode::Div => {
                let byte = match op {
                    BinopCode::Add => 0x58,
                    BinopCode::Sub => 0x5C,
                    BinopCode::Mul => 0x59,
                    _ => 0x5E,
                };
                self.load_xmm0(lhs);
                self.asm.arith_sd_mem(byte, 0, RBX, slot(rhs));
                self.clobber_xmm0(); // xmm0 now holds the result, not lhs
                self.store_xmm0(dst);
            }
            BinopCode::Rem => {
                self.load_xmm0(lhs);
                self.asm.movsd_load(1, RBX, slot(rhs));
                self.call_helper(jh_fmod as *const () as usize);
                self.store_xmm0(dst);
            }
            BinopCode::Lt | BinopCode::Le | BinopCode::Eq | BinopCode::Ne => {
                let pred = match op {
                    BinopCode::Lt => CMP_LT,
                    BinopCode::Le => CMP_LE,
                    BinopCode::Eq => CMP_EQ,
                    _ => CMP_NEQ,
                };
                self.load_xmm0(lhs);
                self.asm.cmpsd_mem(0, RBX, slot(rhs), pred);
                self.clobber_xmm0();
                self.mask_to_bool_store(dst);
            }
            BinopCode::Gt | BinopCode::Ge => {
                // l > r  <=>  r < l (both false when unordered).
                let pred = if op == BinopCode::Gt { CMP_LT } else { CMP_LE };
                self.load_xmm0(rhs);
                self.asm.cmpsd_mem(0, RBX, slot(lhs), pred);
                self.clobber_xmm0();
                self.mask_to_bool_store(dst);
            }
            BinopCode::And | BinopCode::Or => {
                self.asm.logic_pd(0x57, 2, 2); // xorpd xmm2, xmm2
                self.load_xmm0(lhs);
                self.clobber_xmm0();
                self.asm.cmpsd_rr(0, 2, CMP_NEQ);
                self.asm.movsd_load(1, RBX, slot(rhs));
                self.asm.cmpsd_rr(1, 2, CMP_NEQ);
                let logic = if op == BinopCode::And { 0x54 } else { 0x56 };
                self.asm.logic_pd(logic, 0, 1);
                self.mask_to_bool_store(dst);
            }
        }
    }

    /// `compare(regs[lhs], regs[rhs])` recorder event.
    fn compare_event(&mut self, lhs: u16, rhs: u16) {
        let skip = self.begin_event(VT_COMPARE);
        self.load_recorder_rdi();
        self.asm.movsd_load(0, RBX, slot(lhs));
        self.asm.movsd_load(1, RBX, slot(rhs));
        self.clobber_xmm0();
        self.call_event();
        self.end_event(skip);
    }

    /// `condition(cond, regs[src] != 0)` recorder event.
    fn condition_event(&mut self, cond: u32, src: u16) {
        let skip = self.begin_event(VT_CONDITION);
        self.truthy_eax(src);
        self.asm.mov_r32_r32(RDX, RAX);
        self.load_recorder_rdi();
        self.asm.mov_r_imm32(RSI, cond);
        self.call_event();
        self.end_event(skip);
    }

    /// Single-condition `decision_eval(decision, v, v)` with `v` recomputed
    /// from `regs[src]` (trampoline calls clobber scratch, but probe hooks
    /// cannot write the register file, so recomputing is exact).
    fn decision1_event(&mut self, decision: u32, src: u16) {
        let skip = self.begin_event(VT_DECISION);
        self.truthy_eax(src);
        self.asm.mov_r32_r32(RDX, RAX); // vector (zero-extended)
        self.asm.mov_r32_r32(RCX, RAX); // outcome
        self.load_recorder_rdi();
        self.asm.mov_r_imm32(RSI, decision);
        self.call_event();
        self.end_event(skip);
    }

    /// `branch(regs[src] != 0 ? then_branch : else_branch)` recorder event.
    fn branch_select_event(&mut self, src: u16, then_branch: u32, else_branch: u32) {
        self.branch_bound = self.branch_bound.max(then_branch.max(else_branch) as usize + 1);
        self.truthy_eax(src);
        self.asm.mov_r_imm32(RCX, then_branch);
        self.asm.mov_r_imm32(RSI, else_branch);
        self.asm.test_r32(RAX, RAX);
        self.asm.cmovnz_r32(RSI, RCX);
        self.branch_event_from_rsi();
    }

    /// `if regs[cond] == 0.0 { jump target }` — NaN does not jump, exactly
    /// like the VM's `== 0.0` test (so no `ucomisd`, whose ZF is also set
    /// on unordered).
    fn jump_if_zero(&mut self, cond: u16, target: usize) {
        self.load_xmm0(cond);
        self.clobber_xmm0(); // the cmpsd below destroys xmm0
        let a = &mut self.asm;
        a.logic_pd(0x57, 1, 1);
        a.cmpsd_rr(0, 1, CMP_EQ);
        a.movq_r_x(RAX, 0);
        a.test_r32(RAX, RAX);
        a.jnz_to(target);
        self.jump_targets.insert(target);
    }

    /// Assembles a decision bit vector from condition registers into `rdx`,
    /// then fires `decision_eval(decision, vector, regs[outcome] != 0)`.
    fn decision_vector_event(&mut self, decision: u32, conds: &[u16], outcome: u16) {
        let skip = self.begin_event(VT_DECISION);
        self.asm.xor_r32(RDX, RDX);
        self.asm.mov_r_r(R8, RDX); // accumulate in r8 (truthy clobbers rax)
        for (bit, &c) in conds.iter().enumerate() {
            self.truthy_eax(c);
            if bit > 0 {
                self.asm.shl_r_imm8(RAX, bit as u8);
            }
            self.asm.or_r_r(R8, RAX);
        }
        self.truthy_eax(outcome);
        self.asm.mov_r32_r32(RCX, RAX);
        self.asm.mov_r_r(RDX, R8);
        self.load_recorder_rdi();
        self.asm.mov_r_imm32(RSI, decision);
        self.call_event();
        self.end_event(skip);
    }

    fn lower_op(&mut self, pc: usize, op: &FlatOp) {
        let next = pc + 1;
        match *op {
            FlatOp::Const { dst, idx } => {
                let bits = self.program.const_pool[idx as usize].to_bits();
                self.asm.mov_r_imm64(RAX, bits);
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
            }
            FlatOp::Const2 { dst1, idx1, dst2, idx2 } => {
                for (d, i) in [(dst1, idx1), (dst2, idx2)] {
                    let bits = self.program.const_pool[i as usize].to_bits();
                    self.asm.mov_r_imm64(RAX, bits);
                    self.asm.mov_mem_r(RBX, slot(d), RAX);
                    self.wrote_reg(d);
                }
            }
            FlatOp::Copy { dst, src } => {
                self.asm.mov_r_mem(RAX, RBX, slot(src));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
            }
            FlatOp::Input { dst, index } => {
                self.asm.mov_r_mem(RAX, R13, slot(index));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
            }
            FlatOp::Output { index, src } => {
                self.asm.mov_r_mem(RAX, RBX, slot(src));
                self.asm.mov_mem_r(R14, slot(index), RAX);
            }
            FlatOp::Unop { dst, op, src } => match op {
                UnopCode::Neg => {
                    self.load_xmm0(src);
                    self.asm.mov_r_imm64(RAX, F64_SIGN_BIT);
                    self.asm.movq_x_r(1, RAX);
                    self.asm.logic_pd(0x57, 0, 1); // xorpd: flip sign
                    self.clobber_xmm0();
                    self.store_xmm0(dst);
                }
                UnopCode::Not => {
                    self.load_xmm0(src);
                    self.clobber_xmm0();
                    self.asm.logic_pd(0x57, 1, 1);
                    self.asm.cmpsd_rr(0, 1, CMP_EQ);
                    self.mask_to_bool_store(dst);
                }
                UnopCode::Truthy => {
                    self.load_xmm0(src);
                    self.clobber_xmm0();
                    self.asm.logic_pd(0x57, 1, 1);
                    self.asm.cmpsd_rr(0, 1, CMP_NEQ);
                    self.mask_to_bool_store(dst);
                }
            },
            FlatOp::Binop { dst, op, lhs, rhs } => self.binop(op, dst, lhs, rhs),
            FlatOp::BinopCmp { dst, op, lhs, rhs } => {
                self.compare_event(lhs, rhs);
                self.binop(op, dst, lhs, rhs);
            }
            FlatOp::CmpJump { op, dst, lhs, rhs, skip } => {
                self.compare_event(lhs, rhs);
                self.binop(op, dst, lhs, rhs);
                self.jump_if_zero(dst, next + skip as usize);
            }
            FlatOp::Call { dst, func, argc, args } => {
                let idx = self
                    .func_index
                    .iter()
                    .position(|&(f, a)| f == func && a == argc as usize)
                    .expect("function collected during scan");
                for i in 0..argc as usize {
                    if i == 0 {
                        self.load_xmm0(args[0]);
                    } else {
                        self.asm.movsd_load(i as u8, RBX, slot(args[i]));
                    }
                }
                let func_ptr = unsafe { self.funcs.add(idx) };
                self.asm.mov_r_imm64(RDI, func_ptr as u64);
                self.asm.mov_r_imm32(RSI, u32::from(argc));
                self.call_helper(jh_call as *const () as usize);
                self.store_xmm0(dst);
            }
            FlatOp::CastSat { dst, src, ty } => {
                self.load_xmm0(src);
                self.asm.mov_r_imm32(RDI, ty_code(ty) as u32);
                self.call_helper(jh_castsat as *const () as usize);
                self.store_xmm0(dst);
            }
            FlatOp::CastSatCopy { dst, src, ty, dst2 } => {
                self.load_xmm0(src);
                self.asm.mov_r_imm32(RDI, ty_code(ty) as u32);
                self.call_helper(jh_castsat as *const () as usize);
                self.store_xmm0(dst);
                self.store_xmm0(dst2);
            }
            FlatOp::CopyCastSat { dst, src, dst2, ty } => {
                self.asm.mov_r_mem(RAX, RBX, slot(src));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
                self.load_xmm0(dst);
                self.asm.mov_r_imm32(RDI, ty_code(ty) as u32);
                self.call_helper(jh_castsat as *const () as usize);
                self.store_xmm0(dst2);
            }
            FlatOp::LoadState { dst, slot: s } => {
                self.asm.mov_r_mem(RAX, R12, slot(s));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
            }
            FlatOp::Load2 { dst1, slot1, dst2, slot2 } => {
                for (d, s) in [(dst1, slot1), (dst2, slot2)] {
                    self.asm.mov_r_mem(RAX, R12, slot(s));
                    self.asm.mov_mem_r(RBX, slot(d), RAX);
                    self.wrote_reg(d);
                }
            }
            FlatOp::StoreState { slot: s, src } => {
                self.asm.mov_r_mem(RAX, RBX, slot(src));
                self.asm.mov_mem_r(R12, slot(s), RAX);
            }
            FlatOp::StoreState2 { slot1, src1, slot2, src2 } => {
                for (s, r) in [(slot1, src1), (slot2, src2)] {
                    self.asm.mov_r_mem(RAX, RBX, slot(r));
                    self.asm.mov_mem_r(R12, slot(s), RAX);
                }
            }
            FlatOp::ShiftState { base, len, src } => {
                self.load_xmm0(src);
                self.asm.mov_r_r(RDI, R12);
                self.asm.mov_r_imm32(RSI, base);
                self.asm.mov_r_imm32(RDX, len);
                self.call_helper(jh_shift_state as *const () as usize);
            }
            FlatOp::Lookup1 { dst, src, table } => {
                self.load_xmm0(src);
                let t = &self.tables1[table as usize] as *const (Vec<f64>, Vec<f64>);
                self.asm.mov_r_imm64(RDI, t as u64);
                self.call_helper(jh_lookup1 as *const () as usize);
                self.store_xmm0(dst);
            }
            FlatOp::Lookup2 { dst, row, col, table } => {
                self.load_xmm0(row);
                self.asm.movsd_load(1, RBX, slot(col));
                let t = &self.tables2[table as usize] as *const Lookup2Table;
                self.asm.mov_r_imm64(RDI, t as u64);
                self.call_helper(jh_lookup2 as *const () as usize);
                self.store_xmm0(dst);
            }
            FlatOp::Probe { branch } => {
                self.branch_bound = self.branch_bound.max(usize::from(branch) + 1);
                let a = &mut self.asm;
                a.mov_r_mem(RAX, R15, CTX_FLAGS);
                a.test_r(RAX, RAX);
                let slow = a.jz_fwd();
                a.mov_mem8_imm1(RAX, i32::from(branch));
                let done = a.jmp_fwd();
                a.bind_fwd(slow);
                self.load_recorder_rdi();
                self.asm.mov_r_imm32(RSI, u32::from(branch));
                self.asm.mov_r_mem(R10, R15, CTX_VT);
                self.asm.call_mem(R10, VT_BRANCH);
                self.asm.bind_fwd(done);
                self.clobber_xmm0();
            }
            FlatOp::CondProbe { cond, src } => {
                self.condition_event(u32::from(cond), src);
            }
            FlatOp::CondProbe2 { cond1, src1, cond2, src2 } => {
                self.condition_event(u32::from(cond1), src1);
                self.condition_event(u32::from(cond2), src2);
            }
            FlatOp::Decision1 { decision, cond, src } => {
                self.condition_event(u32::from(cond), src);
                self.decision1_event(u32::from(decision), src);
            }
            FlatOp::DecisionSel { decision, cond, src, then_branch, else_branch } => {
                self.condition_event(u32::from(cond), src);
                self.decision1_event(u32::from(decision), src);
                self.branch_select_event(src, u32::from(then_branch), u32::from(else_branch));
            }
            FlatOp::CmpSel { op, dst, lhs, rhs, decision, cond, then_branch, else_branch } => {
                self.compare_event(lhs, rhs);
                self.binop(op, dst, lhs, rhs);
                self.condition_event(u32::from(cond), dst);
                self.decision1_event(u32::from(decision), dst);
                self.branch_select_event(dst, u32::from(then_branch), u32::from(else_branch));
            }
            FlatOp::DecisionEvalSmall { decision, outcome, len, conds } => {
                let conds = conds[..len as usize].to_vec();
                self.decision_vector_event(u32::from(decision), &conds, outcome);
            }
            FlatOp::DecisionEvalPool { decision, outcome, start, len } => {
                let conds =
                    self.program.cond_pool[start as usize..start as usize + len as usize].to_vec();
                self.decision_vector_event(u32::from(decision), &conds, outcome);
            }
            FlatOp::Assert { id, cond } => {
                let skip = self.begin_event(VT_ASSERTION);
                self.truthy_eax(cond);
                self.asm.mov_r32_r32(RDX, RAX);
                self.load_recorder_rdi();
                self.asm.mov_r_imm32(RSI, u32::from(id));
                self.call_event();
                self.end_event(skip);
            }
            FlatOp::ProbeSelect { cond, then_branch, else_branch } => {
                self.branch_select_event(cond, u32::from(then_branch), u32::from(else_branch));
            }
            FlatOp::JumpIfZero { cond, skip } => {
                self.jump_if_zero(cond, next + skip as usize);
            }
            FlatOp::JzLoad { cond, skip, dst, slot: s } => {
                self.jump_if_zero(cond, next + skip as usize);
                self.asm.mov_r_mem(RAX, R12, slot(s));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
            }
            FlatOp::LoadJz { dst, slot: s, cond, skip } => {
                self.asm.mov_r_mem(RAX, R12, slot(s));
                self.asm.mov_mem_r(RBX, slot(dst), RAX);
                self.wrote_reg(dst);
                self.jump_if_zero(cond, next + skip as usize);
            }
            FlatOp::DecisionSelJz { decision, cond, src, then_branch, else_branch, skip } => {
                self.condition_event(u32::from(cond), src);
                self.decision1_event(u32::from(decision), src);
                self.branch_select_event(src, u32::from(then_branch), u32::from(else_branch));
                self.jump_if_zero(src, next + skip as usize);
            }
            FlatOp::JzJz { cond1, skip1, cond2, skip2 } => {
                self.jump_if_zero(cond1, next + skip1 as usize);
                self.jump_if_zero(cond2, next + skip2 as usize);
            }
            FlatOp::JumpIfNonZero { cond, skip } => {
                let target = next + skip as usize;
                self.load_xmm0(cond);
                self.clobber_xmm0();
                let a = &mut self.asm;
                a.logic_pd(0x57, 1, 1);
                a.cmpsd_rr(0, 1, CMP_NEQ);
                a.movq_r_x(RAX, 0);
                a.test_r32(RAX, RAX);
                a.jnz_to(target);
                self.jump_targets.insert(target);
            }
            FlatOp::Jump { skip } => {
                let target = next + skip as usize;
                self.asm.jmp_to(target);
                self.jump_targets.insert(target);
                self.clobber_xmm0();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled program container.

/// One compiled entry point (probed or probe-stripped program).
pub(crate) struct JitCode {
    buf: ExecBuf,
    code_len: usize,
    blocks: usize,
    /// One past the highest branch id this program's probes can emit.
    branch_bound: usize,
}

impl JitCode {
    #[inline]
    fn entry(&self) -> extern "sysv64" fn(*const JitCtx) {
        unsafe { std::mem::transmute::<*mut u8, extern "sysv64" fn(*const JitCtx)>(self.buf.ptr) }
    }
}

/// Both native entry points for one compiled model, plus owned copies of
/// every side table the machine code points into (function codes, lookup
/// tables). Self-contained: the code never dereferences the
/// [`CompiledModel`] it was compiled from.
pub(crate) struct JitProgram {
    probed: JitCode,
    noprobe: JitCode,
    // Referenced by absolute addresses burned into the code — never
    // mutate after compilation (heap buffers must not move).
    _funcs: Vec<FuncCode>,
    _tables1: Vec<(Vec<f64>, Vec<f64>)>,
    _tables2: Vec<Lookup2Table>,
    compile_ns: u64,
}

impl std::fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitProgram")
            .field("probed_bytes", &self.probed.code_len)
            .field("noprobe_bytes", &self.noprobe.code_len)
            .finish()
    }
}

impl JitProgram {
    pub(crate) fn stats(&self) -> JitStats {
        JitStats {
            probed_code_bytes: self.probed.code_len,
            noprobe_code_bytes: self.noprobe.code_len,
            probed_blocks: self.probed.blocks,
            noprobe_blocks: self.noprobe.blocks,
            compile_ns: self.compile_ns,
        }
    }
}

/// Lazily-compiled JIT cache slot carried by [`CompiledModel`]. Clones
/// start empty (machine code embeds addresses owned by the program it was
/// compiled for, so it is never shared across model instances).
pub(crate) struct JitCache(OnceLock<Option<JitProgram>>);

impl JitCache {
    pub(crate) fn get_or_compile(&self, compiled: &CompiledModel) -> Option<&JitProgram> {
        self.0.get_or_init(|| compile_jit(compiled)).as_ref()
    }
}

impl Default for JitCache {
    fn default() -> Self {
        JitCache(OnceLock::new())
    }
}

impl Clone for JitCache {
    fn clone(&self) -> Self {
        JitCache::default()
    }
}

impl std::fmt::Debug for JitCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JitCache(compiled: {})", self.0.get().is_some())
    }
}

/// Emits one program: prologue, one template per flat op, epilogue.
fn emit_program(
    program: &FlatProgram,
    funcs: &[FuncCode],
    func_index: &[(FuncCode, usize)],
    tables1: &[(Vec<f64>, Vec<f64>)],
    tables2: &[Lookup2Table],
) -> Option<JitCode> {
    let mut lw = Lowerer {
        asm: Asm::new(),
        program,
        funcs: funcs.as_ptr(),
        func_index,
        tables1,
        tables2,
        jump_targets: HashSet::new(),
        branch_bound: 0,
        cached: None,
    };

    // Prologue: 5 pushes after the call leave rsp 16-aligned for the body,
    // so every `call` site below satisfies the System V stack contract.
    for r in [RBX, R12, R13, R14, R15] {
        lw.asm.push_r(r);
    }
    lw.asm.mov_r_r(R15, RDI);
    lw.asm.mov_r_mem(RBX, R15, 0x00);
    lw.asm.mov_r_mem(R12, R15, 0x08);
    lw.asm.mov_r_mem(R13, R15, 0x10);
    lw.asm.mov_r_mem(R14, R15, 0x18);

    for (pc, op) in program.ops.iter().enumerate() {
        lw.asm.labels.push(lw.asm.code.len());
        debug_assert_eq!(lw.asm.labels.len(), pc + 1);
        // All flat jumps are forward, so by the time a target pc is
        // lowered it is already in `jump_targets`; merge points start
        // with an empty forwarding cache.
        if lw.jump_targets.contains(&pc) {
            lw.clobber_xmm0();
        }
        lw.lower_op(pc, op);
    }
    lw.asm.labels.push(lw.asm.code.len()); // epilogue label (ops.len())

    for r in [R15, R14, R13, R12, RBX] {
        lw.asm.pop_r(r);
    }
    lw.asm.u8(0xC3); // ret

    lw.asm.patch_fixups();
    let code_len = lw.asm.code.len();
    let blocks = lw.jump_targets.len() + 1;
    let branch_bound = lw.branch_bound;
    let buf = ExecBuf::new(&lw.asm.code)?;
    Some(JitCode { buf, code_len, blocks, branch_bound })
}

/// Compiles both flat variants of a model to native code. Returns `None`
/// if executable pages cannot be mapped (the caller falls back to the
/// flat VM).
pub(crate) fn compile_jit(compiled: &CompiledModel) -> Option<JitProgram> {
    let compile_started = std::time::Instant::now();
    // Collect every (func, arity) pair of both programs up front: the
    // emitted code holds absolute addresses of elements of `funcs`, so the
    // vector must be complete (and never touched again) before lowering.
    let mut func_index: Vec<(FuncCode, usize)> = Vec::new();
    for program in [&compiled.flat, &compiled.flat_noprobe] {
        for op in &program.ops {
            if let FlatOp::Call { func, argc, .. } = op {
                let key = (*func, *argc as usize);
                if !func_index.contains(&key) {
                    func_index.push(key);
                }
            }
        }
    }
    let funcs: Vec<FuncCode> = func_index.iter().map(|(f, _)| *f).collect();
    let tables1 = compiled.tables1.clone();
    let tables2 = compiled.tables2.clone();

    let probed = emit_program(&compiled.flat, &funcs, &func_index, &tables1, &tables2)?;
    let noprobe = emit_program(&compiled.flat_noprobe, &funcs, &func_index, &tables1, &tables2)?;
    Some(JitProgram {
        probed,
        noprobe,
        _funcs: funcs,
        _tables1: tables1,
        _tables2: tables2,
        compile_ns: compile_started.elapsed().as_nanos() as u64,
    })
}

/// Runs one step of a compiled program (the JIT counterpart of
/// `run_flat`): picks the probed or probe-stripped entry by the recorder's
/// observation promise and calls into the native code.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_jit<R: Recorder>(
    jit: &JitProgram,
    regs: &mut [f64],
    state: &mut [f64],
    inputs: &[f64],
    outputs: &mut [f64],
    recorder: &mut R,
) {
    let code = if R::OBSERVES_PROBES { &jit.probed } else { &jit.noprobe };
    // Validate the dense-flags fast path once per step: every inline store
    // the code emits hits an id below `branch_bound`, so a buffer at least
    // that long needs no per-probe bounds checks. Too short (a recorder
    // sized for a different map) falls back to the vtable, which indexes
    // through the recorder's own (panicking) accessor like the flat VM.
    let branch_flags = if R::OBSERVES_PROBES {
        match recorder.branch_flags() {
            Some(flags) if flags.len() >= code.branch_bound => flags.as_mut_ptr(),
            _ => std::ptr::null_mut(),
        }
    } else {
        std::ptr::null_mut()
    };
    let vt = RecorderVt::of::<R>();
    let ctx = JitCtx {
        regs: regs.as_mut_ptr(),
        state: state.as_mut_ptr(),
        inputs: inputs.as_ptr(),
        outputs: outputs.as_mut_ptr(),
        recorder: (recorder as *mut R).cast(),
        vt: &vt,
        branch_flags,
    };
    (code.entry())(&ctx);
}
