//! The recursive interpretation engine: one `Engine` per model level, with
//! child engines for subsystems.

use std::collections::VecDeque;

use cftcg_model::expr::{exec_stmts, EvalExprError, ExprEnv, MapEnv};
use cftcg_model::interp::{lookup1d, lookup2d};
use cftcg_model::{
    BlockKind, DataType, InputSign, LogicOp, MinMaxOp, Model, ModelError, PortRef, ProductOp, Value,
};

use crate::{BlockObserver, SimError};

impl From<EvalExprError> for SimError {
    fn from(e: EvalExprError) -> Self {
        SimError::Eval(e.to_string())
    }
}

/// Per-block runtime state.
#[derive(Debug, Clone)]
enum BlockState {
    /// Stateless block.
    None,
    /// A single held value (unit delay, memory, merge, backlash, rate
    /// limiter previous output).
    Held(Value),
    /// Relay or edge-detect boolean state.
    Flag(bool),
    /// Multi-step delay line (front = oldest).
    Line(VecDeque<Value>),
    /// Integrator accumulator.
    Accum(f64),
    /// Counter value.
    Count(u32),
    /// Chart runtime: active state index plus persistent variables/outputs.
    Chart { active: usize, env: MapEnv },
    /// Nested engine (all subsystem kinds); `prev_trigger` backs the
    /// triggered variant's edge detection.
    Sub { engine: Box<Engine>, prev_trigger: bool },
}

/// The interpretation engine for one model level.
#[derive(Debug, Clone)]
pub(crate) struct Engine {
    /// Assertion violations observed since construction/reset (this level
    /// plus nested subsystems).
    violations: u64,
    model: Model,
    /// Execution order as dense block indices.
    order: Vec<usize>,
    /// `src[b][p]` = driving output of input port `p` of block `b`.
    src: Vec<Vec<Option<(usize, usize)>>>,
    /// Resolved output types.
    out_types: Vec<Vec<DataType>>,
    /// Current output values per block per port. Subsystem/merge/chart
    /// outputs persist across steps (held when inactive).
    signals: Vec<Vec<Value>>,
    state: Vec<BlockState>,
    /// `active[b]` = block `b` (a conditional subsystem) executed this step.
    active: Vec<bool>,
    /// Indices of delay-class blocks, in block order.
    delay_blocks: Vec<usize>,
}

impl Engine {
    pub(crate) fn new(model: Model) -> Result<Self, ModelError> {
        let order: Vec<usize> = model.execution_order()?.into_iter().map(|id| id.index()).collect();
        let types = model.resolve_types()?;
        let n = model.blocks().len();
        let mut src = Vec::with_capacity(n);
        let mut out_types = Vec::with_capacity(n);
        for block in model.blocks() {
            let mut per_port = Vec::with_capacity(block.kind().num_inputs());
            for port in 0..block.kind().num_inputs() {
                per_port.push(
                    model
                        .source_of(PortRef::new(block.id(), port))
                        .map(|s| (s.block.index(), s.port)),
                );
            }
            src.push(per_port);
            let mut ports = Vec::with_capacity(block.kind().num_outputs());
            for port in 0..block.kind().num_outputs() {
                ports.push(types.output_type(PortRef::new(block.id(), port)));
            }
            out_types.push(ports);
        }
        let signals: Vec<Vec<Value>> =
            out_types.iter().map(|ports| ports.iter().map(|t| t.zero()).collect()).collect();
        let mut state = Vec::with_capacity(n);
        for block in model.blocks() {
            state.push(initial_state(block.kind())?);
        }
        let delay_blocks = model
            .blocks()
            .iter()
            .filter(|b| b.kind().breaks_algebraic_loops())
            .map(|b| b.id().index())
            .collect();
        Ok(Engine {
            violations: 0,
            model,
            order,
            src,
            out_types,
            signals,
            state,
            active: vec![false; n],
            delay_blocks,
        })
    }

    /// Assertion violations observed so far, including nested subsystems.
    pub(crate) fn violations(&self) -> u64 {
        let nested: u64 = self
            .state
            .iter()
            .map(|s| match s {
                BlockState::Sub { engine, .. } => engine.violations(),
                _ => 0,
            })
            .sum();
        self.violations + nested
    }

    pub(crate) fn model(&self) -> &Model {
        &self.model
    }

    /// Appends `(name, type)` for every block output port at this level in
    /// schedule order, recursing into subsystems so a container's inner
    /// signals precede its own ports — the exact enumeration the compiled
    /// signal table (`CompiledModel::signals`) uses.
    pub(crate) fn collect_signals(&self, path: &str, out: &mut Vec<(String, DataType)>) {
        for &b in &self.order {
            let name = self.model.blocks()[b].name();
            if let BlockState::Sub { engine, .. } = &self.state[b] {
                engine.collect_signals(&format!("{path}/{name}"), out);
            }
            for (port, ty) in self.out_types[b].iter().enumerate() {
                out.push((format!("{path}/{name}:{port}"), *ty));
            }
        }
    }

    /// Appends the current value of every signal as `f64`, in
    /// [`Engine::collect_signals`] order.
    pub(crate) fn read_signals_into(&self, out: &mut Vec<f64>) {
        for &b in &self.order {
            if let BlockState::Sub { engine, .. } = &self.state[b] {
                engine.read_signals_into(out);
            }
            for v in &self.signals[b] {
                out.push(v.as_f64());
            }
        }
    }

    pub(crate) fn reset(&mut self) {
        self.violations = 0;
        for (i, block) in self.model.blocks().iter().enumerate() {
            self.state[i] = initial_state(block.kind()).expect("state was constructible before");
            for (port, ty) in self.out_types[i].iter().enumerate() {
                self.signals[i][port] = ty.zero();
            }
        }
    }

    fn input(&self, block: usize, port: usize) -> Value {
        let (sb, sp) = self.src[block][port].expect("validated model has no unconnected inputs");
        self.signals[sb][sp]
    }

    fn input_f64(&self, block: usize, port: usize) -> f64 {
        self.input(block, port).as_f64()
    }

    fn write(&mut self, block: usize, port: usize, value: Value) {
        self.signals[block][port] = value.cast(self.out_types[block][port]);
    }

    fn write_f64(&mut self, block: usize, port: usize, x: f64) {
        self.signals[block][port] = Value::from_f64(x, self.out_types[block][port]);
    }

    pub(crate) fn step<O: BlockObserver>(
        &mut self,
        inputs: &[Value],
        spins: u32,
        obs: &mut O,
    ) -> Result<Vec<Value>, SimError> {
        self.active.iter_mut().for_each(|a| *a = false);

        // Phase A: delay-class blocks publish their state as this step's
        // output before anything executes.
        for i in 0..self.delay_blocks.len() {
            let b = self.delay_blocks[i];
            let value = match &self.state[b] {
                BlockState::Held(v) => *v,
                BlockState::Line(line) => *line.front().expect("delay line is non-empty"),
                BlockState::Accum(x) => Value::F64(*x),
                other => unreachable!("delay-class state {other:?}"),
            };
            self.write(b, 0, value);
        }

        // Phase B: execute every block in schedule order. The observer
        // branch is decided by a monomorphized constant: with `NoObserver`
        // this loop compiles to the untimed path.
        for i in 0..self.order.len() {
            let b = self.order[i];
            engine_overhead(spins);
            if O::ENABLED {
                let started = std::time::Instant::now();
                self.exec_block(b, inputs, obs)?;
                let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs.block(self.model.blocks()[b].kind().tag(), nanos);
            } else {
                self.exec_block(b, inputs, obs)?;
            }
        }

        // Phase C: delay-class blocks absorb this step's input into state.
        for i in 0..self.delay_blocks.len() {
            let b = self.delay_blocks[i];
            let u = self.input(b, 0);
            match (&mut self.state[b], self.model.blocks()[b].kind()) {
                (BlockState::Held(v), _) => *v = u.cast(v.data_type()),
                (BlockState::Line(line), _) => {
                    let ty = line.front().expect("non-empty").data_type();
                    line.push_back(u.cast(ty));
                    line.pop_front();
                }
                (
                    BlockState::Accum(x),
                    BlockKind::DiscreteIntegrator { gain, lower, upper, .. },
                ) => {
                    let mut next = *x + gain * u.as_f64();
                    if let Some(hi) = upper {
                        if next > *hi {
                            next = *hi;
                        }
                    }
                    if let Some(lo) = lower {
                        if next < *lo {
                            next = *lo;
                        }
                    }
                    *x = next;
                }
                (state, kind) => unreachable!("delay update {state:?} for {}", kind.tag()),
            }
        }

        // Collect outports.
        let mut outputs = Vec::with_capacity(self.model.num_outports());
        for (id, _) in self.model.outports() {
            outputs.push(self.input(id.index(), 0));
        }
        Ok(outputs)
    }

    fn exec_block<O: BlockObserver>(
        &mut self,
        b: usize,
        model_inputs: &[Value],
        obs: &mut O,
    ) -> Result<(), SimError> {
        let kind = self.model.blocks()[b].kind().clone();
        match kind {
            // Delay-class blocks already published in phase A.
            BlockKind::UnitDelay { .. }
            | BlockKind::Delay { .. }
            | BlockKind::Memory { .. }
            | BlockKind::DiscreteIntegrator { .. } => {}
            BlockKind::Inport { index, dtype } => {
                self.write(b, 0, model_inputs[index].cast(dtype));
            }
            BlockKind::Outport { .. } | BlockKind::Terminator => {}
            BlockKind::Assertion => {
                if !self.input(b, 0).is_truthy() {
                    self.violations += 1;
                }
            }
            BlockKind::Constant { value } => self.write(b, 0, value),
            BlockKind::Ground { dtype } => self.write(b, 0, dtype.zero()),
            BlockKind::Sum { signs } => {
                let mut acc = 0.0;
                for (port, sign) in signs.iter().enumerate() {
                    let x = self.input_f64(b, port);
                    match sign {
                        InputSign::Plus => acc += x,
                        InputSign::Minus => acc -= x,
                    }
                }
                self.write_f64(b, 0, acc);
            }
            BlockKind::Product { ops } => {
                let mut acc = 1.0;
                for (port, op) in ops.iter().enumerate() {
                    let x = self.input_f64(b, port);
                    match op {
                        ProductOp::Mul => acc *= x,
                        ProductOp::Div => acc /= x,
                    }
                }
                self.write_f64(b, 0, acc);
            }
            BlockKind::Gain { gain } => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, gain * x);
            }
            BlockKind::Bias { bias } => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, x + bias);
            }
            BlockKind::Abs => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, x.abs());
            }
            BlockKind::UnaryMinus => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, -x);
            }
            BlockKind::Signum => {
                let x = self.input_f64(b, 0);
                let y = if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                self.write_f64(b, 0, y);
            }
            BlockKind::MinMax { op, inputs } => {
                let mut acc = self.input_f64(b, 0);
                for port in 1..inputs {
                    let x = self.input_f64(b, port);
                    // Comparison-based selection, matching the generated
                    // code's `if (x < acc) acc = x;` (NaN never wins).
                    let wins = match op {
                        MinMaxOp::Min => x < acc,
                        MinMaxOp::Max => x > acc,
                    };
                    if wins {
                        acc = x;
                    }
                }
                self.write_f64(b, 0, acc);
            }
            BlockKind::Math { func } => {
                let args: Vec<f64> = (0..func.arity()).map(|p| self.input_f64(b, p)).collect();
                self.write_f64(b, 0, func.apply(&args));
            }
            BlockKind::Saturation { lower, upper } => {
                let x = self.input_f64(b, 0);
                let y = if x > upper {
                    upper
                } else if x < lower {
                    lower
                } else {
                    x
                };
                self.write_f64(b, 0, y);
            }
            BlockKind::DeadZone { start, end } => {
                let x = self.input_f64(b, 0);
                let y = if x > end {
                    x - end
                } else if x < start {
                    x - start
                } else {
                    0.0
                };
                self.write_f64(b, 0, y);
            }
            BlockKind::Relay { on_threshold, off_threshold, on_output, off_output } => {
                let x = self.input_f64(b, 0);
                let BlockState::Flag(on) = &mut self.state[b] else { unreachable!("relay state") };
                if *on {
                    if x <= off_threshold {
                        *on = false;
                    }
                } else if x >= on_threshold {
                    *on = true;
                }
                let y = if *on { on_output } else { off_output };
                self.write_f64(b, 0, y);
            }
            BlockKind::Quantizer { interval } => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, interval * (x / interval).round());
            }
            BlockKind::RateLimiter { rising, falling } => {
                let x = self.input_f64(b, 0);
                let BlockState::Held(prev) = &mut self.state[b] else {
                    unreachable!("rate limiter state")
                };
                let p = prev.as_f64();
                let delta = x - p;
                let y = if delta > rising {
                    p + rising
                } else if delta < -falling {
                    p - falling
                } else {
                    x
                };
                *prev = Value::F64(y);
                self.write_f64(b, 0, y);
            }
            BlockKind::Backlash { width, .. } => {
                let x = self.input_f64(b, 0);
                let BlockState::Held(held) = &mut self.state[b] else {
                    unreachable!("backlash state")
                };
                let mut y = held.as_f64();
                let half = width / 2.0;
                if x > y + half {
                    y = x - half;
                } else if x < y - half {
                    y = x + half;
                }
                *held = Value::F64(y);
                self.write_f64(b, 0, y);
            }
            BlockKind::CoulombFriction { offset, gain } => {
                let x = self.input_f64(b, 0);
                let y = if x > 0.0 {
                    gain * x + offset
                } else if x < 0.0 {
                    gain * x - offset
                } else {
                    0.0
                };
                self.write_f64(b, 0, y);
            }
            BlockKind::Logic { op, inputs } => {
                let n = if op == LogicOp::Not { 1 } else { inputs };
                let vals: Vec<bool> = (0..n).map(|p| self.input(b, p).is_truthy()).collect();
                let y = match op {
                    LogicOp::And => vals.iter().all(|&v| v),
                    LogicOp::Or => vals.iter().any(|&v| v),
                    LogicOp::Nand => !vals.iter().all(|&v| v),
                    LogicOp::Nor => !vals.iter().any(|&v| v),
                    LogicOp::Xor => vals.iter().filter(|&&v| v).count() % 2 == 1,
                    LogicOp::Not => !vals[0],
                };
                self.write(b, 0, Value::Bool(y));
            }
            BlockKind::Relational { op } => {
                let l = self.input_f64(b, 0);
                let r = self.input_f64(b, 1);
                self.write(b, 0, Value::Bool(op.apply(l, r)));
            }
            BlockKind::Compare { op, constant } => {
                let x = self.input_f64(b, 0);
                self.write(b, 0, Value::Bool(op.apply(x, constant)));
            }
            BlockKind::Switch { criterion } => {
                let control = self.input_f64(b, 1);
                let v = if criterion.passes_first(control) {
                    self.input(b, 0)
                } else {
                    self.input(b, 2)
                };
                self.write(b, 0, v);
            }
            BlockKind::MultiportSwitch { cases } => {
                let sel = self.input_f64(b, 0).round();
                let idx =
                    if sel.is_nan() { 1 } else { (sel as i64).clamp(1, cases as i64) as usize };
                let v = self.input(b, idx);
                self.write(b, 0, v);
            }
            BlockKind::Merge { inputs } => {
                // The input whose driving conditional subsystem ran this
                // step wins; otherwise the output holds.
                let mut chosen = None;
                for port in 0..inputs {
                    let (sb, _) = self.src[b][port].expect("validated");
                    if self.active[sb] {
                        chosen = Some(self.input(b, port));
                        break;
                    }
                }
                let BlockState::Held(held) = &mut self.state[b] else {
                    unreachable!("merge state")
                };
                let v = chosen.unwrap_or(*held);
                *held = v;
                self.write(b, 0, v);
            }
            BlockKind::DataTypeConversion { to } => {
                let v = self.input(b, 0);
                self.write(b, 0, v.cast(to));
            }
            BlockKind::ZeroOrderHold => {
                let v = self.input(b, 0);
                self.write(b, 0, v);
            }
            BlockKind::CounterLimited { limit } => {
                let BlockState::Count(c) = &mut self.state[b] else {
                    unreachable!("counter state")
                };
                let y = *c;
                *c = if *c >= limit { 0 } else { *c + 1 };
                self.write(b, 0, Value::U32(y));
            }
            BlockKind::CounterFreeRunning { bits } => {
                let BlockState::Count(c) = &mut self.state[b] else {
                    unreachable!("counter state")
                };
                let y = *c;
                let mask = if bits >= 32 { u32::MAX } else { (1u32 << bits) - 1 };
                *c = c.wrapping_add(1) & mask;
                self.write(b, 0, Value::U32(y));
            }
            BlockKind::EdgeDetect { kind } => {
                let curr = self.input(b, 0).is_truthy();
                let BlockState::Flag(prev) = &mut self.state[b] else { unreachable!("edge state") };
                let y = kind.detect(*prev, curr);
                *prev = curr;
                self.write(b, 0, Value::Bool(y));
            }
            BlockKind::Lookup1D { breakpoints, values } => {
                let x = self.input_f64(b, 0);
                self.write_f64(b, 0, lookup1d(&breakpoints, &values, x));
            }
            BlockKind::Lookup2D { row_breaks, col_breaks, values } => {
                let r = self.input_f64(b, 0);
                let c = self.input_f64(b, 1);
                self.write_f64(b, 0, lookup2d(&row_breaks, &col_breaks, &values, r, c));
            }
            BlockKind::If { num_inputs, conditions, has_else } => {
                let mut env = MapEnv::new();
                for port in 0..num_inputs {
                    env.set(&format!("u{}", port + 1), self.input(b, port));
                }
                let mut fired = None;
                for (i, cond) in conditions.iter().enumerate() {
                    if cond.eval(&env)?.is_truthy() {
                        fired = Some(i);
                        break;
                    }
                }
                let total = conditions.len() + usize::from(has_else);
                for port in 0..total {
                    let hit = match fired {
                        Some(i) => port == i,
                        None => has_else && port == conditions.len(),
                    };
                    self.write(b, port, Value::Bool(hit));
                }
            }
            BlockKind::SwitchCase { cases, has_default } => {
                let sel_f = self.input_f64(b, 0).round();
                let sel = if sel_f.is_nan() { i64::MIN } else { sel_f as i64 };
                let fired = cases.iter().position(|labels| labels.contains(&sel));
                let total = cases.len() + usize::from(has_default);
                for port in 0..total {
                    let hit = match fired {
                        Some(i) => port == i,
                        None => has_default && port == cases.len(),
                    };
                    self.write(b, port, Value::Bool(hit));
                }
            }
            BlockKind::ActionSubsystem { .. } | BlockKind::EnabledSubsystem { .. } => {
                let run = self.input(b, 0).is_truthy();
                self.run_subsystem(b, run, 1, obs)?;
            }
            BlockKind::TriggeredSubsystem { edge, .. } => {
                let trigger = self.input(b, 0).is_truthy();
                let run = {
                    let BlockState::Sub { prev_trigger, .. } = &mut self.state[b] else {
                        unreachable!("subsystem state")
                    };
                    let fire = edge.detect(*prev_trigger, trigger);
                    *prev_trigger = trigger;
                    fire
                };
                self.run_subsystem(b, run, 1, obs)?;
            }
            BlockKind::Subsystem { .. } => {
                self.run_subsystem(b, true, 0, obs)?;
            }
            BlockKind::MatlabFunction { function } => {
                let mut env = MapEnv::new();
                for (port, (name, ty)) in function.inputs().iter().enumerate() {
                    env.set(name, self.input(b, port).cast(*ty));
                }
                for (name, ty) in function.outputs() {
                    env.set(name, ty.zero());
                }
                exec_stmts(function.body(), &mut env)?;
                for (port, (name, _)) in function.outputs().iter().enumerate() {
                    let v = env.get(name).expect("outputs pre-seeded");
                    self.write(b, port, v);
                }
            }
            BlockKind::Chart { chart } => {
                let inputs: Vec<Value> =
                    (0..chart.inputs.len()).map(|port| self.input(b, port)).collect();
                let BlockState::Chart { active, env } = &mut self.state[b] else {
                    unreachable!("chart state")
                };
                for ((name, ty), v) in chart.inputs.iter().zip(inputs) {
                    env.set(name, v.cast(*ty));
                }
                let mut fired = None;
                for t in chart.transitions_from(*active) {
                    let take = match &t.guard {
                        Some(g) => g.eval(&*env)?.is_truthy(),
                        None => true,
                    };
                    if take {
                        fired = Some(t.clone());
                        break;
                    }
                }
                if let Some(t) = fired {
                    exec_stmts(&t.action, env)?;
                    exec_stmts(&chart.states[t.to].entry, env)?;
                    *active = t.to;
                } else {
                    let during = chart.states[*active].during.clone();
                    exec_stmts(&during, env)?;
                }
                let outs: Vec<Value> = chart
                    .outputs
                    .iter()
                    .map(|(name, ty)| env.get(name).map_or(ty.zero(), |v| v.cast(*ty)))
                    .collect();
                for (port, v) in outs.into_iter().enumerate() {
                    self.write(b, port, v);
                }
            }
            other => unreachable!("unhandled block kind {}", other.tag()),
        }
        Ok(())
    }

    /// Executes (or skips) a subsystem block, marking it active and copying
    /// inner outport values into the block's output signals when it runs.
    fn run_subsystem<O: BlockObserver>(
        &mut self,
        b: usize,
        run: bool,
        data_base: usize,
        obs: &mut O,
    ) -> Result<(), SimError> {
        if !run {
            return Ok(()); // outputs hold their previous signal values
        }
        self.active[b] = true;
        let num_data = self.model.blocks()[b].kind().num_inputs() - data_base;
        let inner_inputs: Vec<Value> =
            (0..num_data).map(|i| self.input(b, data_base + i)).collect();
        let outputs = {
            let BlockState::Sub { engine, .. } = &mut self.state[b] else {
                unreachable!("subsystem state")
            };
            engine.step(&inner_inputs, 0, obs)?
        };
        for (port, v) in outputs.into_iter().enumerate() {
            self.write(b, port, v);
        }
        Ok(())
    }
}

fn initial_state(kind: &BlockKind) -> Result<BlockState, ModelError> {
    Ok(match kind {
        BlockKind::UnitDelay { initial } | BlockKind::Memory { initial } => {
            BlockState::Held(*initial)
        }
        BlockKind::Delay { steps, initial } => {
            BlockState::Line(std::iter::repeat_n(*initial, *steps).collect())
        }
        BlockKind::DiscreteIntegrator { initial, lower, upper, .. } => {
            let mut x = *initial;
            if let Some(hi) = upper {
                x = x.min(*hi);
            }
            if let Some(lo) = lower {
                x = x.max(*lo);
            }
            BlockState::Accum(x)
        }
        BlockKind::Relay { .. } => BlockState::Flag(false),
        BlockKind::EdgeDetect { .. } => BlockState::Flag(false),
        BlockKind::RateLimiter { .. } => BlockState::Held(Value::F64(0.0)),
        BlockKind::Backlash { initial, .. } => BlockState::Held(Value::F64(*initial)),
        BlockKind::CounterLimited { .. } | BlockKind::CounterFreeRunning { .. } => {
            BlockState::Count(0)
        }
        BlockKind::Merge { .. } => BlockState::Held(Value::F64(0.0)),
        BlockKind::Chart { chart } => {
            let mut env = MapEnv::new();
            for (name, _, init) in &chart.variables {
                env.set(name, *init);
            }
            for (name, ty) in &chart.outputs {
                env.set(name, ty.zero());
            }
            // Run the initial state's entry action once, matching
            // Stateflow's default-transition-at-init semantics.
            exec_stmts(&chart.states[chart.initial].entry, &mut env).map_err(|e| {
                ModelError::BadParameter { block: "chart".into(), detail: e.to_string() }
            })?;
            BlockState::Chart { active: chart.initial, env }
        }
        BlockKind::ActionSubsystem { model }
        | BlockKind::EnabledSubsystem { model }
        | BlockKind::TriggeredSubsystem { model, .. }
        | BlockKind::Subsystem { model } => BlockState::Sub {
            engine: Box::new(Engine::new((**model).clone())?),
            prev_trigger: false,
        },
        _ => BlockState::None,
    })
}

#[inline]
fn engine_overhead(spins: u32) {
    for i in 0..spins {
        std::hint::black_box(i);
    }
}
