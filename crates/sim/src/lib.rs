#![warn(missing_docs)]

//! Interpretive simulator for CFTCG models.
//!
//! This crate is the reproduction's stand-in for Simulink's simulation
//! engine: a deliberately *interpretive* executor that walks the model graph
//! every step with dynamic dispatch on block kinds and boxed [`Value`]s. It
//! serves three roles:
//!
//! 1. **Reference semantics** — `cftcg-codegen`'s compiled step program is
//!    differentially tested against this engine, mirroring the paper's
//!    "verified the correctness of the generated code by comparing
//!    simulation results with code execution results".
//! 2. **The SimCoTest substrate** — the simulation-based baseline generates
//!    tests by running this engine, so its throughput is throttled by
//!    interpretation exactly as the paper describes (6 iterations/s vs
//!    26 000+ for the compiled fuzzer on SolarPV).
//! 3. **An engine-overhead model** — [`Simulator::set_engine_overhead`]
//!    adds per-block busy-work approximating Simulink's much heavier engine
//!    for headline-ratio experiments; benches report raw and throttled
//!    numbers separately.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};
//! use cftcg_sim::Simulator;
//!
//! let mut b = ModelBuilder::new("acc");
//! let u = b.inport("u", DataType::F64);
//! let sum = b.add("sum", BlockKind::Sum {
//!     signs: vec![cftcg_model::InputSign::Plus; 2],
//! });
//! let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
//! let y = b.outport("y");
//! b.connect(u, 0, sum, 0);
//! b.connect(dly, 0, sum, 1);
//! b.connect(sum, 0, dly, 0);
//! b.connect(sum, 0, y, 0);
//! let model = b.finish()?;
//!
//! let mut sim = Simulator::new(&model)?;
//! assert_eq!(sim.step(&[Value::F64(1.0)])?, vec![Value::F64(1.0)]);
//! assert_eq!(sim.step(&[Value::F64(2.0)])?, vec![Value::F64(3.0)]);
//! assert_eq!(sim.step(&[Value::F64(3.0)])?, vec![Value::F64(6.0)]);
//! # Ok(())
//! # }
//! ```

mod engine;

use std::fmt;

use cftcg_model::{DataType, Model, ModelError, Value};

use engine::Engine;

/// Zero-cost per-block execution observer, the interpreter's counterpart to
/// `cftcg_coverage::Recorder`: stepping is generic over the observer, so the
/// default [`NoObserver`] monomorphizes every timing probe away and the plain
/// [`Simulator::step`] path is byte-for-byte the pre-observer code.
///
/// When `ENABLED`, the engine wraps each block execution in a wall-clock
/// measurement and reports `(block kind tag, nanoseconds)`. Subsystem
/// containers report *inclusive* time (their inner blocks are also reported
/// individually).
pub trait BlockObserver {
    /// Compile-time switch: `false` removes all timing code from the
    /// monomorphized stepping loop.
    const ENABLED: bool;

    /// Called after each block execution with the block kind's tag (see
    /// `BlockKind::tag`) and the elapsed wall-clock nanoseconds.
    fn block(&mut self, kind: &'static str, nanos: u64);
}

/// The disabled observer: stepping with it compiles to the unobserved loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl BlockObserver for NoObserver {
    const ENABLED: bool = false;

    fn block(&mut self, _kind: &'static str, _nanos: u64) {}
}

/// Error produced while stepping a [`Simulator`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The number of input values does not match the model's inports.
    WrongInputCount {
        /// Inports the model declares.
        expected: usize,
        /// Values supplied.
        found: usize,
    },
    /// An embedded expression failed to evaluate (should not occur on a
    /// validated model; kept as an error rather than a panic for robustness
    /// against hand-constructed models).
    Eval(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WrongInputCount { expected, found } => {
                write!(f, "model expects {expected} input value(s), found {found}")
            }
            SimError::Eval(message) => write!(f, "expression evaluation failed: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// An interpretive simulation session over one model.
///
/// The simulator owns a copy of the model, per-block state, and the resolved
/// signal types. Construction validates the model; stepping never fails on a
/// validated model except for input-arity mistakes.
#[derive(Debug, Clone)]
pub struct Simulator {
    engine: Engine,
    step_count: u64,
    overhead_spins: u32,
}

impl Simulator {
    /// Builds a simulator for `model`, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the model fails validation.
    pub fn new(model: &Model) -> Result<Self, ModelError> {
        model.validate()?;
        Ok(Simulator { engine: Engine::new(model.clone())?, step_count: 0, overhead_spins: 0 })
    }

    /// Number of inports the model declares.
    pub fn num_inputs(&self) -> usize {
        self.engine.model().num_inports()
    }

    /// Number of outports the model declares.
    pub fn num_outputs(&self) -> usize {
        self.engine.model().num_outports()
    }

    /// Steps executed since construction or the last [`Simulator::reset`].
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Adds `spins` iterations of busy-work per block execution, modelling a
    /// heavier simulation engine (Simulink's interpreter does far more
    /// bookkeeping per block than this one). Zero disables the throttle.
    pub fn set_engine_overhead(&mut self, spins: u32) {
        self.overhead_spins = spins;
    }

    /// Assertion violations observed since construction or the last reset
    /// (Simulink Assertion blocks in warn-and-continue mode).
    pub fn violations(&self) -> u64 {
        self.engine.violations()
    }

    /// Resets all model state to initial conditions (the fuzz driver's
    /// `Model_init()`).
    pub fn reset(&mut self) {
        self.engine.reset();
        self.step_count = 0;
    }

    /// Executes one model iteration: reads one value per inport, returns one
    /// value per outport.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongInputCount`] when `inputs` does not match the
    /// inport count, or [`SimError::Eval`] if an embedded expression fails.
    pub fn step(&mut self, inputs: &[Value]) -> Result<Vec<Value>, SimError> {
        let expected = self.num_inputs();
        if inputs.len() != expected {
            return Err(SimError::WrongInputCount { expected, found: inputs.len() });
        }
        self.step_count += 1;
        self.engine.step(inputs, self.overhead_spins, &mut NoObserver)
    }

    /// [`Simulator::step`] with a [`BlockObserver`] attached: every block
    /// execution (including blocks inside subsystems) is timed and reported
    /// to `obs`. With [`NoObserver`] this monomorphizes to exactly the plain
    /// `step` loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::step`].
    pub fn step_observed<O: BlockObserver>(
        &mut self,
        inputs: &[Value],
        obs: &mut O,
    ) -> Result<Vec<Value>, SimError> {
        let expected = self.num_inputs();
        if inputs.len() != expected {
            return Err(SimError::WrongInputCount { expected, found: inputs.len() });
        }
        self.step_count += 1;
        self.engine.step(inputs, self.overhead_spins, obs)
    }

    /// The signal table: `(hierarchical name, resolved type)` for every
    /// block output port, in schedule order with subsystem-inner signals
    /// preceding their container's own ports. The enumeration order and
    /// naming (`model/…/block:port`) match
    /// `cftcg_codegen::CompiledModel::signals` exactly — the contract the
    /// lockstep divergence auditor relies on.
    pub fn signals(&self) -> Vec<(String, DataType)> {
        let mut out = Vec::new();
        self.engine.collect_signals(self.engine.model().name(), &mut out);
        out
    }

    /// Appends the current value of every signal (as `f64`, in
    /// [`Simulator::signals`] order) to `out`, clearing it first. Signal
    /// values persist across steps with hold semantics — a port inside a
    /// subsystem that did not run this tick reports its held value, exactly
    /// like the compiled VM's register file.
    pub fn read_signals_into(&self, out: &mut Vec<f64>) {
        out.clear();
        self.engine.read_signals_into(out);
    }

    /// Runs a whole test case: one [`Simulator::step`] per input tuple,
    /// collecting the outputs of every iteration.
    ///
    /// # Errors
    ///
    /// Propagates the first stepping error.
    pub fn run(&mut self, tuples: &[Vec<Value>]) -> Result<Vec<Vec<Value>>, SimError> {
        tuples.iter().map(|t| self.step(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    #[test]
    fn wrong_input_count_is_reported() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let y = b.outport("y");
        b.wire(u, y);
        let model = b.finish().unwrap();
        let mut sim = Simulator::new(&model).unwrap();
        let err = sim.step(&[]).unwrap_err();
        assert_eq!(err, SimError::WrongInputCount { expected: 1, found: 0 });
        assert!(err.to_string().contains("expects 1"));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let c = b.add("cnt", BlockKind::CounterFreeRunning { bits: 8 });
        let y = b.outport("y");
        b.wire(c, y);
        let model = b.finish().unwrap();
        let mut sim = Simulator::new(&model).unwrap();
        let one = Value::F64(0.0);
        assert_eq!(sim.step(&[one]).unwrap(), vec![Value::U8(0)]);
        assert_eq!(sim.step(&[one]).unwrap(), vec![Value::U8(1)]);
        assert_eq!(sim.step_count(), 2);
        sim.reset();
        assert_eq!(sim.step_count(), 0);
        assert_eq!(sim.step(&[one]).unwrap(), vec![Value::U8(0)]);
    }

    #[test]
    fn invalid_model_rejected_at_construction() {
        let mut b = ModelBuilder::new("m");
        b.add("g", BlockKind::Gain { gain: 1.0 });
        let model = b.finish_unchecked();
        assert!(Simulator::new(&model).is_err());
    }
}
