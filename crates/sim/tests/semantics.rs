//! Per-block semantics tests. These pin down the reference behaviour that
//! the compiled step program (`cftcg-codegen`) is differentially tested
//! against.

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, EdgeKind, FunctionDef, InputSign, LogicOp, MathFunc, MinMaxOp,
    ModelBuilder, ProductOp, RelOp, State, SwitchCriterion, Transition, Value,
};
use cftcg_sim::Simulator;

/// Builds a model with `n` F64 inports feeding `kind`, whose output 0 goes
/// to a single outport, and runs it over `steps`, returning output 0 of
/// every step.
fn run_block(kind: BlockKind, steps: &[Vec<f64>]) -> Vec<Value> {
    let n = kind.num_inputs();
    let mut b = ModelBuilder::new("probe");
    let blk = b.add("blk", kind);
    for port in 0..n {
        let u = b.inport(format!("u{port}"), DataType::F64);
        b.connect(u, 0, blk, port);
    }
    let y = b.outport("y");
    b.wire(blk, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    steps
        .iter()
        .map(|step| {
            let vals: Vec<Value> = step.iter().map(|&x| Value::F64(x)).collect();
            sim.step(&vals).unwrap()[0]
        })
        .collect()
}

fn f(outputs: Vec<Value>) -> Vec<f64> {
    outputs.into_iter().map(Value::as_f64).collect()
}

#[test]
fn sum_signs() {
    let kind = BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus, InputSign::Plus] };
    assert_eq!(f(run_block(kind, &[vec![5.0, 3.0, 1.0]])), vec![3.0]);
}

#[test]
fn product_ops() {
    let kind = BlockKind::Product { ops: vec![ProductOp::Mul, ProductOp::Div] };
    assert_eq!(f(run_block(kind, &[vec![6.0, 3.0]])), vec![2.0]);
}

#[test]
fn gain_bias_abs_neg_sign() {
    assert_eq!(f(run_block(BlockKind::Gain { gain: -2.0 }, &[vec![4.0]])), vec![-8.0]);
    assert_eq!(f(run_block(BlockKind::Bias { bias: 10.0 }, &[vec![4.0]])), vec![14.0]);
    assert_eq!(f(run_block(BlockKind::Abs, &[vec![-4.0]])), vec![4.0]);
    assert_eq!(f(run_block(BlockKind::UnaryMinus, &[vec![4.0]])), vec![-4.0]);
    assert_eq!(
        f(run_block(BlockKind::Signum, &[vec![-3.0], vec![0.0], vec![9.0]])),
        vec![-1.0, 0.0, 1.0]
    );
}

#[test]
fn min_max() {
    let kind = BlockKind::MinMax { op: MinMaxOp::Min, inputs: 3 };
    assert_eq!(f(run_block(kind, &[vec![3.0, -1.0, 2.0]])), vec![-1.0]);
    let kind = BlockKind::MinMax { op: MinMaxOp::Max, inputs: 2 };
    assert_eq!(f(run_block(kind, &[vec![3.0, 7.0]])), vec![7.0]);
}

#[test]
fn math_functions() {
    assert_eq!(f(run_block(BlockKind::Math { func: MathFunc::Sqrt }, &[vec![9.0]])), vec![3.0]);
    assert_eq!(
        f(run_block(BlockKind::Math { func: MathFunc::Pow }, &[vec![2.0, 8.0]])),
        vec![256.0]
    );
    assert_eq!(
        f(run_block(BlockKind::Math { func: MathFunc::Mod }, &[vec![-7.0, 3.0]])),
        vec![2.0]
    );
    assert_eq!(
        f(run_block(BlockKind::Math { func: MathFunc::Rem }, &[vec![-7.0, 3.0]])),
        vec![-1.0]
    );
}

#[test]
fn saturation_three_regions() {
    let kind = BlockKind::Saturation { lower: -1.0, upper: 1.0 };
    assert_eq!(f(run_block(kind, &[vec![-5.0], vec![0.5], vec![5.0]])), vec![-1.0, 0.5, 1.0]);
}

#[test]
fn dead_zone_three_regions() {
    let kind = BlockKind::DeadZone { start: -1.0, end: 1.0 };
    assert_eq!(f(run_block(kind, &[vec![-3.0], vec![0.5], vec![3.0]])), vec![-2.0, 0.0, 2.0]);
}

#[test]
fn relay_hysteresis() {
    let kind = BlockKind::Relay {
        on_threshold: 2.0,
        off_threshold: -2.0,
        on_output: 10.0,
        off_output: 0.0,
    };
    // Starts off; stays off below on-threshold; latches on; holds on until
    // input drops to off-threshold.
    assert_eq!(
        f(run_block(kind, &[vec![1.0], vec![2.0], vec![0.0], vec![-2.0], vec![0.0]])),
        vec![0.0, 10.0, 10.0, 0.0, 0.0]
    );
}

#[test]
fn quantizer_rounds_to_interval() {
    let kind = BlockKind::Quantizer { interval: 0.5 };
    assert_eq!(f(run_block(kind, &[vec![1.2], vec![1.3]])), vec![1.0, 1.5]);
}

#[test]
fn rate_limiter_clamps_slew() {
    let kind = BlockKind::RateLimiter { rising: 1.0, falling: 2.0 };
    // prev starts at 0; +5 input limited to +1; falling limited to -2/step.
    assert_eq!(f(run_block(kind, &[vec![5.0], vec![5.0], vec![-5.0]])), vec![1.0, 2.0, 0.0]);
}

#[test]
fn backlash_dead_band() {
    let kind = BlockKind::Backlash { width: 2.0, initial: 0.0 };
    // Inside the band: output holds. Push past the band edge: follows.
    assert_eq!(
        f(run_block(kind, &[vec![0.5], vec![2.0], vec![1.5], vec![-2.0]])),
        vec![0.0, 1.0, 1.0, -1.0]
    );
}

#[test]
fn coulomb_friction_three_regions() {
    let kind = BlockKind::CoulombFriction { offset: 1.0, gain: 2.0 };
    assert_eq!(f(run_block(kind, &[vec![3.0], vec![0.0], vec![-3.0]])), vec![7.0, 0.0, -7.0]);
}

#[test]
fn logic_ops() {
    for (op, a, b, expected) in [
        (LogicOp::And, 1.0, 1.0, 1.0),
        (LogicOp::And, 1.0, 0.0, 0.0),
        (LogicOp::Or, 0.0, 1.0, 1.0),
        (LogicOp::Or, 0.0, 0.0, 0.0),
        (LogicOp::Nand, 1.0, 1.0, 0.0),
        (LogicOp::Nor, 0.0, 0.0, 1.0),
        (LogicOp::Xor, 1.0, 1.0, 0.0),
        (LogicOp::Xor, 1.0, 0.0, 1.0),
    ] {
        let kind = BlockKind::Logic { op, inputs: 2 };
        assert_eq!(f(run_block(kind, &[vec![a, b]])), vec![expected], "{op:?}({a},{b})");
    }
    let not = BlockKind::Logic { op: LogicOp::Not, inputs: 1 };
    assert_eq!(f(run_block(not, &[vec![0.0]])), vec![1.0]);
}

#[test]
fn relational_and_compare() {
    let kind = BlockKind::Relational { op: RelOp::Le };
    assert_eq!(f(run_block(kind, &[vec![2.0, 2.0], vec![3.0, 2.0]])), vec![1.0, 0.0]);
    let kind = BlockKind::Compare { op: RelOp::Gt, constant: 5.0 };
    assert_eq!(f(run_block(kind, &[vec![6.0], vec![5.0]])), vec![1.0, 0.0]);
}

#[test]
fn switch_criteria() {
    let kind = BlockKind::Switch { criterion: SwitchCriterion::GreaterEqual(1.0) };
    // ports: 0 = first data, 1 = control, 2 = second data
    assert_eq!(
        f(run_block(kind, &[vec![10.0, 1.0, 20.0], vec![10.0, 0.5, 20.0]])),
        vec![10.0, 20.0]
    );
}

#[test]
fn multiport_switch_clamps_selector() {
    let kind = BlockKind::MultiportSwitch { cases: 2 };
    // ports: 0 = selector (1-based), 1..=2 data
    assert_eq!(
        f(run_block(
            kind,
            &[
                vec![1.0, 10.0, 20.0],
                vec![2.0, 10.0, 20.0],
                vec![7.0, 10.0, 20.0],
                vec![-3.0, 10.0, 20.0],
            ]
        )),
        vec![10.0, 20.0, 20.0, 10.0]
    );
}

#[test]
fn data_type_conversion_saturates() {
    let kind = BlockKind::DataTypeConversion { to: DataType::I8 };
    let out = run_block(kind, &[vec![300.0], vec![-300.0], vec![7.4]]);
    assert_eq!(out, vec![Value::I8(127), Value::I8(-128), Value::I8(7)]);
}

#[test]
fn unit_delay_and_memory_shift_by_one() {
    for kind in [
        BlockKind::UnitDelay { initial: Value::F64(-1.0) },
        BlockKind::Memory { initial: Value::F64(-1.0) },
    ] {
        assert_eq!(f(run_block(kind, &[vec![1.0], vec![2.0], vec![3.0]])), vec![-1.0, 1.0, 2.0]);
    }
}

#[test]
fn delay_n_steps() {
    let kind = BlockKind::Delay { steps: 2, initial: Value::F64(0.0) };
    assert_eq!(
        f(run_block(kind, &[vec![1.0], vec![2.0], vec![3.0], vec![4.0]])),
        vec![0.0, 0.0, 1.0, 2.0]
    );
}

#[test]
fn discrete_integrator_accumulates_and_limits() {
    let kind = BlockKind::DiscreteIntegrator {
        gain: 1.0,
        initial: 0.0,
        lower: Some(0.0),
        upper: Some(2.5),
    };
    // Forward Euler: output is pre-update state; state clamps at 2.5.
    assert_eq!(
        f(run_block(kind, &[vec![1.0], vec![1.0], vec![1.0], vec![1.0], vec![-10.0]])),
        vec![0.0, 1.0, 2.0, 2.5, 2.5]
    );
}

#[test]
fn counters() {
    let limited = BlockKind::CounterLimited { limit: 2 };
    assert_eq!(
        f(run_block(limited, &[vec![], vec![], vec![], vec![], vec![]])),
        vec![0.0, 1.0, 2.0, 0.0, 1.0]
    );
    let free = BlockKind::CounterFreeRunning { bits: 2 };
    assert_eq!(
        f(run_block(free, &[vec![], vec![], vec![], vec![], vec![]])),
        vec![0.0, 1.0, 2.0, 3.0, 0.0]
    );
}

#[test]
fn edge_detect_polarity() {
    let kind = BlockKind::EdgeDetect { kind: EdgeKind::Rising };
    assert_eq!(
        f(run_block(kind, &[vec![0.0], vec![1.0], vec![1.0], vec![0.0], vec![1.0]])),
        vec![0.0, 1.0, 0.0, 0.0, 1.0]
    );
    let kind = BlockKind::EdgeDetect { kind: EdgeKind::Either };
    assert_eq!(f(run_block(kind, &[vec![1.0], vec![1.0], vec![0.0]])), vec![1.0, 0.0, 1.0]);
}

#[test]
fn lookup_1d_and_2d() {
    let kind = BlockKind::Lookup1D { breakpoints: vec![0.0, 10.0], values: vec![0.0, 100.0] };
    assert_eq!(f(run_block(kind, &[vec![2.5], vec![-1.0], vec![99.0]])), vec![25.0, 0.0, 100.0]);
    let kind = BlockKind::Lookup2D {
        row_breaks: vec![0.0, 1.0],
        col_breaks: vec![0.0, 1.0],
        values: vec![vec![0.0, 1.0], vec![2.0, 3.0]],
    };
    assert_eq!(f(run_block(kind, &[vec![0.5, 0.5]])), vec![1.5]);
}

#[test]
fn zero_order_hold_is_identity() {
    assert_eq!(f(run_block(BlockKind::ZeroOrderHold, &[vec![4.25]])), vec![4.25]);
}

#[test]
fn ground_and_constant() {
    let mut b = ModelBuilder::new("m");
    let c = b.constant("c", Value::I16(42));
    let g = b.add("gnd", BlockKind::Ground { dtype: DataType::U8 });
    let y0 = b.outport("y0");
    let y1 = b.outport("y1");
    b.wire(c, y0);
    b.wire(g, y1);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[]).unwrap(), vec![Value::I16(42), Value::U8(0)]);
}

#[test]
fn matlab_function_block() {
    let function = FunctionDef::parse(
        &[("u", DataType::F64), ("k", DataType::F64)],
        &[("y", DataType::F64), ("hit", DataType::Bool)],
        "hit = false; if (u * k > 10) { y = 10; hit = true; } else { y = u * k; }",
    )
    .unwrap();
    let kind = BlockKind::MatlabFunction { function };
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let k = b.inport("k", DataType::F64);
    let blk = b.add("f", kind);
    let y = b.outport("y");
    let hit = b.outport("hit");
    b.connect(u, 0, blk, 0);
    b.connect(k, 0, blk, 1);
    b.connect(blk, 0, y, 0);
    b.connect(blk, 1, hit, 0);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(
        sim.step(&[Value::F64(3.0), Value::F64(2.0)]).unwrap(),
        vec![Value::F64(6.0), Value::Bool(false)]
    );
    assert_eq!(
        sim.step(&[Value::F64(30.0), Value::F64(2.0)]).unwrap(),
        vec![Value::F64(10.0), Value::Bool(true)]
    );
}

#[test]
fn chart_transitions_and_actions() {
    let mut chart = Chart::new();
    chart.inputs.push(("go".into(), DataType::Bool));
    chart.outputs.push(("phase".into(), DataType::I32));
    chart.variables.push(("ticks".into(), DataType::I32, Value::I32(0)));
    let idle = chart.add_state(State::new("Idle").with_entry(parse_stmts("phase = 0;").unwrap()));
    let run = chart.add_state(
        State::new("Run")
            .with_entry(parse_stmts("phase = 1; ticks = 0;").unwrap())
            .with_during(parse_stmts("ticks = ticks + 1;").unwrap()),
    );
    chart.initial = idle;
    chart.add_transition(Transition::new(idle, run, parse_expr("go").unwrap()));
    chart.add_transition(Transition::new(run, idle, parse_expr("ticks >= 2").unwrap()));
    let mut b = ModelBuilder::new("m");
    let go = b.inport("go", DataType::Bool);
    let blk = b.add("chart", BlockKind::Chart { chart });
    let phase = b.outport("phase");
    b.wire(go, blk);
    b.wire(blk, phase);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    let t = Value::Bool(true);
    let n = Value::Bool(false);
    // Idle; go fires -> Run(entry phase=1); during ticks=1; during ticks=2;
    // guard ticks>=2 fires -> Idle (phase=0).
    assert_eq!(sim.step(&[n]).unwrap(), vec![Value::I32(0)]);
    assert_eq!(sim.step(&[t]).unwrap(), vec![Value::I32(1)]);
    assert_eq!(sim.step(&[n]).unwrap(), vec![Value::I32(1)]); // ticks=1
    assert_eq!(sim.step(&[n]).unwrap(), vec![Value::I32(1)]); // ticks=2
    assert_eq!(sim.step(&[n]).unwrap(), vec![Value::I32(0)]); // back to idle
}

#[test]
fn if_action_subsystems_with_merge() {
    // if (u1 > 0) y = u*2 else y = u*10, via action subsystems + merge.
    fn action_body(name: &str, gain: f64) -> BlockKind {
        let mut b = ModelBuilder::new(name);
        let u = b.inport("u", DataType::F64);
        let g = b.add("g", BlockKind::Gain { gain });
        let y = b.outport("y");
        b.wire(u, g);
        b.wire(g, y);
        BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
    }
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let iff = b.add(
        "if",
        BlockKind::If {
            num_inputs: 1,
            conditions: vec![parse_expr("u1 > 0").unwrap()],
            has_else: true,
        },
    );
    let then_sub = b.add("then", action_body("then_m", 2.0));
    let else_sub = b.add("else", action_body("else_m", 10.0));
    let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
    let y = b.outport("y");
    b.wire(u, iff);
    b.connect(iff, 0, then_sub, 0); // then action
    b.connect(iff, 1, else_sub, 0); // else action
    b.connect(u, 0, then_sub, 1);
    b.connect(u, 0, else_sub, 1);
    b.connect(then_sub, 0, merge, 0);
    b.connect(else_sub, 0, merge, 1);
    b.wire(merge, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::F64(3.0)]).unwrap(), vec![Value::F64(6.0)]);
    assert_eq!(sim.step(&[Value::F64(-3.0)]).unwrap(), vec![Value::F64(-30.0)]);
}

#[test]
fn enabled_subsystem_holds_outputs_and_freezes_state() {
    // Inner accumulator only advances while enabled.
    let mut inner = ModelBuilder::new("inner");
    let u = inner.inport("u", DataType::F64);
    let sum = inner.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
    let dly = inner.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
    let y = inner.outport("y");
    inner.connect(u, 0, sum, 0);
    inner.connect(dly, 0, sum, 1);
    inner.connect(sum, 0, dly, 0);
    inner.connect(sum, 0, y, 0);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("m");
    let en = b.inport("en", DataType::Bool);
    let u = b.inport("u", DataType::F64);
    let sub = b.add("sub", BlockKind::EnabledSubsystem { model: Box::new(inner) });
    let y = b.outport("y");
    b.connect(en, 0, sub, 0);
    b.connect(u, 0, sub, 1);
    b.wire(sub, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    let on = Value::Bool(true);
    let off = Value::Bool(false);
    assert_eq!(sim.step(&[on, Value::F64(1.0)]).unwrap(), vec![Value::F64(1.0)]);
    assert_eq!(sim.step(&[off, Value::F64(100.0)]).unwrap(), vec![Value::F64(1.0)]); // held
    assert_eq!(sim.step(&[on, Value::F64(1.0)]).unwrap(), vec![Value::F64(2.0)]);
    // resumed
}

#[test]
fn triggered_subsystem_fires_on_edges_only() {
    let mut inner = ModelBuilder::new("inner");
    let cnt = inner.add("cnt", BlockKind::CounterFreeRunning { bits: 8 });
    let y = inner.outport("y");
    inner.wire(cnt, y);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("m");
    let trig = b.inport("trig", DataType::Bool);
    let sub = b.add(
        "sub",
        BlockKind::TriggeredSubsystem { model: Box::new(inner), edge: EdgeKind::Rising },
    );
    let y = b.outport("y");
    b.wire(trig, sub);
    b.wire(sub, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    let hi = Value::Bool(true);
    let lo = Value::Bool(false);
    assert_eq!(sim.step(&[lo]).unwrap(), vec![Value::U8(0)]); // never fired: zero
    assert_eq!(sim.step(&[hi]).unwrap(), vec![Value::U8(0)]); // first fire: count 0
    assert_eq!(sim.step(&[hi]).unwrap(), vec![Value::U8(0)]); // no edge: held
    assert_eq!(sim.step(&[lo]).unwrap(), vec![Value::U8(0)]);
    assert_eq!(sim.step(&[hi]).unwrap(), vec![Value::U8(1)]); // second fire
}

#[test]
fn virtual_subsystem_is_transparent() {
    let mut inner = ModelBuilder::new("inner");
    let a = inner.inport("a", DataType::F64);
    let bb = inner.inport("b", DataType::F64);
    let sum = inner.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
    let y = inner.outport("y");
    inner.connect(a, 0, sum, 0);
    inner.connect(bb, 0, sum, 1);
    inner.connect(sum, 0, y, 0);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("m");
    let a = b.inport("a", DataType::F64);
    let c = b.inport("c", DataType::F64);
    let sub = b.add("sub", BlockKind::Subsystem { model: Box::new(inner) });
    let y = b.outport("y");
    b.connect(a, 0, sub, 0);
    b.connect(c, 0, sub, 1);
    b.wire(sub, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::F64(2.0), Value::F64(40.0)]).unwrap(), vec![Value::F64(42.0)]);
}

#[test]
fn switch_case_action_routing() {
    fn const_action(name: &str, value: f64) -> BlockKind {
        let mut b = ModelBuilder::new(name);
        let c = b.constant("c", value);
        let y = b.outport("y");
        b.wire(c, y);
        BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
    }
    let mut b = ModelBuilder::new("m");
    let mode = b.inport("mode", DataType::I32);
    let sc =
        b.add("sc", BlockKind::SwitchCase { cases: vec![vec![1], vec![2, 3]], has_default: true });
    let a1 = b.add("a1", const_action("m1", 10.0));
    let a2 = b.add("a2", const_action("m2", 20.0));
    let a3 = b.add("a3", const_action("m3", 99.0));
    let merge = b.add("merge", BlockKind::Merge { inputs: 3 });
    let y = b.outport("y");
    b.wire(mode, sc);
    b.connect(sc, 0, a1, 0);
    b.connect(sc, 1, a2, 0);
    b.connect(sc, 2, a3, 0);
    b.connect(a1, 0, merge, 0);
    b.connect(a2, 0, merge, 1);
    b.connect(a3, 0, merge, 2);
    b.wire(merge, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    for (sel, expected) in [(1, 10.0), (2, 20.0), (3, 20.0), (7, 99.0), (-1, 99.0)] {
        assert_eq!(
            sim.step(&[Value::I32(sel)]).unwrap(),
            vec![Value::F64(expected)],
            "selector {sel}"
        );
    }
}

#[test]
fn integer_signal_path_saturates_like_generated_code() {
    // int8 inport feeding a Gain of 100: 100 * 2 saturates to 127 in int8.
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::I8);
    let g = b.add("g", BlockKind::Gain { gain: 100.0 });
    let y = b.outport("y");
    b.wire(u, g);
    b.wire(g, y);
    let model = b.finish().unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::I8(2)]).unwrap(), vec![Value::I8(127)]);
    assert_eq!(sim.step(&[Value::I8(-2)]).unwrap(), vec![Value::I8(-128)]);
}
