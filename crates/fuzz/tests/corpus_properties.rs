//! Property tests for corpus energy arithmetic and seed selection.
//!
//! The energy lottery is saturating end to end, so entries with absurd
//! `metric`/`new_branches` values (a hostile or buggy harness) skew the
//! weights instead of overflowing the u64 ticket total — selection must
//! never panic and must stay deterministic per RNG seed.

use cftcg_fuzz::{Corpus, CorpusEntry};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Raw `(metric, new_branches, bytes)` triples mixing ordinary values with
/// the saturation-triggering extremes; ids are assigned positionally when
/// the corpus is built.
fn arb_corpus() -> impl Strategy<Value = Vec<(usize, usize, Vec<u8>)>> {
    let metric = prop_oneof![0usize..1000, Just(usize::MAX), Just(usize::MAX / 2)];
    let new_branches = prop_oneof![0usize..16, Just(usize::MAX), Just(usize::MAX / 8)];
    prop::collection::vec((metric, new_branches, prop::collection::vec(any::<u8>(), 1..16)), 1..24)
}

fn build(entries: &[(usize, usize, Vec<u8>)]) -> Corpus {
    let mut corpus = Corpus::new(entries.len());
    for (i, (metric, new_branches, bytes)) in entries.iter().enumerate() {
        corpus.insert(CorpusEntry {
            id: i as u64,
            bytes: bytes.clone(),
            metric: *metric,
            new_branches: *new_branches,
        });
    }
    corpus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Energy-weighted selection never panics — not even when every entry's
    /// energy and the ticket total saturate — and always yields an entry.
    #[test]
    fn weighted_pick_never_panics(entries in arb_corpus(), seed in any::<u64>()) {
        let mut corpus = build(&entries);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(corpus.pick(&mut rng).is_some());
        }
    }

    /// Selection is a pure function of the RNG seed: two corpora built from
    /// the same entries pick identical id sequences under the same seed.
    #[test]
    fn weighted_pick_is_deterministic_per_seed(entries in arb_corpus(), seed in any::<u64>()) {
        let mut a = build(&entries);
        let mut b = build(&entries);
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let mut rng_b = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let pick_a = a.pick(&mut rng_a).map(|e| e.id);
            let pick_b = b.pick(&mut rng_b).map(|e| e.id);
            prop_assert_eq!(pick_a, pick_b);
        }
    }

    /// Saturated energies are still ordered sanely: reports never panic and
    /// every energy is at least 1 (so no entry is unreachable).
    #[test]
    fn seed_report_energy_is_positive(entries in arb_corpus(), age in any::<u64>()) {
        let corpus = build(&entries);
        for report in corpus.seed_reports(age) {
            prop_assert!(report.energy >= 1);
        }
    }
}
