//! Integration tests of the sharded parallel engine: the `workers == 1`
//! determinism contract, per-worker-count reproducibility, and the
//! multi-worker coverage smoke test on a real benchmark model.

use std::sync::Arc;
use std::time::Duration;

use cftcg_codegen::compile;
use cftcg_coverage::{Goal, ProvenanceTracker};
use cftcg_fuzz::{FuzzConfig, FuzzOutcome, Fuzzer, ParallelFuzzConfig, ParallelFuzzer, TraceHook};
use cftcg_telemetry::{json::Json, SharedBuf, Telemetry};

fn config(seed: u64) -> FuzzConfig {
    FuzzConfig { seed, ..FuzzConfig::default() }
}

/// Provenance with wall-clock fields projected out: everything in a
/// [`FirstHit`](cftcg_coverage::FirstHit) except `elapsed`, which is the
/// one field that legitimately differs between a sequential run and its
/// `workers == 1` replay (discovery timestamps are wall-clock).
fn provenance_key(
    p: &ProvenanceTracker,
    map: &cftcg_coverage::InstrumentationMap,
) -> Vec<(Goal, u64, usize, u64, Vec<u8>)> {
    p.covered_goals(map)
        .into_iter()
        .map(|(goal, hit)| (goal, hit.executions, hit.shard, hit.case, hit.ops.clone()))
        .collect()
}

/// Asserts the forensic artifacts of a `workers == 1` run match the
/// sequential run's exactly (modulo wall-clock timestamps).
fn assert_forensics_match(
    merged: &FuzzOutcome,
    expected: &FuzzOutcome,
    map: &cftcg_coverage::InstrumentationMap,
) {
    assert_eq!(merged.suite_meta, expected.suite_meta, "suite metadata must be identical");
    assert_eq!(merged.lineage, expected.lineage, "lineage DAGs must be identical");
    assert_eq!(
        provenance_key(&merged.provenance, map),
        provenance_key(&expected.provenance, map),
        "per-goal provenance must be identical modulo elapsed"
    );
    assert_eq!(merged.provenance.tracker(), expected.provenance.tracker());
}

/// The determinism contract: one worker, same seed, execution budget ⇒ the
/// parallel engine is byte-identical to the sequential fuzzer. Nothing is
/// broadcast back to its own origin, so the single shard's trajectory is
/// exactly the sequential one, and the coordinator's re-execution merge
/// reconstructs the same suite, events, and counters.
#[test]
fn one_worker_matches_sequential_exactly() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let mut sequential = Fuzzer::new(&compiled, config(42));
    let expected = sequential.run_executions(4_000);

    let parallel = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512, // several sync rounds, not one big batch
            fuzz: config(42),
            ..ParallelFuzzConfig::default()
        },
    );
    let merged = parallel.run_executions(4_000);

    assert_eq!(merged.suite, expected.suite, "suites must be byte-identical");
    assert_eq!(merged.executions, expected.executions);
    assert_eq!(merged.iterations, expected.iterations);
    assert_eq!(merged.branch_count, expected.branch_count);
    assert_eq!(merged.covered_branches, expected.covered_branches);
    assert_eq!(merged.events.len(), expected.events.len());
    for (m, e) in merged.events.iter().zip(&expected.events) {
        assert_eq!(m.executions, e.executions);
        assert_eq!(m.covered_branches, e.covered_branches);
    }
    assert_eq!(
        merged.violations.iter().map(|(a, c)| (*a, &c.bytes)).collect::<Vec<_>>(),
        expected.violations.iter().map(|(a, c)| (*a, &c.bytes)).collect::<Vec<_>>(),
    );
    assert_forensics_match(&merged, &expected, compiled.map());
    // Provenance's embedded tracker is the union of the suite's
    // observations, so its goal counts agree with scoring the suite.
    let (d, c, m) = merged.provenance.covered_counts();
    assert!(d > 0, "a real campaign hits decision goals");
    assert!(c > 0 && m <= compiled.map().condition_count());
}

/// Telemetry is pure observation: attaching a registry with live sinks must
/// not perturb the fuzzing trajectory. A `workers == 1` run with JSONL and
/// status sinks attached stays byte-identical to the bare sequential
/// fuzzer, the registry's totals agree with the outcome's counters, and
/// every logged line is valid JSON.
#[test]
fn one_worker_with_telemetry_stays_byte_identical() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let mut sequential = Fuzzer::new(&compiled, config(42));
    let expected = sequential.run_executions(4_000);

    let jsonl = SharedBuf::new();
    let telemetry = Arc::new(
        Telemetry::new()
            .with_jsonl(jsonl.clone())
            .with_status_to(Duration::from_millis(0), SharedBuf::new()),
    );
    let parallel = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig { telemetry: Some(telemetry.clone()), ..config(42) },
            ..ParallelFuzzConfig::default()
        },
    );
    let merged = parallel.run_executions(4_000);

    assert_eq!(merged.suite, expected.suite, "telemetry must not perturb the run");
    assert_eq!(merged.executions, expected.executions);
    assert_eq!(merged.iterations, expected.iterations);
    assert_eq!(merged.covered_branches, expected.covered_branches);
    assert_forensics_match(&merged, &expected, compiled.map());

    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.totals.executions, expected.executions);
    assert_eq!(snapshot.totals.iterations, expected.iterations);
    assert_eq!(snapshot.covered, merged.covered_branches);
    assert!(!snapshot.totals.exec_latency_ns.is_empty(), "latency timing was on");

    let log = jsonl.contents();
    assert!(!log.is_empty(), "sync rounds and discoveries were logged");
    for line in log.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
    }

    // Attribution reached the outcome: every execution belongs to at least
    // one operator, and the per-operator totals are internally consistent.
    let attributed: u64 = merged.operators.iter().map(|op| op.executions).sum();
    assert!(attributed >= merged.executions, "every execution has ≥1 operator");
    for op in &merged.operators {
        assert!(op.coverage_earning <= op.executions, "{}", op.name);
    }
}

/// The tracing layer's byte-identity invariant: installing a trace hook —
/// or leaving tracing disabled — must not change anything the fuzzer
/// produces. The hook fires strictly after a case is booked and consumes
/// no fuzzer RNG, so a hooked run (sequential or `workers == 1`) is
/// byte-identical to the bare run, while the hook still observes every
/// emitted case with its stable id.
#[test]
fn trace_hook_does_not_perturb_fuzzing_outcomes() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let mut bare = Fuzzer::new(&compiled, config(42));
    let expected = bare.run_executions(4_000);

    type SeenCases = std::sync::Mutex<Vec<(u64, Vec<u8>)>>;
    let seen: Arc<SeenCases> = Arc::default();
    let sink = seen.clone();
    let hook = TraceHook::new(move |bytes, case| {
        sink.lock().unwrap().push((case, bytes.to_vec()));
    });
    let mut hooked =
        Fuzzer::new(&compiled, FuzzConfig { trace_hook: Some(hook.clone()), ..config(42) });
    let observed = hooked.run_executions(4_000);

    assert_eq!(observed.suite, expected.suite, "suites must be byte-identical");
    assert_eq!(observed.executions, expected.executions);
    assert_eq!(observed.iterations, expected.iterations);
    assert_eq!(observed.covered_branches, expected.covered_branches);
    assert_eq!(observed.events.len(), expected.events.len());
    for (o, e) in observed.events.iter().zip(&expected.events) {
        assert_eq!(o.executions, e.executions);
        assert_eq!(o.covered_branches, e.covered_branches);
    }
    assert_eq!(
        observed.violations.iter().map(|(a, c)| (*a, &c.bytes)).collect::<Vec<_>>(),
        expected.violations.iter().map(|(a, c)| (*a, &c.bytes)).collect::<Vec<_>>(),
    );
    assert_forensics_match(&observed, &expected, compiled.map());

    // The hook saw exactly the emitted suite, in order, with stable ids.
    {
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), expected.suite.len(), "hook fires once per emitted case");
        for ((case_id, bytes), (meta, case)) in
            seen.iter().zip(expected.suite_meta.iter().zip(&expected.suite))
        {
            assert_eq!(*case_id, meta.case);
            assert_eq!(bytes, &case.bytes);
        }
    }

    // Same contract through the parallel engine: a hooked `workers == 1`
    // run still reconstructs the sequential trajectory exactly.
    seen.lock().unwrap().clear();
    let parallel = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig { trace_hook: Some(hook), ..config(42) },
            ..ParallelFuzzConfig::default()
        },
    );
    let merged = parallel.run_executions(4_000);
    assert_eq!(merged.suite, expected.suite, "hooked parallel run must match");
    assert_forensics_match(&merged, &expected, compiled.map());
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), expected.suite.len(), "hook fires on the coordinator merge");
}

/// Execution-budget runs are deterministic for a fixed worker count: worker
/// RNGs are seed-derived (`seed ^ worker_id`), rounds are lockstep, and the
/// coordinator merges in a deterministic order.
#[test]
fn multi_worker_runs_are_deterministic_per_worker_count() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let run = || {
        ParallelFuzzer::new(
            &compiled,
            ParallelFuzzConfig {
                workers: 3,
                sync_interval: 256,
                fuzz: config(7),
                ..ParallelFuzzConfig::default()
            },
        )
        .run_executions(3_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.suite, b.suite);
    assert_eq!(a.covered_branches, b.covered_branches);
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(a.suite_meta, b.suite_meta);
    assert_eq!(a.lineage, b.lineage);
    assert_eq!(
        provenance_key(&a.provenance, compiled.map()),
        provenance_key(&b.provenance, compiled.map())
    );
}

/// Multi-worker smoke test: at an equal execution budget, four synced
/// shards must cover at least as much as one sequential fuzzer (cross-shard
/// corpus broadcast means shards build on each other's discoveries).
#[test]
fn four_workers_cover_at_least_sequential_at_equal_budget() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");
    const BUDGET: u64 = 8_000;

    let mut sequential = Fuzzer::new(&compiled, config(5));
    let seq = sequential.run_executions(BUDGET);

    let par = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 4,
            sync_interval: 250,
            fuzz: config(5),
            ..ParallelFuzzConfig::default()
        },
    )
    .run_executions(BUDGET);

    assert_eq!(par.executions, BUDGET, "budget is split exactly");
    assert!(
        par.covered_branches >= seq.covered_branches,
        "4 workers covered {} < sequential {}",
        par.covered_branches,
        seq.covered_branches
    );
    // The merged suite replays to the merged coverage claim.
    let replayed = cftcg_codegen::replay_suite(&compiled, &par.suite);
    assert_eq!(replayed.decision.covered, par.covered_branches);
    // Events carry a monotone global coverage total.
    for pair in par.events.windows(2) {
        assert!(pair[0].covered_branches < pair[1].covered_branches);
    }
    assert_eq!(par.events.last().map(|e| e.covered_branches), Some(par.covered_branches));
    // Every merged suite entry's lineage resolves across shard boundaries:
    // the chain walks to a generation-phase root, never a dangling parent.
    assert_eq!(par.suite_meta.len(), par.suite.len());
    let lineage = cftcg_fuzz::Lineage::from_records(par.lineage.clone());
    for meta in &par.suite_meta {
        let chain = lineage.chain(meta.case);
        assert!(!chain.is_empty(), "case {} missing from lineage", meta.case);
        let root = chain.last().unwrap();
        assert!(root.parent.is_none(), "case {} ancestry truncated", meta.case);
    }
    // Per-goal provenance attributes every hit to a real shard and case.
    for (_, hit) in par.provenance.covered_goals(compiled.map()) {
        assert!(hit.shard < 4);
        assert!(lineage.get(hit.case).is_some(), "provenance case {} unknown", hit.case);
    }
}

/// Wall-clock mode: runs finish, produce work from every shard, and stay
/// within a sane envelope of the deadline.
#[test]
fn wall_clock_mode_terminates_and_merges() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let outcome = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 2,
            sync_period: Duration::from_millis(25),
            fuzz: config(9),
            ..ParallelFuzzConfig::default()
        },
    )
    .run_for(Duration::from_millis(120));

    assert!(outcome.executions > 0);
    assert!(outcome.covered_branches > 0);
    assert!(outcome.elapsed >= Duration::from_millis(120));
    for pair in outcome.events.windows(2) {
        assert!(pair[0].covered_branches < pair[1].covered_branches);
    }
}
