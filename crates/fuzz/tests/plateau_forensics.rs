//! Integration tests of the plateau detector wired into real campaigns:
//! event cadence on a synthetically stalled run, frontier-diff consistency
//! with `cftcg_coverage::frontier`, and trajectory neutrality.

use std::sync::Arc;

use cftcg_codegen::compile;
use cftcg_fuzz::{FuzzConfig, Fuzzer, ParallelFuzzConfig, ParallelFuzzer};
use cftcg_model::{BlockKind, DataType, ModelBuilder};
use cftcg_telemetry::{json::Json, SharedBuf, Telemetry};

/// A model whose lone saturation decision is covered within a handful of
/// random inputs — after that the campaign is permanently stalled, which is
/// exactly the synthetic plateau we want to watch.
fn trivial_model() -> cftcg_codegen::CompiledModel {
    let mut b = ModelBuilder::new("trivial");
    let u = b.inport("u", DataType::I16);
    let sat = b.add("sat", BlockKind::Saturation { lower: -100.0, upper: 100.0 });
    let y = b.outport("y");
    b.wire(u, sat);
    b.wire(sat, y);
    compile(&b.finish().expect("model builds")).expect("model compiles")
}

/// Parses the JSONL log and returns the `plateau` events.
fn plateau_events(log: &str) -> Vec<Json> {
    log.lines()
        .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e}")))
        .filter(|j| j.get("type").and_then(Json::as_str) == Some("plateau"))
        .collect()
}

/// A stalled campaign fires exactly one `plateau` event per quiet window:
/// the event count equals the stalled executions divided by the window, and
/// each event's execution stamp advances.
#[test]
fn stalled_campaign_fires_one_event_per_quiet_window() {
    let compiled = trivial_model();
    let jsonl = SharedBuf::new();
    let telemetry = Arc::new(Telemetry::new().with_jsonl(jsonl.clone()));

    const WINDOW: u64 = 500;
    const EXECUTIONS: u64 = 3_000;
    let mut fuzzer = Fuzzer::new(
        &compiled,
        FuzzConfig {
            seed: 7,
            telemetry: Some(telemetry.clone()),
            plateau_window: Some(WINDOW),
            ..FuzzConfig::default()
        },
    );
    let outcome = fuzzer.run_executions(EXECUTIONS);
    assert_eq!(outcome.branch_coverage().percent(), 100.0, "trivial model saturates");

    // The detector re-anchors at the last coverage gain; after that the
    // run is one long stall, so the cadence is exact.
    let last_gain = outcome.events.last().expect("at least one discovery").executions;
    let expected = (EXECUTIONS - last_gain) / WINDOW;
    assert!(expected >= 2, "test needs a multi-window stall, got {expected}");

    let events = plateau_events(&jsonl.contents());
    assert_eq!(events.len() as u64, expected, "one event per quiet window");
    let mut previous = last_gain;
    for event in &events {
        let executions = event.get("executions").and_then(Json::as_f64).unwrap() as u64;
        assert_eq!(executions - previous, WINDOW, "windows tile the stall exactly");
        previous = executions;
        assert_eq!(event.get("window").and_then(Json::as_f64).unwrap() as u64, WINDOW);
        assert_eq!(event.get("open").and_then(Json::as_f64).unwrap(), 0.0, "fully covered");
        assert_eq!(event.get("frontier").and_then(Json::as_array).unwrap().len(), 0);
    }

    // The registry folded the same count.
    assert_eq!(telemetry.snapshot().plateaus, expected);
}

/// The frontier diff carried by a plateau event partitions cleanly against
/// `cftcg_coverage::frontier`: same open-goal count, and every diff row's
/// label and cause tag matches a frontier entry computed from the final
/// provenance.
#[test]
fn frontier_diff_partitions_against_coverage_frontier() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");
    let jsonl = SharedBuf::new();
    let telemetry = Arc::new(Telemetry::new().with_jsonl(jsonl.clone()));

    let mut fuzzer = Fuzzer::new(
        &compiled,
        FuzzConfig {
            seed: 42,
            telemetry: Some(telemetry.clone()),
            plateau_window: Some(400),
            ..FuzzConfig::default()
        },
    );
    let outcome = fuzzer.run_executions(4_000);

    let events = plateau_events(&jsonl.contents());
    assert!(!events.is_empty(), "SolarPV under a 400-exec window must plateau at least once");

    // The final event's frontier must agree with the frontier recomputed
    // from the outcome's provenance (the run ends stalled, so the last
    // event saw the final coverage state).
    let entries = cftcg_coverage::frontier(compiled.map(), outcome.provenance.tracker());
    let last = events.last().unwrap();
    assert_eq!(
        last.get("open").and_then(Json::as_f64).unwrap() as usize,
        entries.len(),
        "open-goal count matches the coverage frontier"
    );
    let diff = last.get("frontier").and_then(Json::as_array).unwrap();
    assert_eq!(diff.len(), entries.len().min(cftcg_telemetry::PLATEAU_FRONTIER_CAP));
    for (row, entry) in diff.iter().zip(&entries) {
        assert_eq!(row.get("label").and_then(Json::as_str).unwrap(), entry.label);
        assert_eq!(row.get("cause").and_then(Json::as_str).unwrap(), entry.cause.tag());
    }

    // Covered + open partitions the goal universe: each event's covered
    // count plus its open count equals the total goal count it reports is
    // impossible to assert directly (open spans all goal kinds), but the
    // branch view must be consistent: covered <= total and open >= total -
    // covered (open includes condition/MC-DC goals beyond branches).
    for event in &events {
        let covered = event.get("covered").and_then(Json::as_f64).unwrap() as usize;
        let total = event.get("total").and_then(Json::as_f64).unwrap() as usize;
        let open = event.get("open").and_then(Json::as_f64).unwrap() as usize;
        assert!(covered <= total);
        assert!(open >= total - covered, "every uncovered branch goal is open");
    }
}

/// Arming the plateau detector must not perturb the fuzzing trajectory:
/// byte-identical suite and counters with and without it, sequential and
/// workers=1.
#[test]
fn plateau_detector_does_not_perturb_the_run() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let mut bare = Fuzzer::new(&compiled, FuzzConfig { seed: 42, ..FuzzConfig::default() });
    let expected = bare.run_executions(3_000);

    let telemetry = Arc::new(Telemetry::new().with_jsonl(SharedBuf::new()));
    let mut watched = Fuzzer::new(
        &compiled,
        FuzzConfig {
            seed: 42,
            telemetry: Some(telemetry.clone()),
            plateau_window: Some(250),
            ..FuzzConfig::default()
        },
    );
    let observed = watched.run_executions(3_000);
    assert_eq!(observed.suite, expected.suite);
    assert_eq!(observed.lineage, expected.lineage);
    assert_eq!(observed.covered_branches, expected.covered_branches);

    let par_telemetry = Arc::new(Telemetry::new().with_jsonl(SharedBuf::new()));
    let parallel = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig {
                seed: 42,
                telemetry: Some(par_telemetry),
                plateau_window: Some(250),
                ..FuzzConfig::default()
            },
            ..ParallelFuzzConfig::default()
        },
    );
    let merged = parallel.run_executions(3_000);
    assert_eq!(merged.suite, expected.suite);
    assert_eq!(merged.lineage, expected.lineage);
    assert_eq!(merged.covered_branches, expected.covered_branches);
}
