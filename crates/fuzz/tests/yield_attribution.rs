//! The mutation-yield accounting contract on a real (SolarPV smoke)
//! campaign: the outcome's per-operator yield matrix, the telemetry
//! registry's merged totals, and the `campaign-end` JSONL rows must all
//! agree — they are three views of the same counters.

use std::sync::Arc;

use cftcg_codegen::compile;
use cftcg_fuzz::{FuzzConfig, Fuzzer, ParallelFuzzConfig, ParallelFuzzer};
use cftcg_telemetry::json::Json;
use cftcg_telemetry::{Event, SharedBuf, Telemetry, YieldReport};

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("field {key} in {j:?}"))
}

#[test]
fn outcome_registry_and_jsonl_yield_rows_agree() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");
    let jsonl = SharedBuf::new();
    let telemetry = Arc::new(Telemetry::new().with_jsonl(jsonl.clone()));

    let mut fuzzer = Fuzzer::new(
        &compiled,
        FuzzConfig { seed: 42, telemetry: Some(telemetry.clone()), ..FuzzConfig::default() },
    );
    let outcome = fuzzer.run_executions(4_000);
    let rows = outcome.yield_reports();
    assert!(rows.iter().any(|r| r.executed > 0), "the campaign executed mutated inputs");

    // View 2: the registry's merged shard totals.
    let registry_rows = telemetry.snapshot().yield_reports();
    assert_eq!(rows, registry_rows, "outcome and registry yield matrices agree");

    // Emit the campaign-end event the CLI would and read view 3 back from
    // the JSONL stream.
    telemetry.emit(&Event::CampaignEnd {
        executions: outcome.executions,
        iterations: outcome.iterations,
        covered: outcome.covered_branches,
        total: compiled.map().branch_count(),
        violations: outcome.violations.len(),
        elapsed_s: outcome.elapsed.as_secs_f64(),
        iterations_per_second: outcome.iterations_per_second(),
        operators: Vec::new(),
        yields: rows.clone(),
    });
    telemetry.flush();
    let log = jsonl.contents();
    let end = log
        .lines()
        .map(|l| Json::parse(l).expect("valid JSONL"))
        .find(|j| j.get("type").and_then(Json::as_str) == Some("campaign-end"))
        .expect("campaign-end event present");
    let event_rows: Vec<YieldReport> = end
        .get("yields")
        .and_then(Json::as_array)
        .expect("yields array on campaign-end")
        .iter()
        .map(|y| YieldReport {
            name: y.get("name").and_then(Json::as_str).unwrap().to_string(),
            executed: u(y, "executed"),
            new_coverage: u(y, "new_coverage"),
            corpus_insert: u(y, "corpus_insert"),
            violation: u(y, "violation"),
        })
        .collect();
    assert_eq!(rows, event_rows, "JSONL campaign-end rows round-trip the matrix");

    // Internal consistency of each row: outcomes are subsets of executed.
    for row in &rows {
        assert!(row.new_coverage <= row.executed, "{row:?}");
        assert!(row.corpus_insert <= row.executed, "{row:?}");
        assert!(row.violation <= row.executed, "{row:?}");
    }

    // And the operator-attribution counters (PR 4) stay consistent with
    // the matrix's executed/new-coverage columns: same attribution rule.
    for (op, row) in outcome.operators.iter().zip(&rows) {
        assert_eq!(op.name, row.name);
        assert_eq!(op.executions, row.executed, "{}", op.name);
        assert_eq!(op.coverage_earning, row.new_coverage, "{}", op.name);
    }
}

#[test]
fn workers1_parallel_yield_matrix_matches_sequential() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("benchmark compiles");

    let mut sequential = Fuzzer::new(&compiled, FuzzConfig { seed: 42, ..FuzzConfig::default() });
    let expected = sequential.run_executions(3_000);

    let parallel = ParallelFuzzer::new(
        &compiled,
        ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig { seed: 42, ..FuzzConfig::default() },
            ..ParallelFuzzConfig::default()
        },
    );
    let merged = parallel.run_executions(3_000);
    assert_eq!(
        expected.yield_reports(),
        merged.yield_reports(),
        "the merged workers=1 yield matrix is byte-identical to sequential"
    );
}
