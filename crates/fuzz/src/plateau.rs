//! Windowed plateau detection for a fuzzing campaign.
//!
//! A campaign *plateaus* when a full execution window passes without the
//! covered-goal count moving. The detector is pure integer bookkeeping over
//! `(executions, covered)` observations — no clock, no RNG — so the same
//! campaign always fires the same plateau events regardless of wall-clock
//! speed, and the watcher can run attached to a byte-identity-checked
//! campaign without perturbing it.
//!
//! The windowing contract is "exactly one event per quiet window": a stall
//! of `3 × window` executions fires three times, at the first observation
//! on or past each window boundary. Any coverage gain re-anchors the window
//! at the observation that gained.

/// Watches `(executions, covered)` pairs and reports when a full execution
/// window elapses with no coverage gain.
#[derive(Debug, Clone)]
pub struct PlateauDetector {
    window: u64,
    window_start: u64,
    last_covered: usize,
    fired: u64,
}

impl PlateauDetector {
    /// Creates a detector firing after every `window` executions without a
    /// coverage gain. A zero window is clamped to 1.
    pub fn new(window: u64) -> Self {
        PlateauDetector { window: window.max(1), window_start: 0, last_covered: 0, fired: 0 }
    }

    /// The configured window, in executions.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// How many plateau events have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Feeds one observation. Returns `true` when a quiet window just
    /// completed — the caller should emit a `plateau` event. Call in a loop
    /// when observations are sparse: each `true` consumes one window, so a
    /// long stall reported in a single observation fires once per elapsed
    /// window across successive calls.
    pub fn observe(&mut self, executions: u64, covered: usize) -> bool {
        let gained = covered > self.last_covered;
        if gained {
            self.last_covered = covered;
        }
        self.tick(executions, gained)
    }

    /// Like [`observe`](Self::observe), but the caller reports the gain
    /// directly instead of a covered count — the per-execution fast path
    /// for a loop that already knows whether this input earned coverage
    /// (no bitmap popcount needed).
    pub fn tick(&mut self, executions: u64, gained: bool) -> bool {
        if gained {
            self.window_start = executions;
            return false;
        }
        if executions.saturating_sub(self.window_start) >= self.window {
            self.window_start += self.window;
            self.fired += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_window_fires_exactly_once() {
        let mut d = PlateauDetector::new(100);
        for n in 1..100 {
            assert!(!d.observe(n, 0), "fired early at {n}");
        }
        assert!(d.observe(100, 0));
        assert!(!d.observe(101, 0), "double-fired within the same window");
        assert_eq!(d.fired(), 1);
    }

    #[test]
    fn gain_resets_the_window() {
        let mut d = PlateauDetector::new(100);
        assert!(!d.observe(90, 0));
        assert!(!d.observe(95, 3)); // gain at 95 re-anchors
        assert!(!d.observe(194, 3));
        assert!(d.observe(195, 3));
        assert_eq!(d.fired(), 1);
    }

    #[test]
    fn sparse_observations_fire_once_per_elapsed_window() {
        // One observation after a 350-exec stall: looping until false must
        // fire exactly 3 times (three full quiet windows of 100).
        let mut d = PlateauDetector::new(100);
        let mut fires = 0;
        while d.observe(350, 0) {
            fires += 1;
        }
        assert_eq!(fires, 3);
        // The partial fourth window completes at 400.
        assert!(!d.observe(399, 0));
        assert!(d.observe(400, 0));
    }

    #[test]
    fn zero_window_is_clamped() {
        let mut d = PlateauDetector::new(0);
        assert_eq!(d.window(), 1);
        assert!(d.observe(1, 0));
    }
}
