//! The fuzzing loop: compile once, then mutate → execute → collect coverage
//! (Algorithm 1) → save test cases and interesting inputs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cftcg_codegen::{BatchExecutor, CompiledModel, Engine, Executor, TestCase};
use cftcg_coverage::{
    BranchBitmap, FirstHit, FullTracker, LaneBitmap, LaneRecorder, ProvenanceTracker,
};
use cftcg_telemetry::{
    Event, PlateauGoal, ShardStats, SpanKind, SpanSampler, SpanTrace, Telemetry, YieldOutcome,
    PLATEAU_FRONTIER_CAP,
};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::corpus::{Corpus, CorpusEntry, CorpusInsertion};
use crate::lineage::{Lineage, LineageOrigin, LineageRecord, SHARD_ID_STRIDE};
use crate::mutate::{MutationKind, Mutator};
use crate::plateau::PlateauDetector;

/// LibFuzzer's table of recent compares, adapted to model fuzzing: a
/// bounded *deduplicated* dictionary of comparison operand values mined
/// from execution. Deduplication matters here — a model executes hundreds
/// of comparisons per iteration, and the rare run-time-computed operand
/// (a sequence number, a timer threshold) must survive the flood once
/// observed.
///
/// The table is a ring: once full, admitting a new pair evicts the oldest
/// one (round-robin), so the dictionary keeps tracking the operands of the
/// *current* frontier instead of freezing on whatever the first 512 were.
#[derive(Debug, Clone)]
pub(crate) struct Torc {
    pub(crate) pairs: Vec<(f64, f64)>,
    seen: std::collections::HashSet<(u64, u64)>,
    /// Ring cursor: the slot the next eviction replaces (oldest entry).
    next_evict: usize,
    /// When set, newly admitted pairs are also copied to `fresh` for the
    /// parallel coordinator to merge (drained by [`Torc::take_fresh`]).
    track_fresh: bool,
    fresh: Vec<(f64, f64)>,
    /// Bumped every time a pair is actually admitted. The batched fuzz
    /// loop pre-mutates a batch of children against the current dictionary
    /// and must abandon the tail of the batch the moment a committed
    /// lane's compares change it (see [`Fuzzer::fuzz_batch_step`]).
    pub(crate) generation: u64,
}

impl Torc {
    pub(crate) const CAPACITY: usize = 512;

    pub(crate) fn new() -> Self {
        Torc {
            pairs: Vec::new(),
            seen: std::collections::HashSet::new(),
            next_evict: 0,
            track_fresh: false,
            fresh: Vec::new(),
            generation: 0,
        }
    }

    pub(crate) fn push(&mut self, lhs: f64, rhs: f64) {
        // Equal operands carry no information; non-finite values cannot be
        // injected meaningfully; trivial pairs (both tiny) are already in
        // the interesting-constant table.
        if !lhs.is_finite()
            || !rhs.is_finite()
            || lhs == rhs
            || (lhs.abs() <= 1.0 && rhs.abs() <= 1.0)
        {
            return;
        }
        if !self.seen.insert((lhs.to_bits(), rhs.to_bits())) {
            return;
        }
        if self.pairs.len() >= Self::CAPACITY {
            let (old_l, old_r) = self.pairs[self.next_evict];
            self.seen.remove(&(old_l.to_bits(), old_r.to_bits()));
            self.pairs[self.next_evict] = (lhs, rhs);
            self.next_evict = (self.next_evict + 1) % Self::CAPACITY;
        } else {
            self.pairs.push((lhs, rhs));
        }
        if self.track_fresh {
            self.fresh.push((lhs, rhs));
        }
        self.generation += 1;
    }

    /// Turns on fresh-pair tracking (parallel workers only; sequential use
    /// would buffer pairs nobody drains).
    pub(crate) fn enable_tracking(&mut self) {
        self.track_fresh = true;
    }

    /// Drains the pairs admitted since the previous call.
    pub(crate) fn take_fresh(&mut self) -> Vec<(f64, f64)> {
        std::mem::take(&mut self.fresh)
    }

    /// Merges pairs discovered elsewhere (another worker's shard) without
    /// echoing them back out through `fresh`.
    pub(crate) fn absorb(&mut self, pairs: &[(f64, f64)]) {
        let tracking = self.track_fresh;
        self.track_fresh = false;
        for &(lhs, rhs) in pairs {
            self.push(lhs, rhs);
        }
        self.track_fresh = tracking;
    }
}

/// The fuzz loop's in-execution recorder: Algorithm 1's branch bitmap plus
/// the TORC ring and assertion-violation flags.
struct LoopRecorder<'a> {
    bitmap: &'a mut BranchBitmap,
    torc: &'a mut Torc,
    failed_assertions: &'a mut Vec<bool>,
}

impl cftcg_coverage::Recorder for LoopRecorder<'_> {
    /// The loop never retains condition or decision-vector events.
    const OBSERVES_CONDITIONS: bool = false;
    const OBSERVES_DECISIONS: bool = false;

    #[inline]
    fn branch(&mut self, id: cftcg_coverage::BranchId) {
        self.bitmap.branch(id);
    }

    #[inline]
    fn branch_flags(&mut self) -> Option<&mut [bool]> {
        self.bitmap.branch_flags()
    }

    #[inline]
    fn compare(&mut self, lhs: f64, rhs: f64) {
        self.torc.push(lhs, rhs);
    }

    #[inline]
    fn assertion(&mut self, id: cftcg_coverage::AssertionId, passed: bool) {
        if !passed {
            self.failed_assertions[id.index()] = true;
        }
    }
}

/// A callback fired for every coverage-earning test case the fuzzer emits,
/// carrying the case's input bytes and stable case id.
///
/// This is the seam the `trace` layer uses to capture sampled waveforms of
/// interesting inputs *without* perturbing the run: the hook fires after
/// the case is already booked (suite, coverage event, metadata), consumes
/// no fuzzer RNG, and on parallel runs fires only on the coordinator — so
/// fuzzing outcomes are byte-identical with or without a hook installed
/// (enforced by test).
#[derive(Clone)]
pub struct TraceHook(TraceHookFn);

type TraceHookFn = Arc<dyn Fn(&[u8], u64) + Send + Sync>;

impl TraceHook {
    /// Wraps a callback `f(case_bytes, case_id)`.
    pub fn new(f: impl Fn(&[u8], u64) + Send + Sync + 'static) -> Self {
        TraceHook(Arc::new(f))
    }

    pub(crate) fn call(&self, data: &[u8], case_id: u64) {
        (self.0)(data, case_id);
    }
}

impl std::fmt::Debug for TraceHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceHook(..)")
    }
}

/// What the fuzzer treats as coverage feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeedbackMode {
    /// Model-level branch probes — CFTCG proper.
    #[default]
    ModelLevel,
    /// Only probes that survive as real jumps in optimized code — the
    /// "Fuzz Only" baseline's view (boolean/relational ops are invisible).
    CodeLevelOnly,
}

/// Fuzzing-loop configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// RNG seed (runs are deterministic given a seed and a budget type).
    pub seed: u64,
    /// Maximum stream length in tuples after structural mutations.
    pub max_tuples: usize,
    /// Maximum model iterations executed per input (defence against huge
    /// streams; the paper's driver runs whole streams, which its mutation
    /// caps implicitly).
    pub max_iterations_per_input: usize,
    /// Corpus capacity.
    pub corpus_capacity: usize,
    /// Field-aware, tuple-aligned mutation (ablation A2 turns this off).
    pub field_aware: bool,
    /// Metric-weighted corpus scheduling (ablation A1 turns this off).
    pub metric_weighted_corpus: bool,
    /// Coverage feedback granularity (Figure 8's "Fuzz Only" uses
    /// [`FeedbackMode::CodeLevelOnly`]).
    pub feedback: FeedbackMode,
    /// Optional per-inport value ranges (paper §5): mutated values are
    /// clamped into these, shrinking the random exploration space.
    pub input_ranges: Option<Vec<crate::FieldRange>>,
    /// Optional telemetry registry. Attaching one enables per-execution
    /// latency timing and event emission; it never influences the fuzzing
    /// trajectory, so runs stay byte-identical with or without it.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Optional observer of coverage-earning cases (sampled waveform
    /// capture). Never consulted on worker shards and never fed RNG, so it
    /// cannot change what the fuzzer produces.
    pub trace_hook: Option<TraceHook>,
    /// Optional shared span-event buffer for Chrome trace-event export
    /// (`--trace-events`). Attaching one enables span timing even without a
    /// telemetry registry; like telemetry it only observes, so runs stay
    /// byte-identical with or without it.
    pub span_trace: Option<SpanTrace>,
    /// Run cases on the reference tree-walking engine instead of the
    /// optimized flat VM ([`Executor::new_reference`]). Slower; exists so
    /// campaigns can be cross-checked byte-for-byte against the optimizer
    /// (`tests/optimizer_byte_identity.rs`) — both settings must produce
    /// identical outcomes and artifacts.
    pub reference_vm: bool,
    /// Explicit execution engine. `None` (the default) resolves to the
    /// fastest engine available on this build ([`Engine::best`]), or the
    /// reference tree walker when [`FuzzConfig::reference_vm`] is set.
    /// The `CFTCG_ENGINE` environment variable (`ref` | `flat` | `jit` |
    /// `batch` | `batch:N`) overrides both — see
    /// [`FuzzConfig::resolved_engine`].
    pub engine: Option<Engine>,
    /// Lane count for the batched execution tier (`--batch N` /
    /// [`Engine::Batch`]): how many mutated children one pass through the
    /// flat program executes. Only consulted when the resolved engine is
    /// `Engine::Batch`; an explicit `Engine::Batch { width: n > 0 }` (e.g.
    /// `CFTCG_ENGINE=batch:4`) takes precedence. Batching never changes
    /// campaign artifacts — outcomes stay byte-identical with the scalar
    /// engines for every width (enforced by test).
    pub batch_width: usize,
    /// Plateau-watch window, in executions. When set (and a telemetry
    /// registry is attached), a [`PlateauDetector`] watches the covered-goal
    /// count and emits a `plateau` JSONL event — with a frontier diff naming
    /// the still-open goals — every time a full window passes without a
    /// coverage gain. Pure integer bookkeeping on observation points the
    /// loop already visits; the fuzzing trajectory is untouched.
    pub plateau_window: Option<u64>,
}

impl FuzzConfig {
    /// The engine a campaign with this config actually runs on. Precedence:
    /// the `CFTCG_ENGINE` env var, then [`FuzzConfig::engine`], then
    /// `reference_vm` (reference walker) or the best available tier. A
    /// resolved `Jit` on a build without the JIT still falls back to the
    /// flat VM inside [`Executor::with_engine`]; campaign artifacts are
    /// byte-identical either way.
    pub fn resolved_engine(&self) -> Engine {
        cftcg_codegen::resolve_engine(
            self.engine,
            if self.reference_vm { Engine::Reference } else { Engine::best() },
        )
    }

    /// The lane count a batched campaign runs with: an explicit width on
    /// the resolved `Engine::Batch` wins, then [`FuzzConfig::batch_width`],
    /// clamped into the executor's supported range.
    pub fn resolved_batch_width(&self) -> usize {
        let width = match self.resolved_engine() {
            Engine::Batch { width } if width > 0 => width,
            _ => self.batch_width,
        };
        width.clamp(1, cftcg_codegen::MAX_BATCH_WIDTH)
    }
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            max_tuples: 96,
            max_iterations_per_input: 256,
            corpus_capacity: 256,
            field_aware: true,
            metric_weighted_corpus: true,
            feedback: FeedbackMode::ModelLevel,
            input_ranges: None,
            telemetry: None,
            trace_hook: None,
            span_trace: None,
            reference_vm: false,
            engine: None,
            batch_width: cftcg_codegen::DEFAULT_BATCH_WIDTH,
            plateau_window: None,
        }
    }
}

/// A coverage-growth event: total covered branches after `elapsed`, used to
/// draw the paper's Figure 7 coverage-vs-time curves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageEvent {
    /// Wall-clock time since the run started.
    pub elapsed: Duration,
    /// Executions (test inputs) completed when the event fired.
    pub executions: u64,
    /// Total branches covered after this event.
    pub covered_branches: usize,
}

/// Attribution totals for one mutation operator across a run: how many
/// candidate executions its strategy contributed to, and how many of those
/// earned new coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorAttribution {
    /// Operator name (Table 1 spelling).
    pub name: &'static str,
    /// Candidate executions whose mutation chain included this operator.
    pub executions: u64,
    /// Of those, executions that covered at least one new branch.
    pub coverage_earning: u64,
}

impl OperatorAttribution {
    /// Builds the per-operator attribution table from raw counters indexed
    /// by [`MutationKind::ALL`].
    pub(crate) fn from_counters(counters: &cftcg_telemetry::OperatorCounters) -> Vec<Self> {
        MutationKind::ALL
            .iter()
            .map(|k| OperatorAttribution {
                name: k.name(),
                executions: counters.executions.get(k.index()).copied().unwrap_or(0),
                coverage_earning: counters.coverage_earning.get(k.index()).copied().unwrap_or(0),
            })
            .collect()
    }
}

/// Forensic metadata of one emitted test case (parallel to
/// [`FuzzOutcome::suite`], same order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseMeta {
    /// Stable lineage id of the case (resolve via [`FuzzOutcome::lineage`]).
    pub case: u64,
    /// Shard that discovered it.
    pub shard: usize,
    /// Campaign executions completed when it was emitted.
    pub executions: u64,
    /// Total branches covered after it was emitted.
    pub covered_branches: usize,
}

/// The result of a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Emitted test cases (inputs that triggered new model coverage), in
    /// discovery order — the tool's actual output artifact.
    pub suite: Vec<TestCase>,
    /// Forensic metadata of each suite entry (same length and order).
    pub suite_meta: Vec<CaseMeta>,
    /// The lineage DAG: one record per committed input, in mint order (see
    /// [`Lineage`]); every suite entry's ancestry resolves here.
    pub lineage: Vec<LineageRecord>,
    /// Per-goal first-hit provenance of the emitted suite. Its embedded
    /// tracker is the union of the suite's observations, so scoring it
    /// reproduces the suite's replay coverage.
    pub provenance: ProvenanceTracker,
    /// First input found violating each assertion, as `(assertion index,
    /// input)` — look the label up via
    /// [`InstrumentationMap::assertions`](cftcg_coverage::InstrumentationMap::assertions).
    pub violations: Vec<(usize, TestCase)>,
    /// Timestamped coverage growth (one event per new-coverage input).
    pub events: Vec<CoverageEvent>,
    /// Inputs executed.
    pub executions: u64,
    /// Model iterations executed (inputs × tuples).
    pub iterations: u64,
    /// Total branch probes in the instrumentation map.
    pub branch_count: usize,
    /// Branches covered at the end of the run.
    pub covered_branches: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-mutation-operator attribution (Table 1 order): executions each
    /// operator contributed to and how many earned new coverage.
    pub operators: Vec<OperatorAttribution>,
    /// Per-operator × outcome yield matrix (Table 1 order × executed /
    /// new-coverage / corpus-insert / violation) — the search-forensics
    /// view of the same run.
    pub yields: cftcg_telemetry::YieldMatrix,
}

impl FuzzOutcome {
    /// Final branch (decision-outcome) coverage.
    pub fn branch_coverage(&self) -> cftcg_coverage::Ratio {
        cftcg_coverage::Ratio::new(self.covered_branches, self.branch_count)
    }

    /// Model iterations per second achieved by the loop. Zero when no time
    /// has elapsed (a zero-budget run did no measurable work; reporting
    /// infinity would poison downstream averages and JSON output).
    pub fn iterations_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iterations as f64 / secs
        }
    }

    /// The operator table as telemetry report rows (for the campaign-end
    /// event and CLI report).
    pub fn operator_reports(&self) -> Vec<cftcg_telemetry::OperatorReport> {
        self.operators
            .iter()
            .map(|op| cftcg_telemetry::OperatorReport {
                name: op.name.to_string(),
                executions: op.executions,
                coverage_earning: op.coverage_earning,
            })
            .collect()
    }

    /// The yield matrix as telemetry report rows (Table 1 order; for the
    /// campaign-end event and CLI report).
    pub fn yield_reports(&self) -> Vec<cftcg_telemetry::YieldReport> {
        MutationKind::ALL
            .iter()
            .map(|k| cftcg_telemetry::YieldReport {
                name: k.name().to_string(),
                executed: self.yields.get(k.index(), YieldOutcome::Executed),
                new_coverage: self.yields.get(k.index(), YieldOutcome::NewCoverage),
                corpus_insert: self.yields.get(k.index(), YieldOutcome::CorpusInsert),
                violation: self.yields.get(k.index(), YieldOutcome::Violation),
            })
            .collect()
    }
}

/// The model-oriented fuzzer.
pub struct Fuzzer<'c> {
    exec: Executor<'c>,
    /// The compiled model, kept for forensic replays (provenance absorbs
    /// re-execute coverage-earning inputs with a [`FullTracker`]).
    compiled: &'c CompiledModel,
    /// Cached copy of the compiled tuple layout (avoids cloning it on
    /// every execution just to iterate tuples).
    layout: cftcg_codegen::TupleLayout,
    mutator: Mutator,
    corpus: Corpus,
    rng: SmallRng,
    config: FuzzConfig,
    /// `g_TotalCov` of Algorithm 1.
    total: BranchBitmap,
    curr: BranchBitmap,
    last: BranchBitmap,
    /// Feedback visibility mask (all-true for model-level feedback).
    mask: Vec<bool>,
    /// Table of recent compares (LibFuzzer value-profile dictionary).
    torc: Torc,
    /// Per-assertion violation flags for the current execution.
    failed_assertions: Vec<bool>,
    /// Assertion labels from the instrumentation map (for violation events).
    assertion_labels: Vec<String>,
    /// Assertions already reported, with their witness inputs.
    violations: Vec<(usize, TestCase)>,
    suite: Vec<TestCase>,
    events: Vec<CoverageEvent>,
    /// Forensic metadata per suite entry (lockstep with `suite`).
    suite_meta: Vec<CaseMeta>,
    /// Shard id: 0 for sequential runs, the worker id on parallel shards.
    /// Lineage ids are minted as `shard * SHARD_ID_STRIDE + counter`.
    shard: usize,
    /// Shard-local counter of committed lineage records.
    next_case: u64,
    /// The lineage DAG of every committed input.
    lineage: Lineage,
    /// Per-goal first-hit provenance (sequential runs only; on worker
    /// shards the coordinator owns the global provenance).
    provenance: ProvenanceTracker,
    executions: u64,
    iterations: u64,
    started: Instant,
    elapsed: Duration,
    /// Locally owned telemetry counters (lock-free; cumulative).
    stats: ShardStats,
    /// Baseline of the last stats report, for delta computation.
    reported_stats: ShardStats,
    /// Telemetry registry, shared with the campaign owner.
    telemetry: Option<Arc<Telemetry>>,
    /// Per-execution latency timing (costs two clock reads per input), on
    /// only when a telemetry registry is attached.
    time_execs: bool,
    /// Span-phase timing (mutation/execution/coverage/corpus attribution),
    /// on when a telemetry registry or a span-trace buffer is attached —
    /// otherwise the hot loop never reads the clock for spans.
    time_spans: bool,
    /// Sampling front end for the shared trace-event buffer, when attached.
    span_sampler: Option<SpanSampler>,
    /// Plateau watcher (sequential runs with a telemetry registry and a
    /// configured window only; on parallel shards the coordinator owns it).
    plateau: Option<PlateauDetector>,
    /// Set on parallel worker shards: record local stats but never emit
    /// events or merge into the registry directly — the coordinator owns
    /// the global view and folds worker deltas at sync rounds.
    worker_mode: bool,
    /// The engine the config resolved to at construction (cached so the
    /// hot loop never re-reads the environment).
    engine: Engine,
    /// Lane-strided executor for the batched tier, created on the first
    /// batched round (scalar engines never pay for it).
    batch: Option<BatchExecutor<'c>>,
    /// Reused per-batch scratch (lane bitmaps, per-lane coverage state) so
    /// the batched hot loop allocates only on width changes.
    batch_scratch: Option<BatchScratch>,
    /// Batched-tier accounting: rounds executed, lanes committed, lanes
    /// abandoned to a mid-batch corpus/dictionary change.
    batch_rounds: u64,
    batch_commits: u64,
    batch_abandons: u64,
}

/// Reusable buffers for one batched fuzz round (see
/// [`Fuzzer::fuzz_batch_step`]).
struct BatchScratch {
    /// Per-(branch, lane) hits for the current tick, cleared per tick —
    /// the lane-strided `curr` of Algorithm 1 line 11.
    bits: LaneBitmap,
    /// One lane's extracted per-tick coverage (dense, scalar-shaped).
    curr: BranchBitmap,
    /// Per-lane union of per-tick coverage over the whole case.
    acc: Vec<BranchBitmap>,
    /// Per-lane previous-tick coverage (for the iteration-difference
    /// metric, Algorithm 1 lines 17–19).
    last: Vec<BranchBitmap>,
    /// Per-lane iteration-difference metric.
    metrics: Vec<usize>,
    /// Per-lane comparison-operand streams, in execution order (replayed
    /// into the TORC at commit).
    torc: Vec<Vec<(f64, f64)>>,
    /// Per-lane assertion-violation flags, lane-major.
    failed: Vec<bool>,
}

impl BatchScratch {
    fn new(branches: usize, width: usize, assertions: usize) -> Self {
        BatchScratch {
            bits: LaneBitmap::new(branches, width),
            curr: BranchBitmap::new(branches),
            acc: (0..width).map(|_| BranchBitmap::new(branches)).collect(),
            last: (0..width).map(|_| BranchBitmap::new(branches)).collect(),
            metrics: vec![0; width],
            torc: (0..width).map(|_| Vec::new()).collect(),
            failed: vec![false; width * assertions.max(1)],
        }
    }

    fn reset(&mut self) {
        self.bits.clear();
        for b in &mut self.acc {
            b.clear();
        }
        for b in &mut self.last {
            b.clear();
        }
        self.metrics.iter_mut().for_each(|m| *m = 0);
        self.torc.iter_mut().for_each(Vec::clear);
        self.failed.iter_mut().for_each(|f| *f = false);
    }
}

/// One pre-mutated batch lane: everything [`Fuzzer::fuzz_one`]'s front
/// half (seed selection + mutation) produces, plus the RNG checkpoint
/// taken *before* that front half ran — the rewind point if this lane has
/// to be abandoned because an earlier lane changed the corpus or TORC.
struct PreparedChild {
    rng_before: SmallRng,
    data: Vec<u8>,
    parent: Option<u64>,
    origin: LineageOrigin,
    other_id: Option<u64>,
    ops: Vec<MutationKind>,
    operator_mask: u8,
    rounds: u32,
}

/// The batched counterpart of `LoopRecorder`: the same three event
/// classes, lane-strided. Branch hits land in a [`LaneBitmap`] row-wise;
/// comparison operands are buffered per lane (applied to the TORC in lane
/// order at commit); assertion verdicts set lane-major violation flags.
struct BatchLoopRecorder<'a> {
    bits: &'a mut LaneBitmap,
    torc: &'a mut [Vec<(f64, f64)>],
    failed: &'a mut [bool],
    assertions: usize,
}

impl LaneRecorder for BatchLoopRecorder<'_> {
    fn branch(&mut self, lane: usize, id: cftcg_coverage::BranchId) {
        self.bits.branch(lane, id);
    }

    fn branch_row(&mut self, id: cftcg_coverage::BranchId, live: &[bool]) {
        self.bits.branch_row(id, live);
    }

    fn branch_select_row(
        &mut self,
        then_id: cftcg_coverage::BranchId,
        else_id: cftcg_coverage::BranchId,
        cond: &[f64],
        live: &[bool],
    ) {
        self.bits.branch_select_row(then_id, else_id, cond, live);
    }

    fn compare(&mut self, lane: usize, lhs: f64, rhs: f64) {
        // Pre-filter with `Torc::push`'s own rejection rules: pairs that
        // cannot change the dictionary need not be buffered or replayed.
        if !lhs.is_finite()
            || !rhs.is_finite()
            || lhs == rhs
            || (lhs.abs() <= 1.0 && rhs.abs() <= 1.0)
        {
            return;
        }
        self.torc[lane].push((lhs, rhs));
    }

    fn assertion(&mut self, lane: usize, id: cftcg_coverage::AssertionId, passed: bool) {
        if !passed {
            self.failed[lane * self.assertions + id.index()] = true;
        }
    }
}

impl<'c> Fuzzer<'c> {
    /// Creates a fuzzer over a compiled model.
    pub fn new(compiled: &'c CompiledModel, config: FuzzConfig) -> Self {
        let branch_count = compiled.map().branch_count();
        let mut mutator = Mutator::new(compiled.layout().clone(), config.max_tuples);
        mutator.field_aware = config.field_aware;
        if let Some(ranges) = &config.input_ranges {
            mutator.set_ranges(ranges.clone());
        }
        let mut corpus = Corpus::new(config.corpus_capacity);
        corpus.metric_weighted = config.metric_weighted_corpus;
        let mask = match config.feedback {
            FeedbackMode::ModelLevel => vec![true; branch_count],
            FeedbackMode::CodeLevelOnly => compiled.map().code_level_mask(),
        };
        let telemetry = config.telemetry.clone();
        if let Some(t) = &telemetry {
            let labels: Vec<&str> = MutationKind::ALL.iter().map(|k| k.name()).collect();
            t.set_operator_labels(&labels);
        }
        let time_execs = telemetry.is_some();
        let span_sampler = config.span_trace.clone().map(|trace| SpanSampler::new(trace, 0));
        let time_spans = time_execs || span_sampler.is_some();
        let plateau = match (&telemetry, config.plateau_window) {
            (Some(_), Some(window)) => Some(PlateauDetector::new(window)),
            _ => None,
        };
        let engine = config.resolved_engine();
        // The single-case executor doubles as the batch tier's replay
        // engine for coverage-earning winners (full MCDC observation runs
        // on the scalar engines only).
        let exec = Executor::with_engine(compiled, engine);
        Fuzzer {
            exec,
            compiled,
            layout: compiled.layout().clone(),
            mutator,
            corpus,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            total: BranchBitmap::new(branch_count),
            curr: BranchBitmap::new(branch_count),
            last: BranchBitmap::new(branch_count),
            mask,
            torc: Torc::new(),
            failed_assertions: vec![false; compiled.map().assertion_count()],
            assertion_labels: compiled.map().assertions().to_vec(),
            violations: Vec::new(),
            suite: Vec::new(),
            events: Vec::new(),
            suite_meta: Vec::new(),
            shard: 0,
            next_case: 0,
            lineage: Lineage::new(),
            provenance: ProvenanceTracker::new(compiled.map()),
            executions: 0,
            iterations: 0,
            started: Instant::now(),
            elapsed: Duration::ZERO,
            stats: ShardStats::new(MutationKind::ALL.len()),
            reported_stats: ShardStats::new(MutationKind::ALL.len()),
            telemetry,
            time_execs,
            time_spans,
            span_sampler,
            plateau,
            worker_mode: false,
            engine,
            batch: None,
            batch_scratch: None,
            batch_rounds: 0,
            batch_commits: 0,
            batch_abandons: 0,
        }
    }

    /// Records one completed span: always into the shard-local histogram
    /// stats, and (sampled) into the shared trace buffer when attached.
    /// Callers only construct the `start` timestamp when
    /// [`Fuzzer::time_spans`] is set, so uninstrumented runs skip the clock.
    #[inline]
    fn note_span(&mut self, kind: SpanKind, start: Instant) {
        let end = Instant::now();
        self.stats.spans.record(kind, end.saturating_duration_since(start).as_nanos() as u64);
        if let Some(sampler) = &mut self.span_sampler {
            sampler.record(kind, start, end);
        }
    }

    /// The emitted test suite so far.
    pub fn suite(&self) -> &[TestCase] {
        &self.suite
    }

    /// Adds an externally produced input (e.g. a constraint-solving
    /// witness) to the loop: it is executed immediately with full coverage
    /// accounting, emitted as a test case if it finds new coverage, and
    /// retained in the corpus for mutation — the hybrid bootstrap the
    /// paper's §5 proposes ("first apply constraint solving ... and then
    /// generate input data accordingly").
    pub fn add_seed(&mut self, bytes: Vec<u8>) {
        let (new_branches, metric) = self.execute(&bytes);
        self.executions += 1;
        self.stats.executions += 1;
        let case_id = self.shard as u64 * SHARD_ID_STRIDE + self.next_case;
        let emitted = new_branches > 0;
        if emitted {
            self.stats.discoveries += 1;
            self.emit_case(&bytes, case_id, &[], None, None);
        }
        let insertion =
            self.corpus.insert(CorpusEntry { id: case_id, bytes, metric, new_branches });
        self.record_insertion(insertion);
        if !matches!(insertion, CorpusInsertion::Rejected) {
            self.corpus.note_committed(case_id, None, self.executions);
        }
        if emitted || !matches!(insertion, CorpusInsertion::Rejected) {
            self.lineage.push(LineageRecord {
                id: case_id,
                parent: None,
                crossover: None,
                ops: Vec::new(),
                origin: LineageOrigin::External,
                shard: self.shard,
                executions: self.executions,
            });
            self.next_case += 1;
        }
        if !self.worker_mode {
            if let Some(t) = &self.telemetry {
                t.emit(&Event::SeedAdded {
                    shard: 0,
                    executions: self.executions,
                    t: t.elapsed_s(),
                });
            }
        }
    }

    /// Branches covered so far (under the configured feedback mask).
    pub fn covered_branches(&self) -> usize {
        self.total.count()
    }

    /// Runs until `budget` wall-clock time has elapsed (cumulative across
    /// calls). Returns the outcome snapshot.
    pub fn run_for(&mut self, budget: Duration) -> FuzzOutcome {
        let deadline = Instant::now() + budget;
        self.started = Instant::now() - self.elapsed;
        self.run_until(deadline);
        self.elapsed = self.started.elapsed();
        self.flush_telemetry();
        self.outcome()
    }

    /// Runs executions until `deadline`, checking the clock between
    /// *batches* rather than per input. The batch size adapts to the
    /// model's execution cost — doubling while a batch finishes quickly,
    /// halving when one overshoots — so the loop neither burns a clock
    /// read per 100ns execution on small models nor overruns the deadline
    /// by seconds on slow ones. Batching only affects when the clock is
    /// consulted; the input sequence is identical for any batch schedule.
    pub(crate) fn run_until(&mut self, deadline: Instant) {
        /// Below this per-batch cost the clock overhead is noise: grow.
        const GROW_BELOW: Duration = Duration::from_millis(2);
        /// Above this per-batch cost the deadline overshoot hurts: shrink.
        const SHRINK_ABOVE: Duration = Duration::from_millis(8);
        let mut batch: u64 = 16;
        let mut now = Instant::now();
        while now < deadline {
            self.fuzz_batch(batch);
            let after = Instant::now();
            let took = after - now;
            now = after;
            if took < GROW_BELOW {
                batch = (batch * 2).min(8192);
            } else if took > SHRINK_ABOVE {
                batch = (batch / 2).max(1);
            }
            self.flush_telemetry();
        }
    }

    /// Runs exactly `n` input executions (deterministic; used by tests and
    /// budget-matched experiments).
    pub fn run_executions(&mut self, n: u64) -> FuzzOutcome {
        self.started = Instant::now() - self.elapsed;
        self.fuzz_batch(n);
        self.elapsed = self.started.elapsed();
        self.flush_telemetry();
        self.outcome()
    }

    /// Reports the stats delta since the last flush into the attached
    /// registry and lets the status line tick. No-op on worker shards (the
    /// coordinator folds their deltas) and without a registry.
    fn flush_telemetry(&mut self) {
        if self.worker_mode {
            return;
        }
        if let Some(t) = self.telemetry.clone() {
            let delta = self.take_stats_delta();
            t.merge_shard(0, &delta, self.corpus.len());
            t.set_corpus_seeds(0, self.corpus.seed_reports(self.executions));
            if self.batch_rounds > 0 {
                let width = self.config.resolved_batch_width();
                let vm_stats = self.batch.as_ref().map(BatchExecutor::stats).unwrap_or_default();
                t.set_batch_stats(cftcg_telemetry::BatchTierStats {
                    width: width as u64,
                    rounds: self.batch_rounds,
                    commits: self.batch_commits,
                    abandons: self.batch_abandons,
                    scalar_lane_fraction: vm_stats.scalar_lane_fraction(width),
                });
            }
            t.status_tick(false);
        }
    }

    /// Feeds the plateau watcher one execution's outcome and emits a
    /// `plateau` event when a quiet window just completed, carrying a
    /// frontier diff of the still-open goals and their classifications.
    /// Costs one compare per execution when a watcher is armed (nothing
    /// otherwise); the frontier walk only runs on a fire.
    fn plateau_tick(&mut self, earned: bool) {
        let Some(detector) = &mut self.plateau else {
            return;
        };
        if !detector.tick(self.executions, earned) {
            return;
        }
        let window = detector.window();
        let Some(t) = &self.telemetry else {
            return;
        };
        let entries = cftcg_coverage::frontier(self.compiled.map(), self.provenance.tracker());
        let frontier: Vec<PlateauGoal> = entries
            .iter()
            .take(PLATEAU_FRONTIER_CAP)
            .map(|e| PlateauGoal { label: e.label.clone(), cause: e.cause.tag().to_string() })
            .collect();
        t.emit(&Event::Plateau {
            shard: self.shard,
            executions: self.executions,
            window,
            covered: self.total.count(),
            total: self.total.len(),
            open: entries.len() as u64,
            frontier,
            t: t.elapsed_s(),
        });
    }

    /// Assertion violations found so far: `(assertion index, first
    /// violating input)`.
    pub fn violations(&self) -> &[(usize, TestCase)] {
        &self.violations
    }

    /// Snapshot of the current results.
    pub fn outcome(&self) -> FuzzOutcome {
        FuzzOutcome {
            suite: self.suite.clone(),
            suite_meta: self.suite_meta.clone(),
            lineage: self.lineage.records().to_vec(),
            provenance: self.provenance.clone(),
            violations: self.violations.clone(),
            events: self.events.clone(),
            executions: self.executions,
            iterations: self.iterations,
            branch_count: self.total.len(),
            covered_branches: self.total.count(),
            elapsed: self.elapsed,
            operators: OperatorAttribution::from_counters(&self.stats.operators),
            yields: self.stats.yields.clone(),
        }
    }

    /// Generates one input (seed selection + mutation), executes it with
    /// Algorithm 1's coverage collection, and files the results.
    fn fuzz_one(&mut self) {
        let child = self.prepare_child();
        let (new_branches, metric) = self.execute(&child.data);
        self.commit_executed(child, new_branches, metric);
    }

    /// The generation half of [`Fuzzer::fuzz_one`]: seed selection plus the
    /// stacked-mutation chain. The RNG is checkpointed *before* the first
    /// draw so a batched round can rewind an abandoned lane to exactly the
    /// state a sequential run would have reached (see
    /// [`Fuzzer::fuzz_batch_step`]).
    fn prepare_child(&mut self) -> PreparedChild {
        let rng_before = self.rng.clone();
        let mutation_start = if self.time_spans { Some(Instant::now()) } else { None };
        let (mut data, parent, origin) = match self.corpus.pick(&mut self.rng) {
            Some(entry) => (entry.bytes.clone(), Some(entry.id), LineageOrigin::Mutant),
            None => {
                // Bootstrap: a single random tuple.
                (self.mutator.random_tuple(&mut self.rng), None, LineageOrigin::Bootstrap)
            }
        };
        let other = self.corpus.pick_other(&mut self.rng).map(|e| (e.id, e.bytes.clone()));
        // LibFuzzer stacks several mutations per generated input, with the
        // TORC comparison operands as a value dictionary. The operators
        // applied are remembered in application order, both for coverage
        // attribution (Table 1) and as the lineage edge of the new input.
        let rounds = 1 + (self.rng.next_u32() % 4);
        let mut operator_mask = 0u8;
        let mut ops = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            let dict = std::mem::take(&mut self.torc.pairs);
            let kind = self.mutator.mutate_with_dictionary(
                &mut self.rng,
                &mut data,
                other.as_ref().map(|(_, bytes)| bytes.as_slice()),
                &dict,
            );
            self.torc.pairs = dict;
            operator_mask |= 1 << kind.index();
            ops.push(kind);
        }
        if let Some(start) = mutation_start {
            self.note_span(SpanKind::Mutation, start);
        }
        PreparedChild {
            rng_before,
            data,
            parent,
            origin,
            other_id: other.map(|(id, _)| id),
            ops,
            operator_mask,
            rounds,
        }
    }

    /// The accounting half of [`Fuzzer::fuzz_one`], after `child` has been
    /// executed with `new_branches` / `metric` as its Algorithm 1 outcome
    /// and `self.failed_assertions` holding its assertion verdicts. Returns
    /// whether the child entered the corpus (the batched loop abandons the
    /// rest of its round on that — the seed-selection weights changed).
    fn commit_executed(
        &mut self,
        child: PreparedChild,
        new_branches: usize,
        metric: usize,
    ) -> bool {
        let PreparedChild { data, parent, origin, other_id, ops, operator_mask, rounds, .. } =
            child;
        self.stats.mutation_depth.record(u64::from(rounds));
        self.executions += 1;
        self.stats.executions += 1;
        let earned = new_branches > 0;
        if earned {
            self.stats.discoveries += 1;
        }
        for kind in MutationKind::ALL {
            if operator_mask & (1 << kind.index()) != 0 {
                self.stats.operators.record(kind.index(), earned);
            }
        }

        // Report first-time assertion violations with their witness input.
        let mut witnessed_violation = false;
        for i in 0..self.failed_assertions.len() {
            if self.failed_assertions[i] && !self.violations.iter().any(|&(a, _)| a == i) {
                self.violations.push((i, TestCase::new(data.clone())));
                self.stats.violations += 1;
                witnessed_violation = true;
                if !self.worker_mode {
                    if let Some(t) = &self.telemetry {
                        t.emit(&Event::Violation {
                            shard: 0,
                            assertion: i,
                            label: self.assertion_labels.get(i).cloned().unwrap_or_default(),
                            t: t.elapsed_s(),
                        });
                    }
                }
            }
        }
        let case_id = self.shard as u64 * SHARD_ID_STRIDE + self.next_case;
        // The crossover partner only enters the lineage when the operator
        // chain actually consulted it.
        let crossover = if ops.contains(&MutationKind::TuplesCrossOver) { other_id } else { None };
        if new_branches > 0 {
            // Algorithm 1 line 16: output the test case.
            let coverage_start = if self.time_spans { Some(Instant::now()) } else { None };
            self.emit_case(&data, case_id, &ops, parent, crossover);
            if let Some(start) = coverage_start {
                self.note_span(SpanKind::CoverageUpdate, start);
            }
        }
        let mut committed = new_branches > 0;
        let mut inserted = false;
        if new_branches > 0 || metric > 0 {
            let insert_start = if self.time_spans { Some(Instant::now()) } else { None };
            let insertion =
                self.corpus.insert(CorpusEntry { id: case_id, bytes: data, metric, new_branches });
            self.record_insertion(insertion);
            if let Some(start) = insert_start {
                self.note_span(SpanKind::CorpusInsert, start);
            }
            inserted = !matches!(insertion, CorpusInsertion::Rejected);
            if inserted {
                self.corpus.note_committed(case_id, parent, self.executions);
            }
            committed = committed || inserted;
        }
        // Seed-schedule forensics: the parent chain is credited with the
        // committed child and any newly covered goals (plain integer
        // bookkeeping — no RNG, no clock).
        if committed {
            self.corpus.credit_child(parent);
        }
        if earned {
            self.corpus.credit_goals(parent, new_branches as u64);
        }
        // Mutation-yield attribution: each operator in this input's chain is
        // charged with the execution and credited with whatever it earned.
        for kind in MutationKind::ALL {
            if operator_mask & (1 << kind.index()) != 0 {
                self.stats.yields.record(kind.index(), YieldOutcome::Executed);
                if earned {
                    self.stats.yields.record(kind.index(), YieldOutcome::NewCoverage);
                }
                if inserted {
                    self.stats.yields.record(kind.index(), YieldOutcome::CorpusInsert);
                }
                if witnessed_violation {
                    self.stats.yields.record(kind.index(), YieldOutcome::Violation);
                }
            }
        }
        // The id is only burned when the input survives somewhere (suite or
        // corpus); rejected mutants leave no lineage record, keeping the DAG
        // proportional to retained state rather than executions.
        if committed {
            self.lineage.push(LineageRecord {
                id: case_id,
                parent,
                crossover,
                ops,
                origin,
                shard: self.shard,
                executions: self.executions,
            });
            self.next_case += 1;
        }
        self.plateau_tick(earned);
        inserted
    }

    /// Emits `data` as a test case: suite entry, coverage event, forensic
    /// metadata, per-goal first-hit provenance, and (sequential runs) the
    /// `new-coverage` / `case-lineage` telemetry events. Worker shards only
    /// record the local artifacts — the coordinator owns global provenance.
    fn emit_case(
        &mut self,
        data: &[u8],
        case_id: u64,
        ops: &[MutationKind],
        parent: Option<u64>,
        crossover: Option<u64>,
    ) {
        let elapsed = self.started.elapsed();
        self.suite.push(TestCase::new(data.to_vec()));
        self.events.push(CoverageEvent {
            elapsed,
            executions: self.executions,
            covered_branches: self.total.count(),
        });
        self.suite_meta.push(CaseMeta {
            case: case_id,
            shard: self.shard,
            executions: self.executions,
            covered_branches: self.total.count(),
        });
        if self.worker_mode {
            return;
        }
        if let Some(hook) = &self.config.trace_hook {
            hook.call(data, case_id);
        }
        let case_tracker = self.case_tracker(data);
        let hit = FirstHit {
            executions: self.executions,
            elapsed,
            shard: self.shard,
            case: case_id,
            ops: ops.iter().map(|k| k.index() as u8).collect(),
        };
        self.provenance.absorb(self.compiled.map(), &case_tracker, &hit);
        if let Some(t) = &self.telemetry {
            t.emit(&Event::NewCoverage {
                shard: 0,
                executions: self.executions,
                covered: self.total.count(),
                total: self.total.len(),
                t: t.elapsed_s(),
            });
            t.emit(&Event::CaseLineage {
                shard: self.shard,
                case: case_id,
                parent,
                crossover,
                ops: ops.iter().map(|k| k.name().to_string()).collect(),
                executions: self.executions,
                t: t.elapsed_s(),
            });
        }
    }

    /// Replays `data` with a [`FullTracker`] to collect the condition and
    /// decision-evaluation observations provenance needs. Only
    /// coverage-earning inputs (rare) are replayed; the executor is reset on
    /// every use and the tracker's compare hook is a no-op, so the replay
    /// cannot perturb the fuzzing trajectory.
    fn case_tracker(&mut self, data: &[u8]) -> FullTracker {
        let mut tracker = FullTracker::new(self.compiled.map());
        self.exec.reset();
        for tuple in self.layout.split(data).take(self.config.max_iterations_per_input) {
            self.exec.step_tuple(tuple, &mut tracker);
        }
        tracker
    }

    /// Books a corpus-insertion outcome into the shard stats and, on the
    /// sequential fuzzer, emits the eviction event.
    fn record_insertion(&mut self, insertion: CorpusInsertion) {
        match insertion {
            CorpusInsertion::Appended => self.stats.corpus_inserts += 1,
            CorpusInsertion::Replaced => {
                self.stats.corpus_inserts += 1;
                self.stats.corpus_evictions += 1;
                if !self.worker_mode {
                    if let Some(t) = &self.telemetry {
                        t.emit(&Event::CorpusEvict {
                            shard: 0,
                            corpus_len: self.corpus.len(),
                            t: t.elapsed_s(),
                        });
                    }
                }
            }
            CorpusInsertion::Rejected => {}
        }
    }

    /// Algorithm 1: runs one input, returning `(new branches, iteration
    /// difference metric)`.
    fn execute(&mut self, data: &[u8]) -> (usize, usize) {
        let timer = if self.time_spans { Some(Instant::now()) } else { None };
        self.exec.reset(); // Model_init()
        let mut new_branches = 0;
        let mut metric = 0;
        self.last.clear();
        self.failed_assertions.iter_mut().for_each(|f| *f = false);
        let masked = !matches!(self.config.feedback, FeedbackMode::ModelLevel);
        for tuple in self.layout.split(data).take(self.config.max_iterations_per_input) {
            self.curr.clear(); // line 11
            let mut recorder = LoopRecorder {
                bitmap: &mut self.curr,
                torc: &mut self.torc,
                failed_assertions: &mut self.failed_assertions,
            };
            self.exec.step_tuple(tuple, &mut recorder); // line 12
            if masked {
                // Clear probe hits the configured feedback cannot observe.
                self.curr.retain_mask(&self.mask);
            }
            new_branches += self.curr.merge_into(&mut self.total); // lines 13–16
            metric += self.curr.diff_count(&self.last); // lines 17–18
            self.last.copy_from(&self.curr); // line 19
            self.iterations += 1;
            self.stats.iterations += 1;
        }
        if let Some(start) = timer {
            let end = Instant::now();
            let ns = end.saturating_duration_since(start).as_nanos() as u64;
            if self.time_execs {
                self.stats.exec_latency_ns.record(ns);
            }
            self.stats.spans.record(SpanKind::Execution, ns);
            if let Some(sampler) = &mut self.span_sampler {
                sampler.record(SpanKind::Execution, start, end);
            }
        }
        (new_branches, metric)
    }

    // ---- parallel-engine hooks (crate-private; see `parallel.rs`) ----

    /// Runs `n` inputs without touching the wall-clock bookkeeping — the
    /// unit of work a parallel worker performs between synchronizations.
    /// Under [`Engine::Batch`] the inputs are executed `width` lanes at a
    /// time through the SoA tier; every other engine runs them one by one.
    /// Exactly `n` inputs are committed either way.
    pub(crate) fn fuzz_batch(&mut self, n: u64) {
        if matches!(self.engine, Engine::Batch { .. }) {
            let mut done = 0;
            while done < n {
                done += self.fuzz_batch_step((n - done) as usize);
            }
        } else {
            for _ in 0..n {
                self.fuzz_one();
            }
        }
    }

    /// One batched fuzz round: pre-mutate up to `limit` (capped at the
    /// batch width) children against the current corpus and TORC
    /// dictionary, execute them together through the SoA tier, then commit
    /// the lanes *in lane order* — each lane's coverage merge, corpus
    /// insert, and TORC replay happen exactly as a sequential run would
    /// have performed them. The moment a committed lane changes the corpus
    /// or the dictionary, the remaining lanes are abandoned (their
    /// sequential counterparts would have been generated from the changed
    /// state): the RNG rewinds to the first abandoned lane's checkpoint and
    /// the abandoned picks' selection bumps are reversed. This makes the
    /// committed input sequence byte-identical to a sequential run's at any
    /// batch width. Returns the number of inputs committed (≥ 1).
    fn fuzz_batch_step(&mut self, limit: usize) -> u64 {
        let b = self.config.resolved_batch_width().min(limit);
        if b < 2 || self.corpus.is_empty() {
            // Bootstrap (no seeds yet) and degenerate widths take the
            // scalar path — batching only pays once there is a corpus.
            self.fuzz_one();
            return 1;
        }
        self.batch_rounds += 1;
        let width = self.config.resolved_batch_width();
        let assertions = self.failed_assertions.len();
        if self.batch.is_none() {
            self.batch = Some(BatchExecutor::new(self.compiled, width));
            self.batch_scratch = Some(BatchScratch::new(self.total.len(), width, assertions));
        }
        let mut children: Vec<Option<PreparedChild>> =
            (0..b).map(|_| Some(self.prepare_child())).collect();

        let mut vm = self.batch.take().expect("executor built above");
        let mut scratch = self.batch_scratch.take().expect("scratch built above");
        scratch.reset();
        let exec_start = if self.time_spans { Some(Instant::now()) } else { None };
        let masked = !matches!(self.config.feedback, FeedbackMode::ModelLevel);
        let tuple = self.layout.tuple_size().max(1);
        // Per-lane tick budget: same truncation as the scalar loop's
        // `layout.split(data).take(max_iterations_per_input)`.
        let totals: Vec<usize> = children
            .iter()
            .map(|c| {
                let data = &c.as_ref().expect("just prepared").data;
                self.layout.split(data).len().min(self.config.max_iterations_per_input)
            })
            .collect();
        let max_ticks = totals.iter().copied().max().unwrap_or(0);

        vm.begin();
        for t in 0..max_ticks {
            scratch.bits.clear();
            for (l, total) in totals.iter().enumerate() {
                if t < *total {
                    let data = &children[l].as_ref().expect("untaken").data;
                    vm.load_tuple(l, &data[t * tuple..(t + 1) * tuple]);
                } else {
                    vm.retire_lane(l);
                }
            }
            let mut rec = BatchLoopRecorder {
                bits: &mut scratch.bits,
                torc: &mut scratch.torc,
                failed: &mut scratch.failed,
                assertions: assertions.max(1),
            };
            vm.step_tick(&mut rec);
            // Per-lane Algorithm 1 accounting for this tick: extract the
            // lane's column, apply the feedback mask, fold it into the
            // lane's case union and iteration-difference metric.
            for (l, total) in totals.iter().enumerate() {
                if t >= *total {
                    continue;
                }
                scratch.curr.clear();
                scratch.bits.extract_lane(l, &mut scratch.curr);
                if masked {
                    scratch.curr.retain_mask(&self.mask);
                }
                scratch.curr.merge_into(&mut scratch.acc[l]);
                scratch.metrics[l] += scratch.curr.diff_count(&scratch.last[l]);
                scratch.last[l].copy_from(&scratch.curr);
            }
        }
        let exec_span = exec_start.map(|start| (start, Instant::now()));

        // Commit lanes in order; abandon the tail on a corpus or
        // dictionary change.
        let mut committed = 0u64;
        let mut abandon_from = None;
        for l in 0..b {
            let child = children[l].take().expect("committed once");
            for i in 0..assertions {
                self.failed_assertions[i] = scratch.failed[l * assertions + i];
            }
            let generation = self.torc.generation;
            for &(lhs, rhs) in &scratch.torc[l] {
                self.torc.push(lhs, rhs);
            }
            self.iterations += totals[l] as u64;
            self.stats.iterations += totals[l] as u64;
            // `total` only grows during a round, so the per-case union
            // merged once yields the same count as the scalar loop's
            // per-tick merges (lines 13–16 of Algorithm 1).
            let new_branches = scratch.acc[l].merge_into(&mut self.total);
            let inserted = self.commit_executed(child, new_branches, scratch.metrics[l]);
            committed += 1;
            self.batch_commits += 1;
            if l + 1 < b && (inserted || self.torc.generation != generation) {
                abandon_from = Some(l + 1);
                break;
            }
        }
        if let Some(from) = abandon_from {
            self.rng = children[from].as_ref().expect("untaken").rng_before.clone();
            for child in children[from..].iter().flatten() {
                self.batch_abandons += 1;
                if let Some(parent) = child.parent {
                    self.corpus.unnote_selection(parent);
                }
                if let Some(other) = child.other_id {
                    self.corpus.unnote_selection(other);
                }
            }
        }
        if let Some((start, end)) = exec_span {
            let ns = end.saturating_duration_since(start).as_nanos() as u64;
            self.stats.spans.record(SpanKind::Execution, ns);
            if let Some(sampler) = &mut self.span_sampler {
                sampler.record(SpanKind::Execution, start, end);
            }
            if self.time_execs {
                let per_lane = ns / b as u64;
                for _ in 0..committed {
                    self.stats.exec_latency_ns.record(per_lane);
                }
            }
        }
        self.batch = Some(vm);
        self.batch_scratch = Some(scratch);
        committed
    }

    /// Marks this fuzzer as a parallel worker shard: local stats keep
    /// accumulating, but events and registry merges are left to the
    /// coordinator (which owns the global view).
    pub(crate) fn set_worker_mode(&mut self) {
        self.worker_mode = true;
        // Worker shards never emit events; the coordinator owns the global
        // plateau watcher (a shard-local one would mistake cross-shard
        // discoveries for stalls).
        self.plateau = None;
    }

    /// Sets the shard id lineage ids are minted under (worker id on
    /// parallel shards; stays 0 on sequential runs, so shard 0's ids
    /// coincide with a sequential run's — the `workers == 1` byte-identity
    /// contract).
    pub(crate) fn set_worker_shard(&mut self, shard: usize) {
        self.shard = shard;
        if let Some(sampler) = &mut self.span_sampler {
            sampler.set_shard(shard as u32);
        }
    }

    /// `true` when span-phase timing is enabled (telemetry or trace buffer
    /// attached) — workers use this to decide whether to time sync waits.
    pub(crate) fn spans_enabled(&self) -> bool {
        self.time_spans
    }

    /// Books the time this worker spent blocked on the coordinator's
    /// broadcast as a [`SpanKind::SyncWait`] span — the lock-wait signal
    /// that diagnoses multi-core scaling.
    pub(crate) fn note_sync_wait(&mut self, start: Instant) {
        self.note_span(SpanKind::SyncWait, start);
    }

    /// The stats accumulated since the previous call (or since creation),
    /// advancing the report baseline. Merge-ordering of these deltas across
    /// shards is irrelevant: ShardStats addition is commutative.
    pub(crate) fn take_stats_delta(&mut self) -> ShardStats {
        let delta = self.stats.delta_since(&self.reported_stats);
        self.reported_stats = self.stats.clone();
        delta
    }

    /// Number of corpus entries currently retained.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// Per-corpus-entry scheduling forensics (parallel workers ship these
    /// to the coordinator at sync rounds for registry publication).
    pub(crate) fn corpus_seed_reports(&self) -> Vec<cftcg_telemetry::CorpusSeedReport> {
        self.corpus.seed_reports(self.executions)
    }

    /// Inputs executed so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Model iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Coverage-growth events so far (one per suite entry, same order).
    pub fn events(&self) -> &[CoverageEvent] {
        &self.events
    }

    /// Imports a corpus entry discovered by another worker shard: executes
    /// it so this shard's `g_TotalCov`, TORC, and corpus account for the
    /// broadcast coverage, without counting it as fuzzing work (the
    /// originating worker already counted the execution) and without
    /// re-reporting its discoveries (suite, events, and violations stay
    /// untouched — the coordinator owns the merged view).
    pub(crate) fn absorb_entry(&mut self, id: u64, bytes: Vec<u8>) {
        let iterations = self.iterations;
        let executions = self.executions;
        let stats = self.stats.clone();
        let tracking = std::mem::take(&mut self.torc.track_fresh);
        let (new_branches, metric) = self.execute(&bytes);
        self.torc.track_fresh = tracking;
        self.iterations = iterations;
        self.executions = executions;
        // The originating worker already counted this execution; rolling
        // the stats back keeps the telemetry totals double-count-free.
        self.stats = stats;
        // Only keep it if it taught this shard something; otherwise it
        // would crowd out locally interesting entries. The entry keeps the
        // lineage id its originating shard minted, so mutants of it trace
        // across the shard boundary.
        if new_branches > 0 || metric > 0 {
            let insertion = self.corpus.insert(CorpusEntry { id, bytes, metric, new_branches });
            if !matches!(insertion, CorpusInsertion::Rejected) {
                // Broadcast entries have no resident parent on this shard;
                // their age starts at absorption.
                self.corpus.note_committed(id, None, self.executions);
            }
        }
    }

    /// Merges compare-dictionary pairs broadcast by the coordinator.
    pub(crate) fn absorb_torc(&mut self, pairs: &[(f64, f64)]) {
        self.torc.absorb(pairs);
    }

    /// Turns on TORC fresh-pair tracking for coordinator syncs.
    pub(crate) fn enable_torc_tracking(&mut self) {
        self.torc.enable_tracking();
    }

    /// Drains TORC pairs admitted since the last drain.
    pub(crate) fn take_fresh_torc(&mut self) -> Vec<(f64, f64)> {
        self.torc.take_fresh()
    }

    /// Violations found since index `from`, as `(assertion, input bytes)`.
    pub(crate) fn violations_since(&self, from: usize) -> &[(usize, TestCase)] {
        &self.violations[from..]
    }

    /// Suite/event/meta triples since index `from` (the three vectors grow
    /// in lockstep: one event and one meta record per emitted test case).
    pub(crate) fn discoveries_since(
        &self,
        from: usize,
    ) -> (&[TestCase], &[CoverageEvent], &[CaseMeta]) {
        debug_assert_eq!(self.suite.len(), self.events.len());
        debug_assert_eq!(self.suite.len(), self.suite_meta.len());
        (&self.suite[from..], &self.events[from..], &self.suite_meta[from..])
    }

    /// Lineage records minted since index `from` (append-only stream).
    pub(crate) fn lineage_records_since(&self, from: usize) -> &[LineageRecord] {
        &self.lineage.records()[from..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, replay_suite};
    use cftcg_model::expr::parse_expr;
    use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};

    /// A model with an easy branch and a magic-value branch.
    fn magic_model() -> cftcg_codegen::CompiledModel {
        let mut b = ModelBuilder::new("magic");
        let u = b.inport("u", DataType::U8);
        let iff = b.add(
            "if",
            BlockKind::If {
                num_inputs: 1,
                conditions: vec![parse_expr("u1 == 77").unwrap()],
                has_else: true,
            },
        );
        fn const_action(name: &str, v: f64) -> BlockKind {
            let mut b = ModelBuilder::new(name);
            let c = b.constant("c", v);
            let y = b.outport("y");
            b.wire(c, y);
            BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
        }
        let hit = b.add("hit", const_action("hm", 1.0));
        let miss = b.add("miss", const_action("mm", 0.0));
        let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
        let y = b.outport("y");
        b.wire(u, iff);
        b.connect(iff, 0, hit, 0);
        b.connect(iff, 1, miss, 0);
        b.connect(hit, 0, merge, 0);
        b.connect(miss, 0, merge, 1);
        b.wire(merge, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn torc_dedups_and_filters() {
        let mut t = Torc::new();
        t.push(5.0, 77.0);
        t.push(5.0, 77.0); // duplicate
        t.push(f64::NAN, 1.0); // non-finite
        t.push(3.0, 3.0); // equal operands
        t.push(0.5, -0.5); // both tiny
        assert_eq!(t.pairs, vec![(5.0, 77.0)]);
    }

    #[test]
    fn torc_ring_evicts_oldest_once_full() {
        let mut t = Torc::new();
        for i in 0..Torc::CAPACITY {
            t.push(2.0 + i as f64, 1.0);
        }
        assert_eq!(t.pairs.len(), Torc::CAPACITY);
        assert!(t.pairs.contains(&(2.0, 1.0)));

        // The table is full; a new pair must still be admitted…
        t.push(9_999.0, 1.0);
        assert_eq!(t.pairs.len(), Torc::CAPACITY, "stays bounded");
        assert!(t.pairs.contains(&(9_999.0, 1.0)), "new pair admitted");
        // …at the expense of the oldest entry.
        assert!(!t.pairs.contains(&(2.0, 1.0)), "oldest evicted");

        // The evicted pair's dedup slot was released: it can come back
        // (evicting the now-oldest survivor).
        t.push(2.0, 1.0);
        assert!(t.pairs.contains(&(2.0, 1.0)));
        assert!(!t.pairs.contains(&(3.0, 1.0)));
        assert_eq!(t.pairs.len(), Torc::CAPACITY);
    }

    #[test]
    fn torc_fresh_tracking_drains_and_skips_absorbed() {
        let mut t = Torc::new();
        t.push(10.0, 20.0); // before tracking: not recorded as fresh
        t.enable_tracking();
        t.push(30.0, 40.0);
        t.absorb(&[(50.0, 60.0), (10.0, 20.0)]); // imported, not echoed
        assert_eq!(t.take_fresh(), vec![(30.0, 40.0)]);
        assert!(t.take_fresh().is_empty(), "drained");
        assert!(t.pairs.contains(&(50.0, 60.0)), "absorbed pairs join the table");
        assert_eq!(t.pairs.len(), 3, "absorbed duplicate was deduped");
    }

    #[test]
    fn fuzzer_finds_magic_byte() {
        let compiled = magic_model();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 3, ..Default::default() });
        let outcome = fuzzer.run_executions(5_000);
        assert_eq!(
            outcome.covered_branches, outcome.branch_count,
            "expected full coverage, got {}/{}",
            outcome.covered_branches, outcome.branch_count
        );
        // The emitted suite replays to the same decision coverage.
        let report = replay_suite(&compiled, &outcome.suite);
        assert_eq!(report.decision.percent(), 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let compiled = magic_model();
        let run = |seed| {
            let mut f = Fuzzer::new(&compiled, FuzzConfig { seed, ..Default::default() });
            let o = f.run_executions(500);
            (o.covered_branches, o.iterations, o.suite.len())
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn events_are_monotone() {
        let compiled = magic_model();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 5, ..Default::default() });
        let outcome = fuzzer.run_executions(2_000);
        assert!(!outcome.events.is_empty());
        for pair in outcome.events.windows(2) {
            assert!(pair[0].covered_branches < pair[1].covered_branches);
            assert!(pair[0].executions <= pair[1].executions);
        }
        assert_eq!(outcome.events.last().unwrap().covered_branches, outcome.covered_branches);
    }

    #[test]
    fn iteration_difference_metric_prefers_state_visiting_inputs() {
        // A counter-driven model: inputs with more tuples exercise more
        // distinct branch sets across iterations, so their metric is larger.
        let mut b = ModelBuilder::new("counted");
        let u = b.inport("u", DataType::U8);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let cnt = b.add("cnt", BlockKind::CounterLimited { limit: 3 });
        let cmp = b.add("cmp", BlockKind::Compare { op: cftcg_model::RelOp::Ge, constant: 2.0 });
        let y = b.outport("y");
        b.wire(cnt, cmp);
        b.wire(cmp, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();

        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 1, ..Default::default() });
        let (_, metric_short) = fuzzer.execute(&[0]);
        let (_, metric_long) = fuzzer.execute(&[0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(
            metric_long > metric_short,
            "long state-visiting input should score higher: {metric_long} vs {metric_short}"
        );
    }

    /// Reproduces the statistical schematic of the paper's Figure 6: three
    /// iterations whose per-iteration branch sets give an Iteration
    /// Difference Coverage metric of 10 (= 3 + 4 + 3).
    ///
    /// A free-running counter drives k = 0, 1, 2 through a Saturation
    /// (thresholds 0.5 / 1.5, giving nested conditionally-evaluated
    /// decisions) and a Compare (k >= 1):
    ///
    /// * iteration 1 hits {upper:false, lower:true, cmp:false}      → diff 3
    /// * iteration 2 hits {upper:false, lower:false, cmp:true}      → diff 4
    /// * iteration 3 hits {upper:true, cmp:true} (lower not reached)→ diff 3
    #[test]
    fn figure_6_iteration_difference_metric() {
        let mut b = ModelBuilder::new("fig6");
        let u = b.inport("u", DataType::U8);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let k = b.add("k", BlockKind::CounterFreeRunning { bits: 8 });
        let sat = b.add("sat", BlockKind::Saturation { lower: 0.5, upper: 1.5 });
        let cmp = b.add("cmp", BlockKind::Compare { op: cftcg_model::RelOp::Ge, constant: 1.0 });
        let y0 = b.outport("y0");
        let y1 = b.outport("y1");
        b.wire(k, sat);
        b.feed(k, cmp, 0);
        b.wire(sat, y0);
        b.wire(cmp, y1);
        let compiled = compile(&b.finish().unwrap()).unwrap();
        // 3 decisions × 2 outcomes = 6 branch probes, as in the schematic.
        assert_eq!(compiled.map().branch_count(), 6);

        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig::default());
        let (new_branches, metric) = fuzzer.execute(&[0, 0, 0]);
        assert_eq!(metric, 10, "Figure 6: metric = 3 + 4 + 3");
        assert_eq!(new_branches, 6, "all six probes fire across the three iterations");
    }

    #[test]
    fn code_level_feedback_sees_fewer_branches() {
        // A pure boolean pipeline: AND gate → outport. Model-level feedback
        // sees its branches; code-level feedback sees nothing (branchless).
        let mut b = ModelBuilder::new("bool");
        let x = b.inport("x", DataType::Bool);
        let w = b.inport("w", DataType::Bool);
        let and = b.add("and", BlockKind::Logic { op: cftcg_model::LogicOp::And, inputs: 2 });
        let y = b.outport("y");
        b.connect(x, 0, and, 0);
        b.connect(w, 0, and, 1);
        b.wire(and, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();

        let mut model_level = Fuzzer::new(&compiled, FuzzConfig { seed: 2, ..Default::default() });
        let m = model_level.run_executions(200);
        assert!(m.covered_branches > 0);

        let mut code_level = Fuzzer::new(
            &compiled,
            FuzzConfig { seed: 2, feedback: FeedbackMode::CodeLevelOnly, ..Default::default() },
        );
        let c = code_level.run_executions(200);
        assert_eq!(c.covered_branches, 0, "boolean branches must be invisible");
        // ... and therefore it emits no test cases at all for this model.
        assert!(c.suite.is_empty());
    }

    #[test]
    fn run_for_respects_wall_clock() {
        let compiled = magic_model();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 9, ..Default::default() });
        let outcome = fuzzer.run_for(Duration::from_millis(30));
        assert!(outcome.executions > 0);
        assert!(outcome.elapsed >= Duration::from_millis(30));
        assert!(outcome.iterations_per_second() > 0.0);
    }

    #[test]
    fn suite_replay_matches_final_coverage() {
        let compiled = magic_model();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 13, ..Default::default() });
        let outcome = fuzzer.run_executions(3_000);
        let report = replay_suite(&compiled, &outcome.suite);
        assert_eq!(report.decision.covered, outcome.covered_branches);
    }

    #[test]
    fn inputless_model_does_not_hang() {
        let mut b = ModelBuilder::new("none");
        let c = b.constant("c", Value::F64(5.0));
        let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
        let y = b.outport("y");
        b.wire(c, sat);
        b.wire(sat, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 0, ..Default::default() });
        let outcome = fuzzer.run_executions(50);
        assert_eq!(outcome.executions, 50);
    }
}
