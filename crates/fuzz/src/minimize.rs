//! Test-case and suite minimization.
//!
//! The fuzzing loop emits every input that finds new coverage, so suites
//! accumulate redundancy and individual cases carry irrelevant tuples.
//! [`minimize_case`] shrinks one case (greedy tuple-block removal) while
//! preserving the exact set of branches it covers; [`minimize_suite`]
//! drops whole cases that contribute no unique coverage (greedy set cover,
//! largest contributor first).

use cftcg_codegen::{CompiledModel, Executor, TestCase};
use cftcg_coverage::BranchBitmap;

/// Executes a case and returns its cumulative branch coverage.
fn coverage_of(compiled: &CompiledModel, case: &TestCase) -> BranchBitmap {
    let mut exec = Executor::new(compiled);
    let mut total = BranchBitmap::new(compiled.map().branch_count());
    let mut curr = BranchBitmap::new(compiled.map().branch_count());
    exec.reset();
    for tuple in compiled.layout().split(&case.bytes) {
        curr.clear();
        exec.step_tuple(tuple, &mut curr);
        curr.merge_into(&mut total);
    }
    total
}

/// `true` when every branch set in `needed` is also set in `have`.
fn covers(have: &BranchBitmap, needed: &BranchBitmap) -> bool {
    needed.as_slice().iter().zip(have.as_slice()).all(|(&n, &h)| !n || h)
}

/// Shrinks one test case by removing tuple blocks (halves, then quarters,
/// down to single tuples) as long as the case still covers everything it
/// covered before. Returns the shortened case.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_codegen::{compile, TestCase};
/// use cftcg_fuzz::minimize_case;
/// use cftcg_model::{BlockKind, DataType, ModelBuilder};
///
/// let mut b = ModelBuilder::new("m");
/// let u = b.inport("u", DataType::U8);
/// let sat = b.add("sat", BlockKind::Saturation { lower: 10.0, upper: 20.0 });
/// let y = b.outport("y");
/// b.wire(u, sat);
/// b.wire(sat, y);
/// let compiled = compile(&b.finish()?)?;
///
/// // 6 tuples, but 3 distinct behaviours: minimization keeps ≤ 3.
/// let fat = TestCase::new(vec![15, 15, 0, 0, 255, 255]);
/// let slim = minimize_case(&compiled, &fat);
/// assert!(slim.bytes.len() <= 3);
/// # Ok(())
/// # }
/// ```
pub fn minimize_case(compiled: &CompiledModel, case: &TestCase) -> TestCase {
    let tsize = compiled.layout().tuple_size();
    if tsize == 0 {
        return TestCase::default();
    }
    let target = coverage_of(compiled, case);
    let mut tuples: Vec<Vec<u8>> =
        compiled.layout().split(&case.bytes).map(<[u8]>::to_vec).collect();

    let mut block = (tuples.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < tuples.len() {
            let end = (start + block).min(tuples.len());
            if tuples.len() - (end - start) >= 1 || tuples.len() > (end - start) {
                let candidate: Vec<u8> = tuples[..start]
                    .iter()
                    .chain(&tuples[end..])
                    .flat_map(|t| t.iter().copied())
                    .collect();
                let candidate_case = TestCase::new(candidate);
                if covers(&coverage_of(compiled, &candidate_case), &target) {
                    tuples.drain(start..end);
                    continue; // same start, shrunk list
                }
            }
            start += block;
        }
        if block == 1 {
            break;
        }
        block /= 2;
    }
    TestCase::new(tuples.concat())
}

/// Drops suite members that contribute no branch not already covered by the
/// kept set (greedy, biggest contributor first). The result covers exactly
/// the same branches as the input suite.
pub fn minimize_suite(compiled: &CompiledModel, suite: &[TestCase]) -> Vec<TestCase> {
    let branch_count = compiled.map().branch_count();
    let mut coverages: Vec<(usize, BranchBitmap)> =
        suite.iter().enumerate().map(|(i, case)| (i, coverage_of(compiled, case))).collect();
    // Largest coverage first so the greedy pass keeps few, strong cases.
    coverages.sort_by_key(|(_, cov)| std::cmp::Reverse(cov.count()));

    let mut kept = Vec::new();
    let mut total = BranchBitmap::new(branch_count);
    for (i, cov) in coverages {
        if cov.merge_into(&mut total) > 0 {
            kept.push(i);
        }
    }
    kept.sort_unstable(); // preserve original emission order
    kept.into_iter().map(|i| suite[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, replay_suite};
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn saturation_compiled() -> CompiledModel {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::U8);
        let sat = b.add("sat", BlockKind::Saturation { lower: 10.0, upper: 20.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn case_minimization_preserves_coverage() {
        let compiled = saturation_compiled();
        let fat = TestCase::new(vec![0, 0, 0, 15, 15, 15, 255, 255, 255, 7, 200]);
        let slim = minimize_case(&compiled, &fat);
        assert!(slim.bytes.len() < fat.bytes.len());
        assert_eq!(
            coverage_of(&compiled, &slim).as_slice(),
            coverage_of(&compiled, &fat).as_slice()
        );
        // Three regions need exactly three tuples.
        assert_eq!(slim.bytes.len(), 3);
    }

    #[test]
    fn minimizing_a_minimal_case_is_identity_sized() {
        let compiled = saturation_compiled();
        let case = TestCase::new(vec![15]);
        let slim = minimize_case(&compiled, &case);
        assert_eq!(slim.bytes.len(), 1);
    }

    #[test]
    fn stateful_cases_keep_their_prefix() {
        // Counter wrap branch needs the full run-up; minimization must not
        // break it.
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::U8);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let c = b.add("cnt", BlockKind::CounterLimited { limit: 3 });
        let y = b.outport("y");
        b.wire(c, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();
        let case = TestCase::new(vec![0; 10]);
        let slim = minimize_case(&compiled, &case);
        assert_eq!(coverage_of(&compiled, &slim).count(), coverage_of(&compiled, &case).count());
        // The wrap needs at least 4 iterations (count 0..=3).
        assert!(slim.bytes.len() >= 4, "kept {} tuples", slim.bytes.len());
    }

    #[test]
    fn suite_minimization_drops_redundant_cases() {
        let compiled = saturation_compiled();
        let suite = vec![
            TestCase::new(vec![15]),     // pass-through
            TestCase::new(vec![15, 15]), // redundant
            TestCase::new(vec![0]),      // lower clip
            TestCase::new(vec![255]),    // upper clip
            TestCase::new(vec![0, 255]), // redundant combination
            TestCase::new(vec![16]),     // redundant
        ];
        let before = replay_suite(&compiled, &suite);
        let slim = minimize_suite(&compiled, &suite);
        let after = replay_suite(&compiled, &slim);
        assert_eq!(before.decision.covered, after.decision.covered);
        assert!(slim.len() <= 2, "kept {} cases", slim.len());
    }

    #[test]
    fn empty_suite_minimizes_to_empty() {
        let compiled = saturation_compiled();
        assert!(minimize_suite(&compiled, &[]).is_empty());
    }
}
