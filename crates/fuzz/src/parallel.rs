//! Sharded parallel fuzzing with periodic coverage/corpus synchronization.
//!
//! AFL-style main/secondary parallelism adapted to the model fuzzing loop:
//! `N` workers each own a full [`Fuzzer`] — their own executor, mutator,
//! corpus shard, TORC dictionary, and a seed-derived RNG (`seed ^
//! worker_id`, so runs stay deterministic per worker count). Workers fuzz
//! independently between *sync rounds*; each round they report to a
//! coordinator which
//!
//! 1. folds the workers' coverage into a global `g_TotalCov` bitmap by
//!    **re-executing** each candidate test case (the re-execution, not the
//!    worker's shard-local claim, decides global novelty — two shards often
//!    find the same branch in the same round),
//! 2. broadcasts globally-new corpus entries back to every *other* shard,
//!    so discoveries propagate without the shards sharing mutable state,
//! 3. merges compare-dictionary (TORC) pairs and assertion violations with
//!    first-witness-wins semantics.
//!
//! The merged [`FuzzOutcome`] has the same shape as a sequential run:
//! executions/iterations are summed, events carry global coverage totals,
//! and with `workers == 1` the suite is byte-identical to [`Fuzzer`] under
//! the same seed (nothing is broadcast back to its own origin, so the
//! single worker's trajectory is untouched).

use std::sync::mpsc::{self, Receiver, Sender};
use std::time::{Duration, Instant};

use cftcg_codegen::{CompiledModel, Executor, TestCase, TupleLayout};
use cftcg_coverage::{BranchBitmap, FirstHit, FullTracker, ProvenanceTracker, Recorder};
use cftcg_telemetry::{
    CorpusSeedReport, Event, PlateauGoal, ShardStats, SpanKind, COORDINATOR_TID,
    PLATEAU_FRONTIER_CAP,
};

use crate::fuzzer::{
    CaseMeta, CoverageEvent, FeedbackMode, FuzzConfig, FuzzOutcome, Fuzzer, OperatorAttribution,
};
use crate::lineage::{Lineage, LineageRecord};
use crate::mutate::MutationKind;
use crate::plateau::PlateauDetector;

/// Configuration of the parallel engine.
#[derive(Debug, Clone)]
pub struct ParallelFuzzConfig {
    /// Number of worker shards (clamped to at least 1).
    pub workers: usize,
    /// Executions each worker runs between syncs (execution-budget runs).
    pub sync_interval: u64,
    /// Wall-clock length of a sync round (time-budget runs).
    pub sync_period: Duration,
    /// Per-worker fuzzing configuration; `fuzz.seed` is the base seed each
    /// worker XORs with its id.
    pub fuzz: FuzzConfig,
}

impl Default for ParallelFuzzConfig {
    fn default() -> Self {
        ParallelFuzzConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            sync_interval: 1024,
            sync_period: Duration::from_millis(200),
            fuzz: FuzzConfig::default(),
        }
    }
}

/// One globally-new discovery as reported by a worker.
struct ReportedCase {
    bytes: Vec<u8>,
    /// Stable lineage id the shard minted for this case.
    case: u64,
    /// Worker wall-clock at discovery.
    elapsed: Duration,
    /// Worker-local execution count at discovery.
    executions: u64,
}

/// What a worker sends the coordinator at the end of each sync round.
struct WorkerReport {
    worker: usize,
    /// New suite entries since the last report (shard-local novelty).
    cases: Vec<ReportedCase>,
    /// New `(assertion index, witness input)` pairs since the last report.
    violations: Vec<(usize, Vec<u8>)>,
    /// TORC pairs admitted to the shard dictionary since the last report.
    torc: Vec<(f64, f64)>,
    /// Lineage records minted since the last report (append-only stream;
    /// ids are shard-strided so streams from different workers never
    /// collide).
    lineage: Vec<LineageRecord>,
    /// Cumulative worker-local totals.
    executions: u64,
    iterations: u64,
    /// Telemetry-stats delta since the previous report (commutative to
    /// merge, so arrival order across workers is irrelevant).
    stats: ShardStats,
    /// Corpus entries currently retained by the shard.
    corpus_len: usize,
    /// Per-corpus-entry scheduling forensics (empty unless a telemetry
    /// registry is attached — nobody would read them).
    corpus_seeds: Vec<CorpusSeedReport>,
    /// The worker has exhausted its budget.
    done: bool,
}

/// What the coordinator sends every worker after processing a round.
struct Broadcast {
    /// Globally-new corpus entries discovered by *other* workers, with the
    /// lineage id their originating shard minted.
    entries: Vec<(u64, Vec<u8>)>,
    /// Globally-new TORC pairs discovered by *other* workers.
    torc: Vec<(f64, f64)>,
    /// Budget exhausted everywhere: exit after absorbing.
    stop: bool,
}

/// A worker's fuzzing budget.
#[derive(Clone, Copy)]
enum WorkerBudget {
    /// Run exactly `total` executions, `per_round` per sync round.
    Executions { total: u64, per_round: u64 },
    /// Run until `deadline`, syncing every `period`.
    WallClock { deadline: Instant, period: Duration },
}

/// The worker thread body: fuzz a round, report, absorb the broadcast,
/// repeat until the coordinator says stop (or hangs up).
fn worker_loop(
    compiled: &CompiledModel,
    config: FuzzConfig,
    budget: WorkerBudget,
    worker: usize,
    reports: Sender<WorkerReport>,
    broadcasts: Receiver<Broadcast>,
) {
    let publish_seeds = config.telemetry.is_some();
    let mut fuzzer = Fuzzer::new(compiled, config);
    fuzzer.enable_torc_tracking();
    // Workers record stats locally but never touch the shared registry;
    // the coordinator owns the global view (and the event log).
    fuzzer.set_worker_mode();
    // Lineage ids are minted under the worker's shard so streams from
    // different shards never collide (and shard 0 matches sequential).
    fuzzer.set_worker_shard(worker);
    let started = Instant::now();
    let mut reported_cases = 0usize;
    let mut reported_violations = 0usize;
    let mut reported_lineage = 0usize;
    let mut executed = 0u64;
    let mut round = 0u32;
    loop {
        let done = match budget {
            WorkerBudget::Executions { total, per_round } => {
                let batch = per_round.min(total - executed);
                fuzzer.fuzz_batch(batch);
                executed += batch;
                executed >= total
            }
            WorkerBudget::WallClock { deadline, period } => {
                let round_end = (started + period * (round + 1)).min(deadline);
                fuzzer.run_until(round_end);
                Instant::now() >= deadline
            }
        };

        let (suite, events, metas) = fuzzer.discoveries_since(reported_cases);
        let cases: Vec<ReportedCase> = suite
            .iter()
            .zip(events)
            .zip(metas)
            .map(|((case, event), meta)| ReportedCase {
                bytes: case.bytes.clone(),
                case: meta.case,
                elapsed: event.elapsed,
                executions: event.executions,
            })
            .collect();
        reported_cases += cases.len();
        let lineage = fuzzer.lineage_records_since(reported_lineage).to_vec();
        reported_lineage += lineage.len();
        let violations: Vec<(usize, Vec<u8>)> = fuzzer
            .violations_since(reported_violations)
            .iter()
            .map(|(assertion, case)| (*assertion, case.bytes.clone()))
            .collect();
        reported_violations += violations.len();

        let report = WorkerReport {
            worker,
            cases,
            violations,
            torc: fuzzer.take_fresh_torc(),
            lineage,
            executions: fuzzer.executions(),
            iterations: fuzzer.iterations(),
            stats: fuzzer.take_stats_delta(),
            corpus_len: fuzzer.corpus_len(),
            corpus_seeds: if publish_seeds { fuzzer.corpus_seed_reports() } else { Vec::new() },
            done,
        };
        if reports.send(report).is_err() {
            return; // Coordinator hung up (a peer died); just exit.
        }
        let wait_started = fuzzer.spans_enabled().then(Instant::now);
        let Ok(broadcast) = broadcasts.recv() else {
            return;
        };
        if let Some(start) = wait_started {
            fuzzer.note_sync_wait(start);
        }
        for (id, bytes) in broadcast.entries {
            fuzzer.absorb_entry(id, bytes);
        }
        fuzzer.absorb_torc(&broadcast.torc);
        if broadcast.stop {
            return;
        }
        round += 1;
    }
}

/// The coordinator's candidate recorder: the per-iteration branch bitmap
/// (which decides global novelty, exactly as a worker's loop would) plus a
/// [`FullTracker`] collecting the condition/decision-evaluation
/// observations provenance needs — both filled in one execution pass.
struct ForensicRecorder<'a> {
    bitmap: &'a mut BranchBitmap,
    tracker: &'a mut FullTracker,
}

impl Recorder for ForensicRecorder<'_> {
    /// Comparison operands are mined by workers, not the coordinator.
    const OBSERVES_COMPARES: bool = false;

    #[inline]
    fn branch(&mut self, id: cftcg_coverage::BranchId) {
        self.bitmap.branch(id);
        self.tracker.branch(id);
    }

    #[inline]
    fn condition(&mut self, id: cftcg_coverage::ConditionId, value: bool) {
        self.tracker.condition(id, value);
    }

    #[inline]
    fn decision_eval(&mut self, id: cftcg_coverage::DecisionId, vector: u64, outcome: u32) {
        self.tracker.decision_eval(id, vector, outcome);
    }

    #[inline]
    fn assertion(&mut self, id: cftcg_coverage::AssertionId, passed: bool) {
        self.tracker.assertion(id, passed);
    }
}

/// The coordinator's global coverage state: its own executor re-runs every
/// candidate case against `g_TotalCov` to judge global novelty.
struct GlobalCoverage<'c> {
    exec: Executor<'c>,
    map: &'c cftcg_coverage::InstrumentationMap,
    layout: TupleLayout,
    total: BranchBitmap,
    curr: BranchBitmap,
    mask: Vec<bool>,
    masked: bool,
    max_iterations: usize,
}

impl<'c> GlobalCoverage<'c> {
    fn new(compiled: &'c CompiledModel, config: &FuzzConfig) -> Self {
        let branch_count = compiled.map().branch_count();
        let masked = !matches!(config.feedback, FeedbackMode::ModelLevel);
        let mask = match config.feedback {
            FeedbackMode::ModelLevel => vec![true; branch_count],
            FeedbackMode::CodeLevelOnly => compiled.map().code_level_mask(),
        };
        let exec = Executor::with_engine(compiled, config.resolved_engine());
        GlobalCoverage {
            exec,
            map: compiled.map(),
            layout: compiled.layout().clone(),
            total: BranchBitmap::new(branch_count),
            curr: BranchBitmap::new(branch_count),
            mask,
            masked,
            max_iterations: config.max_iterations_per_input,
        }
    }

    /// Re-executes `bytes` exactly as a worker would, merging its coverage
    /// into the global bitmap. Returns how many branches were new together
    /// with the case's full observation tracker (the masked feedback view
    /// governs novelty; the tracker is always unmasked — forensics are
    /// model-level regardless of feedback mode).
    fn absorb(&mut self, bytes: &[u8]) -> (usize, FullTracker) {
        self.exec.reset();
        let mut tracker = FullTracker::new(self.map);
        let mut new_branches = 0;
        for tuple in self.layout.split(bytes).take(self.max_iterations) {
            self.curr.clear();
            let mut recorder = ForensicRecorder { bitmap: &mut self.curr, tracker: &mut tracker };
            self.exec.step_tuple(tuple, &mut recorder);
            if self.masked {
                self.curr.retain_mask(&self.mask);
            }
            new_branches += self.curr.merge_into(&mut self.total);
        }
        (new_branches, tracker)
    }
}

/// The sharded parallel fuzzing engine. One-shot: construct, then call
/// [`run_for`](Self::run_for) or [`run_executions`](Self::run_executions)
/// once for a merged [`FuzzOutcome`].
pub struct ParallelFuzzer<'c> {
    compiled: &'c CompiledModel,
    config: ParallelFuzzConfig,
}

impl<'c> ParallelFuzzer<'c> {
    /// Creates a parallel fuzzer over a compiled model.
    pub fn new(compiled: &'c CompiledModel, config: ParallelFuzzConfig) -> Self {
        ParallelFuzzer { compiled, config }
    }

    /// Runs until `budget` wall-clock time has elapsed.
    pub fn run_for(&self, budget: Duration) -> FuzzOutcome {
        let deadline = Instant::now() + budget;
        self.run(WorkerBudget::WallClock { deadline, period: self.config.sync_period })
    }

    /// Runs exactly `n` executions split across the workers (remainder to
    /// the lowest worker ids). Deterministic for a given seed and worker
    /// count; with one worker, byte-identical to [`Fuzzer::run_executions`].
    pub fn run_executions(&self, n: u64) -> FuzzOutcome {
        self.run(WorkerBudget::Executions { total: n, per_round: self.config.sync_interval.max(1) })
    }

    fn run(&self, budget: WorkerBudget) -> FuzzOutcome {
        let workers = self.config.workers.max(1);
        let started = Instant::now();
        let compiled = self.compiled;

        let mut global = GlobalCoverage::new(compiled, &self.config.fuzz);
        let telemetry = self.config.fuzz.telemetry.clone();
        let span_trace = self.config.fuzz.span_trace.clone();
        // The coordinator owns case emission, so it also owns the trace
        // hook (workers run in worker mode, where the hook never fires).
        let trace_hook = self.config.fuzz.trace_hook.clone();
        // Campaign-wide stats, merged from worker deltas each round, so the
        // final outcome carries attribution even without a registry.
        let mut global_stats = ShardStats::new(MutationKind::ALL.len());
        // Coordinator-side plateau watcher over the *global* covered count
        // (worker-local watchers would mistake cross-shard discoveries for
        // stalls; workers run in worker mode, so theirs never instantiate).
        let mut plateau = match (&telemetry, self.config.fuzz.plateau_window) {
            (Some(_), Some(window)) => Some(PlateauDetector::new(window)),
            _ => None,
        };
        let mut round_idx = 0u64;
        let mut torc_seen = std::collections::HashSet::new();
        let mut suite: Vec<TestCase> = Vec::new();
        let mut events: Vec<CoverageEvent> = Vec::new();
        let mut suite_meta: Vec<CaseMeta> = Vec::new();
        // The merged lineage DAG (worker streams appended in worker-id
        // order each round) and the global per-goal provenance, fed by
        // re-executing accepted candidates.
        let mut lineage = Lineage::new();
        let mut provenance = ProvenanceTracker::new(compiled.map());
        let mut violations: Vec<(usize, TestCase)> = Vec::new();
        // Per-worker cumulative executions as of the end of the previous
        // round — the base for global execution estimates on events.
        let mut prev_execs = vec![0u64; workers];
        let mut iterations = vec![0u64; workers];

        let (report_tx, report_rx) = mpsc::channel::<WorkerReport>();
        std::thread::scope(|scope| {
            let mut broadcast_txs = Vec::with_capacity(workers);
            for worker in 0..workers {
                let (tx, rx) = mpsc::channel::<Broadcast>();
                broadcast_txs.push(tx);
                let mut fuzz = self.config.fuzz.clone();
                fuzz.seed ^= worker as u64;
                let worker_budget = match budget {
                    WorkerBudget::Executions { total, per_round } => {
                        // Split n across shards, remainder to low ids.
                        let base = total / workers as u64;
                        let extra = u64::from((worker as u64) < total % workers as u64);
                        WorkerBudget::Executions { total: base + extra, per_round }
                    }
                    wall => wall,
                };
                let report_tx = report_tx.clone();
                scope.spawn(move || {
                    worker_loop(compiled, fuzz, worker_budget, worker, report_tx, rx)
                });
            }
            drop(report_tx);

            let wall_mode = matches!(budget, WorkerBudget::WallClock { .. });
            'rounds: loop {
                // Collect exactly one report per worker (lockstep round).
                let mut reports: Vec<Option<WorkerReport>> = (0..workers).map(|_| None).collect();
                for _ in 0..workers {
                    match report_rx.recv() {
                        Ok(report) => {
                            let w = report.worker;
                            reports[w] = Some(report);
                        }
                        // A worker died (panic): drop the broadcast senders
                        // so the rest exit, and let scope join re-raise.
                        Err(_) => break 'rounds,
                    }
                }
                let reports: Vec<WorkerReport> =
                    reports.into_iter().map(|r| r.expect("one report per worker")).collect();

                let merge_started = Instant::now();
                let global_base: u64 = prev_execs.iter().sum();

                // Fold the workers' lineage streams first, so every
                // candidate processed below can resolve its own record
                // (parents may arrive in the same round as their children).
                for report in &reports {
                    for record in &report.lineage {
                        lineage.push(record.clone());
                    }
                }

                // Candidate cases, ordered deterministically: by discovery
                // timestamp for wall-clock runs, by (worker, index) for
                // execution-budget runs (where timestamps are not
                // reproducible but worker trajectories are).
                let mut candidates: Vec<(usize, usize, &ReportedCase)> = reports
                    .iter()
                    .flat_map(|r| r.cases.iter().enumerate().map(|(i, c)| (r.worker, i, c)))
                    .collect();
                if wall_mode {
                    candidates.sort_by_key(|&(w, i, c)| (c.elapsed, w, i));
                }

                // Re-execute each candidate against the global bitmap; only
                // globally-novel ones enter the merged suite and the
                // cross-shard broadcast.
                let mut accepted: Vec<(usize, u64, &[u8])> = Vec::new();
                for (worker, _, case) in candidates {
                    let (new_branches, tracker) = global.absorb(&case.bytes);
                    if new_branches > 0 {
                        suite.push(TestCase::new(case.bytes.clone()));
                        let executions = global_base + (case.executions - prev_execs[worker]);
                        events.push(CoverageEvent {
                            elapsed: case.elapsed,
                            executions,
                            covered_branches: global.total.count(),
                        });
                        suite_meta.push(CaseMeta {
                            case: case.case,
                            shard: worker,
                            executions,
                            covered_branches: global.total.count(),
                        });
                        if let Some(hook) = &trace_hook {
                            hook.call(&case.bytes, case.case);
                        }
                        let (parent, crossover, op_names, op_indices) = match lineage.get(case.case)
                        {
                            Some(r) => (
                                r.parent,
                                r.crossover,
                                r.ops.iter().map(|k| k.name().to_string()).collect(),
                                r.op_indices(),
                            ),
                            None => (None, None, Vec::new(), Vec::new()),
                        };
                        let hit = FirstHit {
                            executions,
                            elapsed: case.elapsed,
                            shard: worker,
                            case: case.case,
                            ops: op_indices,
                        };
                        provenance.absorb(compiled.map(), &tracker, &hit);
                        if let Some(t) = &telemetry {
                            t.emit(&Event::NewCoverage {
                                shard: worker,
                                executions,
                                covered: global.total.count(),
                                total: global.total.len(),
                                t: t.elapsed_s(),
                            });
                            t.emit(&Event::CaseLineage {
                                shard: worker,
                                case: case.case,
                                parent,
                                crossover,
                                ops: op_names,
                                executions,
                                t: t.elapsed_s(),
                            });
                        }
                        accepted.push((worker, case.case, &case.bytes));
                    }
                }

                // First witness wins: violations in worker-id order.
                for report in &reports {
                    for (assertion, bytes) in &report.violations {
                        if !violations.iter().any(|&(a, _)| a == *assertion) {
                            violations.push((*assertion, TestCase::new(bytes.clone())));
                            if let Some(t) = &telemetry {
                                t.emit(&Event::Violation {
                                    shard: report.worker,
                                    assertion: *assertion,
                                    label: compiled
                                        .map()
                                        .assertions()
                                        .get(*assertion)
                                        .cloned()
                                        .unwrap_or_default(),
                                    t: t.elapsed_s(),
                                });
                            }
                        }
                    }
                }

                // Fold worker stats deltas into the campaign totals (and
                // the registry, which also tracks per-shard rates).
                for report in &reports {
                    global_stats.merge_from(&report.stats);
                    if let Some(t) = &telemetry {
                        t.merge_shard(report.worker, &report.stats, report.corpus_len);
                        if !report.corpus_seeds.is_empty() {
                            t.set_corpus_seeds(report.worker, report.corpus_seeds.clone());
                        }
                    }
                }

                // Globally-new TORC pairs, first witness wins.
                let mut fresh_torc: Vec<(usize, (f64, f64))> = Vec::new();
                for report in &reports {
                    for &(lhs, rhs) in &report.torc {
                        if torc_seen.insert((lhs.to_bits(), rhs.to_bits())) {
                            fresh_torc.push((report.worker, (lhs, rhs)));
                        }
                    }
                }

                let all_done = reports.iter().all(|r| r.done);
                for report in &reports {
                    prev_execs[report.worker] = report.executions;
                    iterations[report.worker] = report.iterations;
                }

                // Plateau watch over the merged frontier: one event per
                // quiet window of global executions without a goal gained.
                if let (Some(detector), Some(t)) = (&mut plateau, &telemetry) {
                    let executions: u64 = prev_execs.iter().sum();
                    let covered = global.total.count();
                    while detector.observe(executions, covered) {
                        let entries =
                            cftcg_coverage::frontier(compiled.map(), provenance.tracker());
                        let frontier: Vec<PlateauGoal> = entries
                            .iter()
                            .take(PLATEAU_FRONTIER_CAP)
                            .map(|e| PlateauGoal {
                                label: e.label.clone(),
                                cause: e.cause.tag().to_string(),
                            })
                            .collect();
                        t.emit(&Event::Plateau {
                            shard: 0,
                            executions,
                            window: detector.window(),
                            covered,
                            total: global.total.len(),
                            open: entries.len() as u64,
                            frontier,
                            t: t.elapsed_s(),
                        });
                    }
                }

                for (worker, tx) in broadcast_txs.iter().enumerate() {
                    let broadcast = Broadcast {
                        entries: accepted
                            .iter()
                            .filter(|&&(origin, _, _)| origin != worker)
                            .map(|&(_, id, bytes)| (id, bytes.to_vec()))
                            .collect(),
                        torc: fresh_torc
                            .iter()
                            .filter(|&&(origin, _)| origin != worker)
                            .map(|&(_, pair)| pair)
                            .collect(),
                        stop: all_done,
                    };
                    // A send failure means that worker exited; the
                    // done-handshake below still terminates the round loop.
                    let _ = tx.send(broadcast);
                }
                // Book the merge as a coordinator-side SyncRound span: into
                // the campaign totals (always) and the trace buffer (when a
                // trace is attached), under the coordinator's synthetic tid.
                let merge_ended = Instant::now();
                let merge_ns =
                    merge_ended.saturating_duration_since(merge_started).as_nanos() as u64;
                global_stats.spans.record(SpanKind::SyncRound, merge_ns);
                if let Some(trace) = &span_trace {
                    trace.record_span(
                        SpanKind::SyncRound,
                        COORDINATOR_TID,
                        merge_started,
                        merge_ended,
                    );
                }
                if let Some(t) = &telemetry {
                    t.emit(&Event::SyncRound {
                        round: round_idx,
                        duration_ms: merge_ns as f64 / 1e6,
                        accepted: accepted.len(),
                        broadcast: accepted.len(),
                        executions: prev_execs.iter().sum(),
                        covered: global.total.count(),
                        total: global.total.len(),
                        t: t.elapsed_s(),
                    });
                    t.status_tick(false);
                }
                round_idx += 1;
                if all_done {
                    break;
                }
            }
        });

        // Coordinator-side sync cost lives in the registry (via SyncRound
        // events); the outcome carries the merged operator attribution.
        FuzzOutcome {
            suite,
            suite_meta,
            lineage: lineage.records().to_vec(),
            provenance,
            violations,
            events,
            executions: prev_execs.iter().sum(),
            iterations: iterations.iter().sum(),
            branch_count: global.total.len(),
            covered_branches: global.total.count(),
            elapsed: started.elapsed(),
            operators: OperatorAttribution::from_counters(&global_stats.operators),
            yields: global_stats.yields.clone(),
        }
    }
}
