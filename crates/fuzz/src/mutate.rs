//! Model input mutation (paper §3.2.1, Table 1).
//!
//! All strategies operate on *tuples* — the per-iteration input records
//! defined by the fuzz driver's [`TupleLayout`] — so structural edits
//! (erase/insert/shuffle/copy/crossover) keep every remaining byte aligned
//! with its inport field. The two value strategies mutate a single field
//! knowing its width and class: integers get sign flips, byte swaps, bit
//! flips, byte sets, small deltas, and re-randomization; floats get
//! format-aware sign/exponent/mantissa edits and special values.
//!
//! Setting [`Mutator::field_aware`] to `false` degrades every strategy to
//! blind byte-stream editing (arbitrary-length erase/insert), reproducing
//! the misalignment failure mode of the paper's "Fuzz Only" baseline.

use cftcg_codegen::TupleLayout;
use cftcg_model::DataType;
use rand::prelude::IndexedRandom;
use rand::rngs::SmallRng;
use rand::Rng;

/// The eight strategies of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationKind {
    /// Modifies a binary integer field within a tuple.
    ChangeBinaryInteger,
    /// Modifies a binary float field, aware of the IEEE-754 layout.
    ChangeBinaryFloat,
    /// Removes a range of tuples.
    EraseTuples,
    /// Inserts a new tuple with a random value.
    InsertTuple,
    /// Inserts a sequence of repeated tuples.
    InsertRepeatedTuples,
    /// Shuffles the order of tuples.
    ShuffleTuples,
    /// Copies tuples into another position.
    CopyTuples,
    /// Combines tuples from two streams.
    TuplesCrossOver,
}

impl MutationKind {
    /// All strategies, in Table 1 order.
    pub const ALL: [MutationKind; 8] = [
        MutationKind::ChangeBinaryInteger,
        MutationKind::ChangeBinaryFloat,
        MutationKind::EraseTuples,
        MutationKind::InsertTuple,
        MutationKind::InsertRepeatedTuples,
        MutationKind::ShuffleTuples,
        MutationKind::CopyTuples,
        MutationKind::TuplesCrossOver,
    ];

    /// The Table 1 spelling of the strategy name (used for telemetry
    /// attribution and reports).
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::ChangeBinaryInteger => "ChangeBinaryInteger",
            MutationKind::ChangeBinaryFloat => "ChangeBinaryFloat",
            MutationKind::EraseTuples => "EraseTuples",
            MutationKind::InsertTuple => "InsertTuple",
            MutationKind::InsertRepeatedTuples => "InsertRepeatedTuples",
            MutationKind::ShuffleTuples => "ShuffleTuples",
            MutationKind::CopyTuples => "CopyTuples",
            MutationKind::TuplesCrossOver => "TuplesCrossOver",
        }
    }

    /// The strategy's index in [`MutationKind::ALL`] (stable attribution
    /// slot for telemetry counters).
    pub fn index(self) -> usize {
        MutationKind::ALL.iter().position(|&k| k == self).expect("kind is in ALL")
    }
}

/// An inclusive numeric range constraint for one inport field — the
/// paper's §5 extension: "we can ask the testers to specify the value
/// ranges for inports before test case generation. Then, during input
/// mutation, we can add constraints based on the specified input ranges."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldRange {
    /// Smallest admissible value.
    pub min: f64,
    /// Largest admissible value.
    pub max: f64,
}

impl FieldRange {
    /// Creates a range; `min` and `max` are swapped if reversed.
    pub fn new(min: f64, max: f64) -> Self {
        if min <= max {
            FieldRange { min, max }
        } else {
            FieldRange { min: max, max: min }
        }
    }

    /// Clamps a value into the range.
    pub fn clamp(self, x: f64) -> f64 {
        if x.is_nan() {
            self.min
        } else {
            x.clamp(self.min, self.max)
        }
    }
}

/// The model input mutator.
#[derive(Debug, Clone)]
pub struct Mutator {
    layout: TupleLayout,
    /// Field-wise, tuple-aligned mutation (CFTCG) vs blind byte editing
    /// (the "Fuzz Only" ablation).
    pub field_aware: bool,
    /// Maximum stream length in tuples after structural mutations.
    pub max_tuples: usize,
    /// Optional per-field value-range constraints (paper §5). Mutated and
    /// freshly generated field values are clamped into their range, so the
    /// random exploration space shrinks to what the tester declared valid.
    ranges: Option<Vec<FieldRange>>,
}

impl Mutator {
    /// Creates a field-aware mutator for a model's tuple layout.
    pub fn new(layout: TupleLayout, max_tuples: usize) -> Self {
        Mutator { layout, field_aware: true, max_tuples, ranges: None }
    }

    /// Installs per-field range constraints (one per inport, in port
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the layout's field count.
    pub fn set_ranges(&mut self, ranges: Vec<FieldRange>) {
        assert_eq!(ranges.len(), self.layout.fields().len(), "one range per field");
        self.ranges = Some(ranges);
    }

    /// A zero tuple clamped into the configured ranges — the padding unit
    /// for structural mutations.
    fn blank_tuple(&self) -> Vec<u8> {
        let mut tuple = vec![0u8; self.layout.tuple_size()];
        self.constrain_tuple(&mut tuple);
        tuple
    }

    /// Clamps the field values of one tuple into the configured ranges.
    fn constrain_tuple(&self, tuple: &mut [u8]) {
        let Some(ranges) = &self.ranges else { return };
        for (i, (field, range)) in self.layout.fields().iter().zip(ranges).enumerate() {
            let r = self.layout.field_range(i);
            let v = cftcg_model::Value::from_le_bytes(&tuple[r.clone()], field.dtype);
            let clamped = range.clamp(v.as_f64());
            if clamped != v.as_f64() || v.as_f64().is_nan() {
                let bytes = cftcg_model::Value::from_f64(clamped, field.dtype).to_le_bytes();
                tuple[r].copy_from_slice(&bytes);
            }
        }
    }

    /// The driving layout.
    pub fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    /// Mutates `data` in place. `other` provides the second stream for
    /// [`MutationKind::TuplesCrossOver`] (ignored by other strategies).
    /// Returns the strategy applied.
    pub fn mutate(
        &self,
        rng: &mut SmallRng,
        data: &mut Vec<u8>,
        other: Option<&[u8]>,
    ) -> MutationKind {
        self.mutate_with_dictionary(rng, data, other, &[])
    }

    /// Like [`Mutator::mutate`], additionally drawing field values from a
    /// `dictionary` of comparison operand *pairs* observed at run time —
    /// LibFuzzer's TORC-based value injection. When one side of a recorded
    /// comparison is found verbatim in a field, it is replaced by the other
    /// side, cracking exact-match guards like `ack_in == seq + 1` in one
    /// step.
    pub fn mutate_with_dictionary(
        &self,
        rng: &mut SmallRng,
        data: &mut Vec<u8>,
        other: Option<&[u8]>,
        dictionary: &[(f64, f64)],
    ) -> MutationKind {
        if !self.field_aware {
            return self.mutate_blind(rng, data, other);
        }
        // Value mutations are weighted above structural ones, matching the
        // balance of LibFuzzer's default mutator mix.
        const WEIGHTED: [MutationKind; 13] = [
            MutationKind::ChangeBinaryInteger,
            MutationKind::ChangeBinaryInteger,
            MutationKind::ChangeBinaryInteger,
            MutationKind::ChangeBinaryFloat,
            MutationKind::ChangeBinaryFloat,
            MutationKind::EraseTuples,
            MutationKind::InsertTuple,
            MutationKind::InsertRepeatedTuples,
            MutationKind::InsertRepeatedTuples,
            MutationKind::ShuffleTuples,
            MutationKind::CopyTuples,
            MutationKind::TuplesCrossOver,
            MutationKind::TuplesCrossOver,
        ];
        let kind = *WEIGHTED.choose(rng).expect("non-empty strategy table");
        self.apply_with_dictionary(kind, rng, data, other, dictionary);
        kind
    }

    /// Applies one specific strategy (used by tests and ablations).
    pub fn apply(
        &self,
        kind: MutationKind,
        rng: &mut SmallRng,
        data: &mut Vec<u8>,
        other: Option<&[u8]>,
    ) {
        self.apply_with_dictionary(kind, rng, data, other, &[]);
    }

    /// [`Mutator::apply`] with a runtime comparison-operand dictionary.
    pub fn apply_with_dictionary(
        &self,
        kind: MutationKind,
        rng: &mut SmallRng,
        data: &mut Vec<u8>,
        other: Option<&[u8]>,
        dictionary: &[(f64, f64)],
    ) {
        let tsize = self.layout.tuple_size();
        if tsize == 0 {
            return; // inputless model: nothing to mutate
        }
        // Ensure at least one tuple to work on.
        if data.len() < tsize {
            *data = self.blank_tuple();
        }
        // Truncate any trailing fragment so structural edits stay aligned.
        data.truncate((data.len() / tsize) * tsize);
        let n = data.len() / tsize;
        match kind {
            MutationKind::ChangeBinaryInteger => {
                let fields: Vec<usize> = self
                    .layout
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.dtype.is_float())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&field) = fields.choose(rng) {
                    let t = rng.random_range(0..n);
                    let range = self.layout.field_range(field);
                    let dtype = self.layout.fields()[field].dtype;
                    let bytes = &mut data[t * tsize..][range];
                    if !dictionary.is_empty() && rng.random_bool(0.5) {
                        write_dictionary_value(rng, bytes, dtype, dictionary);
                        self.constrain_tuple(&mut data[t * tsize..(t + 1) * tsize]);
                        if rng.random_bool(0.5) {
                            self.torc_patch(rng, data, dictionary);
                        }
                    } else {
                        mutate_integer(rng, bytes);
                        self.constrain_tuple(&mut data[t * tsize..(t + 1) * tsize]);
                    }
                }
            }
            MutationKind::ChangeBinaryFloat => {
                let fields: Vec<usize> = self
                    .layout
                    .fields()
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.dtype.is_float())
                    .map(|(i, _)| i)
                    .collect();
                if let Some(&field) = fields.choose(rng) {
                    let t = rng.random_range(0..n);
                    let range = self.layout.field_range(field);
                    let dtype = self.layout.fields()[field].dtype;
                    let bytes = &mut data[t * tsize..][range];
                    if !dictionary.is_empty() && rng.random_bool(0.3) {
                        write_dictionary_value(rng, bytes, dtype, dictionary);
                    } else {
                        mutate_float(rng, bytes, dtype);
                    }
                    self.constrain_tuple(&mut data[t * tsize..(t + 1) * tsize]);
                } else {
                    // No float inports: fall back to an integer edit.
                    self.apply_with_dictionary(
                        MutationKind::ChangeBinaryInteger,
                        rng,
                        data,
                        other,
                        dictionary,
                    );
                }
            }
            MutationKind::EraseTuples => {
                if n > 1 {
                    let start = rng.random_range(0..n);
                    let len = rng.random_range(1..=(n - start).min(4));
                    data.drain(start * tsize..(start + len) * tsize);
                    if data.is_empty() {
                        *data = self.blank_tuple();
                    }
                }
            }
            MutationKind::InsertTuple => {
                if n < self.max_tuples {
                    let at = rng.random_range(0..=n);
                    let tuple = self.random_tuple(rng);
                    splice_in(data, at * tsize, &tuple);
                }
            }
            MutationKind::InsertRepeatedTuples => {
                if n < self.max_tuples {
                    let at = rng.random_range(0..=n);
                    let count =
                        rng.random_range(2..=24usize).min(self.max_tuples.saturating_sub(n).max(1));
                    // Repeat either an existing tuple or a random one —
                    // repeated tuples drive state machines forward.
                    let tuple = if n > 0 && rng.random_bool(0.7) {
                        let t = rng.random_range(0..n);
                        data[t * tsize..(t + 1) * tsize].to_vec()
                    } else {
                        self.random_tuple(rng)
                    };
                    let mut block = Vec::with_capacity(count * tsize);
                    for _ in 0..count {
                        block.extend_from_slice(&tuple);
                    }
                    splice_in(data, at * tsize, &block);
                }
            }
            MutationKind::ShuffleTuples => {
                if n > 1 {
                    let start = rng.random_range(0..n - 1);
                    let len = rng.random_range(2..=(n - start).min(6));
                    // Fisher–Yates over whole tuples.
                    for i in (1..len).rev() {
                        let j = rng.random_range(0..=i);
                        swap_tuples(data, tsize, start + i, start + j);
                    }
                }
            }
            MutationKind::CopyTuples => {
                if n > 1 {
                    let src = rng.random_range(0..n);
                    let len = rng.random_range(1..=(n - src).min(4));
                    let dst = rng.random_range(0..=n - len);
                    let block = data[src * tsize..(src + len) * tsize].to_vec();
                    data[dst * tsize..(dst + len) * tsize].copy_from_slice(&block);
                }
            }
            MutationKind::TuplesCrossOver => {
                if let Some(other) = other {
                    let m = other.len() / tsize;
                    if m > 0 {
                        let keep = rng.random_range(0..=n);
                        let take = rng.random_range(0..=m);
                        data.truncate(keep * tsize);
                        data.extend_from_slice(&other[..take * tsize]);
                        if data.is_empty() {
                            *data = self.blank_tuple();
                        }
                        let cap = self.max_tuples * tsize;
                        data.truncate(cap.max(tsize));
                    }
                }
            }
        }
    }

    /// Generates one random tuple (every field randomized within its type).
    pub fn random_tuple(&self, rng: &mut SmallRng) -> Vec<u8> {
        let mut tuple = vec![0u8; self.layout.tuple_size()];
        rng.fill(tuple.as_mut_slice());
        // Bias booleans towards valid 0/1 encodings.
        for (i, field) in self.layout.fields().iter().enumerate() {
            if field.dtype == DataType::Bool && rng.random_bool(0.8) {
                let range = self.layout.field_range(i);
                tuple[range.start] = u8::from(rng.random_bool(0.5));
            }
        }
        self.constrain_tuple(&mut tuple);
        tuple
    }

    /// LibFuzzer's cmp-guided patch: when one side of a recorded comparison
    /// occurs verbatim as a field value somewhere in the stream, replace it
    /// with the other side (occasionally ±1). This solves equality guards
    /// against run-time-computed values in a single mutation.
    fn torc_patch(&self, rng: &mut SmallRng, data: &mut [u8], dictionary: &[(f64, f64)]) {
        let tsize = self.layout.tuple_size();
        if tsize == 0 || data.len() < tsize || dictionary.is_empty() {
            return;
        }
        let &(a, b) = dictionary.choose(rng).expect("non-empty dictionary");
        let n = data.len() / tsize;
        // Scan for either operand; patch the first match found starting
        // from a random position so repeated calls spread across the input.
        let start = rng.random_range(0..n);
        for k in 0..n {
            let t = (start + k) % n;
            for (fi, field) in self.layout.fields().iter().enumerate() {
                let r = self.layout.field_range(fi);
                let tuple = &mut data[t * tsize..(t + 1) * tsize];
                let current =
                    cftcg_model::Value::from_le_bytes(&tuple[r.clone()], field.dtype).as_f64();
                let replacement = if current == a {
                    b
                } else if current == b {
                    a
                } else {
                    continue;
                };
                let mut v = replacement;
                match rng.random_range(0..3u8) {
                    0 => v += 1.0,
                    1 => v -= 1.0,
                    _ => {}
                }
                let value = cftcg_model::Value::from_f64(v, field.dtype);
                tuple[r].copy_from_slice(&value.to_le_bytes());
                self.constrain_tuple(tuple);
                return;
            }
        }
    }

    /// Blind byte-stream mutation (the "Fuzz Only" ablation): LibFuzzer-ish
    /// edits with no knowledge of tuple or field boundaries, so inserts and
    /// erases of arbitrary length shift every following field.
    fn mutate_blind(
        &self,
        rng: &mut SmallRng,
        data: &mut Vec<u8>,
        other: Option<&[u8]>,
    ) -> MutationKind {
        if data.is_empty() {
            data.resize(self.layout.tuple_size().max(1), 0);
        }
        let max_len = (self.max_tuples * self.layout.tuple_size()).max(8);
        let choice = rng.random_range(0..5u8);
        match choice {
            0 => {
                // Flip a random bit.
                let i = rng.random_range(0..data.len());
                data[i] ^= 1 << rng.random_range(0..8u8);
                MutationKind::ChangeBinaryInteger
            }
            1 => {
                // Overwrite a random byte.
                let i = rng.random_range(0..data.len());
                data[i] = rng.random();
                MutationKind::ChangeBinaryInteger
            }
            2 => {
                // Erase a random byte range (misaligns following fields).
                if data.len() > 1 {
                    let start = rng.random_range(0..data.len() - 1);
                    let len = rng.random_range(1..=(data.len() - start).min(9));
                    data.drain(start..start + len);
                }
                MutationKind::EraseTuples
            }
            3 => {
                // Insert random bytes (misaligns following fields).
                if data.len() < max_len {
                    let at = rng.random_range(0..=data.len());
                    let len = rng.random_range(1..=9usize);
                    let bytes: Vec<u8> = (0..len).map(|_| rng.random()).collect();
                    splice_in(data, at, &bytes);
                }
                MutationKind::InsertTuple
            }
            _ => {
                // Byte-level crossover.
                if let Some(other) = other {
                    if !other.is_empty() {
                        let keep = rng.random_range(0..=data.len());
                        let take = rng.random_range(0..=other.len());
                        data.truncate(keep);
                        data.extend_from_slice(&other[..take]);
                        data.truncate(max_len);
                        if data.is_empty() {
                            data.push(0);
                        }
                    }
                }
                MutationKind::TuplesCrossOver
            }
        }
    }
}

fn splice_in(data: &mut Vec<u8>, at: usize, block: &[u8]) {
    let tail = data.split_off(at);
    data.extend_from_slice(block);
    data.extend_from_slice(&tail);
}

fn swap_tuples(data: &mut [u8], tsize: usize, a: usize, b: usize) {
    if a == b {
        return;
    }
    let (a, b) = (a.min(b), a.max(b));
    let (head, tail) = data.split_at_mut(b * tsize);
    head[a * tsize..(a + 1) * tsize].swap_with_slice(&mut tail[..tsize]);
}

/// The integer sub-strategies the paper lists: "changing the sign bit, byte
/// swapping, bit flipping, byte modification, adding or subtracting values,
/// and random changes".
/// Writes a dictionary (TORC) operand into a field, with an occasional ±1
/// jitter so strict and non-strict comparison boundaries both get hit.
fn write_dictionary_value(
    rng: &mut SmallRng,
    bytes: &mut [u8],
    dtype: DataType,
    dictionary: &[(f64, f64)],
) {
    let &(a, b) = dictionary.choose(rng).expect("non-empty dictionary");
    let mut v = if rng.random_bool(0.5) { a } else { b };
    match rng.random_range(0..3u8) {
        0 => v += 1.0,
        1 => v -= 1.0,
        _ => {}
    }
    let value = cftcg_model::Value::from_f64(v, dtype);
    bytes.copy_from_slice(&value.to_le_bytes());
}

/// LibFuzzer-style interesting integer constants (the base framework
/// injects these alongside bit-level edits; boundary values crack
/// comparison windows that uniform randomness almost never hits).
const INTERESTING: [i64; 22] = [
    0, 1, 2, 3, 4, 8, 10, 16, 32, 64, 100, 127, 128, 255, 256, 512, 1000, 1024, 4096, 32767, 65535,
    1_000_000,
];

fn mutate_integer(rng: &mut SmallRng, bytes: &mut [u8]) {
    match rng.random_range(0..7u8) {
        0 => {
            // Sign bit (most significant bit of the little-endian value).
            let last = bytes.len() - 1;
            bytes[last] ^= 0x80;
        }
        1 => {
            // Byte swap.
            if bytes.len() > 1 {
                let i = rng.random_range(0..bytes.len());
                let j = rng.random_range(0..bytes.len());
                bytes.swap(i, j);
            } else {
                bytes[0] = bytes[0].swap_bytes(); // no-op width: flip nibbles instead
            }
        }
        2 => {
            // Bit flip.
            let i = rng.random_range(0..bytes.len());
            bytes[i] ^= 1 << rng.random_range(0..8u8);
        }
        3 => {
            // Byte modification.
            let i = rng.random_range(0..bytes.len());
            bytes[i] = rng.random();
        }
        4 => {
            // Add or subtract a small value on the full little-endian word.
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            let v = u64::from_le_bytes(word);
            let delta = rng.random_range(1..=16u64);
            let v =
                if rng.random_bool(0.5) { v.wrapping_add(delta) } else { v.wrapping_sub(delta) };
            bytes.copy_from_slice(&v.to_le_bytes()[..bytes.len()]);
        }
        5 => {
            // Interesting constant, optionally negated.
            let mut v = *INTERESTING.choose(rng).expect("non-empty");
            if rng.random_bool(0.3) {
                v = -v;
            }
            bytes.copy_from_slice(&v.to_le_bytes()[..bytes.len()]);
        }
        _ => {
            // Random change.
            rng.fill(bytes);
        }
    }
}

/// Format-aware float mutation: sign / exponent / mantissa edits plus
/// interesting constants.
fn mutate_float(rng: &mut SmallRng, bytes: &mut [u8], dtype: DataType) {
    const SPECIALS: [f64; 9] = [0.0, -0.0, 1.0, -1.0, 0.5, 1e6, -1e6, f64::INFINITY, f64::NAN];
    match rng.random_range(0..4u8) {
        0 => {
            // Sign bit.
            let last = bytes.len() - 1;
            bytes[last] ^= 0x80;
        }
        1 => {
            // Exponent nudge: multiply/divide by a power of two.
            let factor = [0.5, 2.0, 4.0, 0.25].choose(rng).copied().expect("non-empty");
            scale_float(bytes, dtype, factor);
        }
        2 => {
            // Mantissa bit flip (low-order bytes).
            let i = rng.random_range(0..bytes.len().max(2) - 1);
            bytes[i] ^= 1 << rng.random_range(0..8u8);
        }
        _ => {
            // Special value.
            let v = *SPECIALS.choose(rng).expect("non-empty");
            write_float(bytes, dtype, v);
        }
    }
}

fn scale_float(bytes: &mut [u8], dtype: DataType, factor: f64) {
    match dtype {
        DataType::F32 => {
            let v = f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            bytes.copy_from_slice(&(v * factor as f32).to_le_bytes());
        }
        _ => {
            let mut word = [0u8; 8];
            word.copy_from_slice(bytes);
            let v = f64::from_le_bytes(word);
            bytes.copy_from_slice(&(v * factor).to_le_bytes());
        }
    }
}

fn write_float(bytes: &mut [u8], dtype: DataType, v: f64) {
    match dtype {
        DataType::F32 => bytes.copy_from_slice(&(v as f32).to_le_bytes()),
        _ => bytes.copy_from_slice(&v.to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, ModelBuilder};
    use rand::SeedableRng;

    fn layout() -> TupleLayout {
        // Mirrors the SolarPV driver: int8 + int32 + int32 (9 bytes), plus a
        // double field to exercise float mutation (17 bytes total).
        let mut b = ModelBuilder::new("m");
        let e = b.inport("Enable", DataType::I8);
        let p = b.inport("Power", DataType::I32);
        let id = b.inport("PanelID", DataType::I32);
        let lvl = b.inport("Level", DataType::F64);
        for (i, u) in [e, p, id, lvl].into_iter().enumerate() {
            let t = b.add(format!("t{i}"), BlockKind::Terminator);
            b.wire(u, t);
        }
        TupleLayout::for_model(&b.finish().unwrap())
    }

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn field_aware_mutations_preserve_tuple_alignment() {
        let m = Mutator::new(layout(), 32);
        let tsize = m.layout().tuple_size();
        let mut r = rng(1);
        let mut data = vec![0u8; tsize * 4];
        let other = vec![7u8; tsize * 3];
        for _ in 0..2_000 {
            m.mutate(&mut r, &mut data, Some(&other));
            assert_eq!(data.len() % tsize, 0, "tuple alignment broken: {} bytes", data.len());
            assert!(!data.is_empty());
            assert!(data.len() <= (32 + 8) * tsize);
        }
    }

    #[test]
    fn every_strategy_applies_cleanly() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(2);
        for kind in MutationKind::ALL {
            let mut data = vec![1u8; tsize * 3];
            let other = vec![9u8; tsize * 2];
            m.apply(kind, &mut r, &mut data, Some(&other));
            assert_eq!(data.len() % tsize, 0, "{kind:?} broke alignment");
        }
    }

    #[test]
    fn integer_mutation_changes_only_target_field() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(3);
        for _ in 0..200 {
            let mut data = vec![0u8; tsize * 2];
            m.apply(MutationKind::ChangeBinaryInteger, &mut r, &mut data, None);
            // Count which fields changed; must be at most one field in one
            // tuple (integer fields only: offsets 0..9).
            let mut touched_fields = 0;
            for t in 0..2 {
                for field in 0..m.layout().fields().len() {
                    let range = m.layout().field_range(field);
                    let slice = &data[t * tsize + range.start..t * tsize + range.end];
                    if slice.iter().any(|&b| b != 0) {
                        touched_fields += 1;
                        assert!(
                            !m.layout().fields()[field].dtype.is_float(),
                            "integer strategy touched a float field"
                        );
                    }
                }
            }
            assert!(touched_fields <= 1);
        }
    }

    #[test]
    fn float_mutation_targets_float_fields() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(4);
        let mut any_changed = false;
        for _ in 0..100 {
            let mut data = vec![0u8; tsize];
            m.apply(MutationKind::ChangeBinaryFloat, &mut r, &mut data, None);
            let float_range = m.layout().field_range(3);
            let int_part = &data[..float_range.start];
            assert!(int_part.iter().all(|&b| b == 0), "float strategy touched ints");
            if data[float_range].iter().any(|&b| b != 0) {
                any_changed = true;
            }
        }
        assert!(any_changed, "float mutation never changed anything");
    }

    #[test]
    fn erase_never_leaves_empty_stream() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(5);
        let mut data = vec![0u8; tsize];
        for _ in 0..50 {
            m.apply(MutationKind::EraseTuples, &mut r, &mut data, None);
            assert!(data.len() >= tsize);
        }
    }

    #[test]
    fn crossover_combines_two_streams() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(6);
        let other = vec![0xAB; tsize * 4];
        let mut saw_other_bytes = false;
        for _ in 0..100 {
            let mut data = vec![0x11; tsize * 4];
            m.apply(MutationKind::TuplesCrossOver, &mut r, &mut data, Some(&other));
            assert_eq!(data.len() % tsize, 0);
            if data.contains(&0xAB) {
                saw_other_bytes = true;
            }
        }
        assert!(saw_other_bytes);
    }

    #[test]
    fn blind_mode_misaligns_fields() {
        let mut m = Mutator::new(layout(), 16);
        m.field_aware = false;
        let tsize = m.layout().tuple_size();
        let mut r = rng(7);
        let mut data = vec![0u8; tsize * 4];
        let mut misaligned = false;
        for _ in 0..500 {
            m.mutate(&mut r, &mut data, None);
            if !data.len().is_multiple_of(tsize) {
                misaligned = true;
            }
        }
        assert!(misaligned, "blind mutation should break tuple alignment");
    }

    #[test]
    fn shuffle_preserves_multiset_of_tuples() {
        let m = Mutator::new(layout(), 16);
        let tsize = m.layout().tuple_size();
        let mut r = rng(8);
        let mut data = Vec::new();
        for t in 0..5u8 {
            let mut tuple = vec![t; tsize];
            tuple[0] = t;
            data.extend_from_slice(&tuple);
        }
        let mut before: Vec<Vec<u8>> = data.chunks(tsize).map(<[u8]>::to_vec).collect();
        m.apply(MutationKind::ShuffleTuples, &mut r, &mut data, None);
        let mut after: Vec<Vec<u8>> = data.chunks(tsize).map(<[u8]>::to_vec).collect();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn random_tuple_has_layout_size() {
        let m = Mutator::new(layout(), 16);
        let mut r = rng(9);
        assert_eq!(m.random_tuple(&mut r).len(), m.layout().tuple_size());
    }

    #[test]
    fn range_constraints_hold_under_all_value_mutations() {
        let mut m = Mutator::new(layout(), 16);
        m.set_ranges(vec![
            FieldRange::new(-5.0, 5.0),   // Enable i8
            FieldRange::new(0.0, 5000.0), // Power i32
            FieldRange::new(1.0, 4.0),    // PanelID i32
            FieldRange::new(-1.0, 1.0),   // Level f64
        ]);
        let tsize = m.layout().tuple_size();
        let mut r = rng(20);
        let mut data = m.random_tuple(&mut r);
        data.extend(m.random_tuple(&mut r));
        for _ in 0..3_000 {
            let kind = if r.random_bool(0.5) {
                MutationKind::ChangeBinaryInteger
            } else {
                MutationKind::ChangeBinaryFloat
            };
            m.apply(kind, &mut r, &mut data, None);
            for tuple in data.chunks(tsize) {
                let values = m.layout().decode(tuple);
                assert!((-5.0..=5.0).contains(&values[0].as_f64()), "{values:?}");
                assert!((0.0..=5000.0).contains(&values[1].as_f64()), "{values:?}");
                assert!((1.0..=4.0).contains(&values[2].as_f64()), "{values:?}");
                let lvl = values[3].as_f64();
                assert!((-1.0..=1.0).contains(&lvl), "{values:?}");
            }
        }
    }

    #[test]
    fn range_constraints_hold_under_structural_mutations() {
        let mut m = Mutator::new(layout(), 16);
        m.set_ranges(vec![
            FieldRange::new(0.0, 1.0),
            FieldRange::new(100.0, 200.0),
            FieldRange::new(1.0, 4.0),
            FieldRange::new(0.0, 0.5),
        ]);
        let tsize = m.layout().tuple_size();
        let mut r = rng(21);
        let mut data = m.random_tuple(&mut r);
        let other = {
            let mut o = m.random_tuple(&mut r);
            o.extend(m.random_tuple(&mut r));
            o
        };
        for _ in 0..2_000 {
            m.mutate(&mut r, &mut data, Some(&other));
            for tuple in data.chunks(tsize) {
                let values = m.layout().decode(tuple);
                assert!((100.0..=200.0).contains(&values[1].as_f64()), "{values:?}");
            }
        }
    }

    #[test]
    fn field_range_normalizes_and_clamps() {
        let r = FieldRange::new(5.0, -5.0);
        assert_eq!(r.min, -5.0);
        assert_eq!(r.max, 5.0);
        assert_eq!(r.clamp(100.0), 5.0);
        assert_eq!(r.clamp(f64::NAN), -5.0);
        assert_eq!(r.clamp(0.5), 0.5);
    }

    #[test]
    fn inputless_model_mutation_is_noop() {
        let mut b = ModelBuilder::new("none");
        let c = b.constant("c", 1.0);
        let y = b.outport("y");
        b.wire(c, y);
        let m = Mutator::new(TupleLayout::for_model(&b.finish().unwrap()), 16);
        let mut r = rng(10);
        let mut data = vec![1, 2, 3];
        m.apply(MutationKind::InsertTuple, &mut r, &mut data, None);
        assert_eq!(data, vec![1, 2, 3]);
    }
}
