#![warn(missing_docs)]

//! The **Model Oriented Fuzzing Loop** of CFTCG (paper Section 3.2).
//!
//! The paper builds its fuzzer on LibFuzzer; this reproduction implements
//! the whole in-process loop so the model-oriented pieces run exactly as
//! described:
//!
//! * **Model input mutation** (§3.2.1, Table 1, Figure 5) — eight
//!   tuple-aware strategies in [`Mutator`]. A *tuple* is one model
//!   iteration's worth of input bytes; field boundaries come from the fuzz
//!   driver's [`TupleLayout`](cftcg_codegen::TupleLayout), so structural
//!   mutations never misalign the remaining data.
//! * **Model coverage collection** (§3.2.2, Algorithm 1, Figure 6) — the
//!   per-iteration branch bitmap, total-coverage tracking, test-case output
//!   on new coverage, and the *Iteration Difference Coverage* metric that
//!   prioritizes corpus entries whose executions keep visiting different
//!   branches across iterations.
//!
//! [`Fuzzer`] drives a compiled model ([`cftcg_codegen::Executor`]) under a
//! wall-clock or execution budget and produces a [`FuzzOutcome`]: the
//! emitted test suite, timestamped coverage events (for the paper's
//! Figure 7 curves), and throughput counters.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_codegen::compile;
//! use cftcg_fuzz::{FuzzConfig, Fuzzer};
//! use cftcg_model::{BlockKind, DataType, ModelBuilder};
//!
//! let mut b = ModelBuilder::new("m");
//! let u = b.inport("u", DataType::I16);
//! let sat = b.add("sat", BlockKind::Saturation { lower: -100.0, upper: 100.0 });
//! let y = b.outport("y");
//! b.wire(u, sat);
//! b.wire(sat, y);
//! let compiled = compile(&b.finish()?)?;
//!
//! let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 7, ..FuzzConfig::default() });
//! let outcome = fuzzer.run_executions(2_000);
//! assert_eq!(outcome.branch_coverage().percent(), 100.0);
//! assert!(!outcome.suite.is_empty());
//! # Ok(())
//! # }
//! ```

mod corpus;
mod fuzzer;
mod generation;
mod lineage;
mod minimize;
mod mutate;
mod parallel;
mod plateau;

pub use corpus::{Corpus, CorpusEntry, CorpusInsertion};
pub use fuzzer::{
    CaseMeta, CoverageEvent, FeedbackMode, FuzzConfig, FuzzOutcome, Fuzzer, OperatorAttribution,
    TraceHook,
};
pub use generation::{coverage_series, Generation};
pub use lineage::{format_chain, Lineage, LineageOrigin, LineageRecord, SHARD_ID_STRIDE};
pub use minimize::{minimize_case, minimize_suite};
pub use mutate::{FieldRange, MutationKind, Mutator};
pub use parallel::{ParallelFuzzConfig, ParallelFuzzer};
pub use plateau::PlateauDetector;
