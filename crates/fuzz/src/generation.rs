//! The generator-agnostic outcome type shared by every test-case generator
//! in this reproduction (CFTCG itself and all baselines), plus the replay
//! helper that turns a suite into the coverage-vs-time curve of the paper's
//! Figure 7.

use std::time::Duration;

use cftcg_codegen::{CompiledModel, Executor, TestCase};
use cftcg_coverage::{BranchBitmap, ProvenanceTracker};

use crate::fuzzer::CaseMeta;
use crate::lineage::LineageRecord;

/// The output of one generator run.
#[derive(Debug, Clone, Default)]
pub struct Generation {
    /// Emitted test cases, in emission order.
    pub suite: Vec<TestCase>,
    /// Emission timestamp of each case (same length as `suite`).
    pub case_times: Vec<Duration>,
    /// Forensic metadata per suite entry (empty for generators that do not
    /// track it; same length and order as `suite` otherwise).
    pub suite_meta: Vec<CaseMeta>,
    /// Input lineage records, in mint order (empty for non-fuzzing
    /// generators, whose cases have no mutation ancestry).
    pub lineage: Vec<LineageRecord>,
    /// Per-goal first-hit provenance (`None` for generators that do not
    /// track it).
    pub provenance: Option<ProvenanceTracker>,
    /// Test inputs executed (or solver probes performed).
    pub executions: u64,
    /// Model iterations executed across all inputs.
    pub iterations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Tool-specific diagnostics (e.g. "state explosion at depth 4").
    pub notes: String,
    /// Assertion violations discovered: `(assertion index, witness input)`.
    pub violations: Vec<(usize, TestCase)>,
    /// Per-mutation-operator attribution (empty for non-fuzzing
    /// generators, which apply no mutation operators).
    pub operators: Vec<crate::OperatorAttribution>,
    /// Per-operator × outcome yield matrix (empty for non-fuzzing
    /// generators; Table 1 order for fuzzing runs).
    pub yields: cftcg_telemetry::YieldMatrix,
}

impl Generation {
    /// Model iterations per second achieved by the generator's engine.
    /// Zero when no time has elapsed (see
    /// [`FuzzOutcome::iterations_per_second`](crate::FuzzOutcome::iterations_per_second)).
    pub fn iterations_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.iterations as f64 / secs
        }
    }

    /// The yield matrix as telemetry report rows (Table 1 order; empty for
    /// generators that recorded no yields).
    pub fn yield_reports(&self) -> Vec<cftcg_telemetry::YieldReport> {
        if self.yields.is_empty() {
            return Vec::new();
        }
        use cftcg_telemetry::YieldOutcome;
        crate::MutationKind::ALL
            .iter()
            .map(|k| cftcg_telemetry::YieldReport {
                name: k.name().to_string(),
                executed: self.yields.get(k.index(), YieldOutcome::Executed),
                new_coverage: self.yields.get(k.index(), YieldOutcome::NewCoverage),
                corpus_insert: self.yields.get(k.index(), YieldOutcome::CorpusInsert),
                violation: self.yields.get(k.index(), YieldOutcome::Violation),
            })
            .collect()
    }
}

impl From<crate::FuzzOutcome> for Generation {
    fn from(outcome: crate::FuzzOutcome) -> Self {
        Generation {
            case_times: outcome.events.iter().map(|e| e.elapsed).collect(),
            suite: outcome.suite,
            suite_meta: outcome.suite_meta,
            lineage: outcome.lineage,
            provenance: Some(outcome.provenance),
            executions: outcome.executions,
            iterations: outcome.iterations,
            elapsed: outcome.elapsed,
            notes: String::new(),
            violations: outcome.violations,
            operators: outcome.operators,
            yields: outcome.yields,
        }
    }
}

/// Replays a generation's suite in emission order and returns the
/// branch-coverage growth curve `(elapsed, covered branches)` — the data
/// behind the paper's Figure 7. The curve ends with a final point at
/// `generation.elapsed`.
pub fn coverage_series(
    compiled: &CompiledModel,
    generation: &Generation,
) -> Vec<(Duration, usize)> {
    let mut exec = Executor::new(compiled);
    let mut total = BranchBitmap::new(compiled.map().branch_count());
    let mut curr = BranchBitmap::new(compiled.map().branch_count());
    let mut series = Vec::new();
    let mut covered = 0;
    for (case, &at) in generation.suite.iter().zip(&generation.case_times) {
        exec.reset();
        let layout = compiled.layout().clone();
        for tuple in layout.split(&case.bytes) {
            curr.clear();
            exec.step_tuple(tuple, &mut curr);
            covered += curr.merge_into(&mut total);
        }
        if series.last().map(|&(_, c)| c) != Some(covered) {
            series.push((at, covered));
        }
    }
    series.push((generation.elapsed, covered));
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_generation_series_is_flat() {
        use cftcg_model::{BlockKind, DataType, ModelBuilder};
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::U8);
        let sat = b.add("s", BlockKind::Saturation { lower: 1.0, upper: 2.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        let compiled = cftcg_codegen::compile(&b.finish().unwrap()).unwrap();
        let generation = Generation { elapsed: Duration::from_secs(1), ..Default::default() };
        let series = coverage_series(&compiled, &generation);
        assert_eq!(series, vec![(Duration::from_secs(1), 0)]);
    }

    #[test]
    fn fuzz_outcome_converts() {
        use cftcg_model::{BlockKind, DataType, ModelBuilder};
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::U8);
        let sat = b.add("s", BlockKind::Saturation { lower: 10.0, upper: 20.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        let compiled = cftcg_codegen::compile(&b.finish().unwrap()).unwrap();
        let mut fuzzer = crate::Fuzzer::new(&compiled, crate::FuzzConfig::default());
        let outcome = fuzzer.run_executions(500);
        let generation: Generation = outcome.clone().into();
        assert_eq!(generation.suite.len(), outcome.suite.len());
        assert_eq!(generation.case_times.len(), generation.suite.len());
        let series = coverage_series(&compiled, &generation);
        assert_eq!(series.last().unwrap().1, outcome.covered_branches);
    }
}
