//! The fuzzing corpus: interesting inputs retained for further mutation.
//!
//! The paper (§3.2.2): "input data that achieves specific coverage metrics
//! will be saved as interesting inputs in the corpus for the next round of
//! mutation" and "when saving interesting inputs, we prioritize those with
//! higher Iteration Difference Coverage". Entries therefore carry the
//! metric, and seed selection is energy-weighted by it (switchable for the
//! ablation study).
//!
//! Besides the entries themselves the corpus keeps per-entry *scheduling
//! forensics* — how often a seed was selected as a mutation base, how many
//! of its mutants were committed, the goal yield of its descendant
//! subtree, and its age — published to telemetry as
//! [`CorpusSeedReport`] rows. The accounting is plain integer bookkeeping
//! (no RNG, no clock), so it runs unconditionally without perturbing the
//! byte-identity contract.

use std::collections::HashMap;

use cftcg_telemetry::CorpusSeedReport;
use rand::rngs::SmallRng;
use rand::Rng;

/// One retained input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Stable lineage id of the input (shard-strided; see
    /// [`Lineage`](crate::Lineage)). Broadcast entries keep the id their
    /// originating shard minted.
    pub id: u64,
    /// The raw byte stream.
    pub bytes: Vec<u8>,
    /// Its Iteration Difference Coverage metric when executed.
    pub metric: usize,
    /// How many branches were newly covered when it was added.
    pub new_branches: usize,
}

/// What [`Corpus::insert`] did with the offered entry — the corpus-churn
/// signal the telemetry layer counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusInsertion {
    /// Stored in a free slot (corpus grew).
    Appended,
    /// Stored by evicting a retained entry (corpus churned).
    Replaced,
    /// Dropped: it did not beat the worst retained entry.
    Rejected,
}

/// Per-entry scheduling forensics, keyed by entry id. Lives and dies with
/// the entry: eviction drops the account.
#[derive(Debug, Clone, Default)]
struct SeedAccount {
    /// Parent entry the input was mutated from, for descendant crediting.
    parent: Option<u64>,
    /// Shard executions completed when the entry was committed.
    born_executions: u64,
    /// Times picked as a mutation base.
    selections: u64,
    /// Direct children committed (to the corpus or the suite).
    children: u64,
    /// New branches earned by the entry's descendants (transitive, while
    /// the ancestry chain remains resident).
    descendant_goals: u64,
}

/// A bounded corpus with metric-weighted seed selection.
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    capacity: usize,
    /// When `false`, selection is uniform and replacement FIFO — the
    /// "no iteration-difference priority" ablation (A1).
    pub metric_weighted: bool,
    /// Scheduling forensics per resident entry id.
    accounts: HashMap<u64, SeedAccount>,
}

/// The selection energy of an entry: the iteration-difference metric with a
/// strong bonus for inputs that discovered new branches (they sit at the
/// coverage frontier). Saturating throughout — a pathological
/// `metric`/`new_branches` pair must skew the lottery, not overflow it.
fn energy(entry: &CorpusEntry) -> u64 {
    (entry.metric as u64)
        .saturating_add(1)
        .saturating_mul(1u64.saturating_add((entry.new_branches as u64).saturating_mul(8)))
}

impl Corpus {
    /// Creates an empty corpus holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Corpus {
            entries: Vec::new(),
            capacity: capacity.max(1),
            metric_weighted: true,
            accounts: HashMap::new(),
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained entries.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Inserts an interesting input. When full, evicts the lowest-metric
    /// entry (metric-weighted mode) or the oldest (FIFO mode) — but only if
    /// the newcomer beats it. Returns what happened, for churn accounting.
    pub fn insert(&mut self, entry: CorpusEntry) -> CorpusInsertion {
        if self.entries.len() < self.capacity {
            self.accounts.entry(entry.id).or_default();
            self.entries.push(entry);
            return CorpusInsertion::Appended;
        }
        if self.metric_weighted {
            // Evict among non-finders first: inputs that discovered new
            // branches are the coverage frontier and must survive the flood
            // of high-metric-but-stale mutants.
            let (worst, worst_entry) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(_, e)| (e.new_branches, e.metric))
                .expect("corpus is non-empty at capacity");
            let beats_worst =
                (entry.new_branches, entry.metric) > (worst_entry.new_branches, worst_entry.metric);
            if beats_worst {
                self.accounts.remove(&self.entries[worst].id);
                self.accounts.entry(entry.id).or_default();
                self.entries[worst] = entry;
                CorpusInsertion::Replaced
            } else {
                CorpusInsertion::Rejected
            }
        } else {
            let evicted = self.entries.remove(0);
            self.accounts.remove(&evicted.id);
            self.accounts.entry(entry.id).or_default();
            self.entries.push(entry);
            CorpusInsertion::Replaced
        }
    }

    /// Picks a seed for the next mutation round, bumping its selection
    /// count. In weighted mode the energy combines the iteration-difference
    /// metric with a strong bonus for inputs that discovered new branches;
    /// uniform otherwise. Returns `None` on an empty corpus.
    pub fn pick(&mut self, rng: &mut SmallRng) -> Option<&CorpusEntry> {
        let index = self.pick_index(rng)?;
        let id = self.entries[index].id;
        if let Some(account) = self.accounts.get_mut(&id) {
            account.selections += 1;
        }
        Some(&self.entries[index])
    }

    /// The selection lottery itself (no accounting side effects). Exactly
    /// one `rng.random_range` draw per call on a non-empty corpus, so the
    /// RNG stream is independent of the accounting layer.
    fn pick_index(&self, rng: &mut SmallRng) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        if !self.metric_weighted {
            return Some(rng.random_range(0..self.entries.len()));
        }
        let total = self.entries.iter().map(energy).fold(0u64, u64::saturating_add);
        let mut ticket = rng.random_range(0..total);
        for (i, entry) in self.entries.iter().enumerate() {
            let e = energy(entry);
            if ticket < e {
                return Some(i);
            }
            ticket -= e;
        }
        // Reachable only when the total saturated (per-entry energies sum
        // past u64::MAX): fall back to the last entry deterministically.
        Some(self.entries.len() - 1)
    }

    /// Picks a second, independent entry for crossover.
    pub fn pick_other(&mut self, rng: &mut SmallRng) -> Option<&CorpusEntry> {
        self.pick(rng)
    }

    /// Reverses one [`Corpus::pick`]'s selection bump for `id`. The batched
    /// fuzz loop pre-selects seeds for a whole batch of children; when the
    /// tail of a batch is abandoned (a committed lane changed the corpus or
    /// the TORC dictionary), the abandoned children's selections never
    /// happened and must leave no trace in the scheduling forensics.
    pub fn unnote_selection(&mut self, id: u64) {
        if let Some(account) = self.accounts.get_mut(&id) {
            account.selections = account.selections.saturating_sub(1);
        }
    }

    /// Books a freshly committed entry's provenance: the parent it was
    /// mutated from and the shard executions at commit time (its birthday,
    /// for age accounting). No-op if the id is not resident.
    pub fn note_committed(&mut self, id: u64, parent: Option<u64>, executions: u64) {
        if let Some(account) = self.accounts.get_mut(&id) {
            account.parent = parent;
            account.born_executions = executions;
        }
    }

    /// Credits `parent` with one committed child (suite or corpus).
    pub fn credit_child(&mut self, parent: Option<u64>) {
        if let Some(account) = parent.and_then(|id| self.accounts.get_mut(&id)) {
            account.children += 1;
        }
    }

    /// Credits `goals` newly attained branch goals to every resident
    /// ancestor of the discovering input, walking parent links. The walk
    /// stops at the first evicted ancestor and is bounded, so corrupted
    /// links cannot hang it.
    pub fn credit_goals(&mut self, parent: Option<u64>, goals: u64) {
        let mut cursor = parent;
        let mut hops = 0usize;
        while let Some(id) = cursor {
            let Some(account) = self.accounts.get_mut(&id) else { break };
            account.descendant_goals = account.descendant_goals.saturating_add(goals);
            cursor = account.parent;
            hops += 1;
            if hops > self.accounts.len() {
                break;
            }
        }
    }

    /// The per-entry scheduling forensics, in entry order. `executions` is
    /// the shard's current execution count (for age computation).
    pub fn seed_reports(&self, executions: u64) -> Vec<CorpusSeedReport> {
        self.entries
            .iter()
            .map(|entry| {
                let account = self.accounts.get(&entry.id).cloned().unwrap_or_default();
                CorpusSeedReport {
                    id: entry.id,
                    size_bytes: entry.bytes.len() as u64,
                    metric: entry.metric as u64,
                    new_branches: entry.new_branches as u64,
                    energy: energy(entry),
                    selections: account.selections,
                    children: account.children,
                    descendant_goals: account.descendant_goals,
                    age_executions: executions.saturating_sub(account.born_executions),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn entry(metric: usize, tag: u8) -> CorpusEntry {
        CorpusEntry { id: u64::from(tag), bytes: vec![tag], metric, new_branches: 0 }
    }

    #[test]
    fn insert_and_len() {
        let mut c = Corpus::new(4);
        assert!(c.is_empty());
        c.insert(entry(1, 0));
        c.insert(entry(2, 1));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn capacity_eviction_prefers_high_metric() {
        let mut c = Corpus::new(2);
        c.insert(entry(5, 0));
        c.insert(entry(1, 1));
        c.insert(entry(10, 2)); // evicts the metric-1 entry
        let metrics: Vec<usize> = c.entries().iter().map(|e| e.metric).collect();
        assert_eq!(c.len(), 2);
        assert!(metrics.contains(&5) && metrics.contains(&10));
        c.insert(entry(0, 3)); // worse than both and no new coverage: dropped
        let metrics: Vec<usize> = c.entries().iter().map(|e| e.metric).collect();
        assert!(metrics.contains(&5) && metrics.contains(&10));
    }

    #[test]
    fn new_coverage_always_displaces_at_capacity() {
        let mut c = Corpus::new(1);
        c.insert(entry(100, 0));
        c.insert(CorpusEntry { id: 9, bytes: vec![9], metric: 0, new_branches: 3 });
        assert_eq!(c.entries()[0].bytes, vec![9]);
    }

    #[test]
    fn fifo_mode_evicts_oldest() {
        let mut c = Corpus::new(2);
        c.metric_weighted = false;
        c.insert(entry(100, 0));
        c.insert(entry(100, 1));
        c.insert(entry(0, 2));
        let tags: Vec<u8> = c.entries().iter().map(|e| e.bytes[0]).collect();
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn weighted_pick_prefers_high_metric() {
        let mut c = Corpus::new(4);
        c.insert(entry(0, 0));
        c.insert(entry(99, 1));
        let mut rng = SmallRng::seed_from_u64(42);
        let mut high = 0;
        for _ in 0..1000 {
            if c.pick(&mut rng).unwrap().bytes[0] == 1 {
                high += 1;
            }
        }
        assert!(high > 900, "high-metric seed picked only {high}/1000 times");
    }

    #[test]
    fn uniform_pick_in_fifo_mode() {
        let mut c = Corpus::new(4);
        c.metric_weighted = false;
        c.insert(entry(0, 0));
        c.insert(entry(9999, 1));
        let mut rng = SmallRng::seed_from_u64(43);
        let mut high = 0;
        for _ in 0..1000 {
            if c.pick(&mut rng).unwrap().bytes[0] == 1 {
                high += 1;
            }
        }
        assert!((350..650).contains(&high), "uniform pick skewed: {high}/1000");
    }

    #[test]
    fn empty_pick_is_none() {
        let mut c = Corpus::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(c.pick(&mut rng).is_none());
    }

    #[test]
    fn huge_metrics_saturate_instead_of_overflowing() {
        // Entries whose individual energies and whose sum exceed u64::MAX:
        // the lottery must stay total-ordered, never panic, and still
        // return something.
        let mut c = Corpus::new(4);
        for tag in 0..3u8 {
            c.insert(CorpusEntry {
                id: u64::from(tag),
                bytes: vec![tag],
                metric: usize::MAX,
                new_branches: usize::MAX,
            });
        }
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(c.pick(&mut rng).is_some());
        }
        let reports = c.seed_reports(0);
        assert!(reports.iter().all(|r| r.energy == u64::MAX));
    }

    #[test]
    fn accounting_tracks_selections_children_and_goals() {
        let mut c = Corpus::new(8);
        c.insert(entry(3, 1));
        c.note_committed(1, None, 10);
        c.insert(entry(5, 2));
        c.note_committed(2, Some(1), 50);

        let mut rng = SmallRng::seed_from_u64(5);
        let picked = c.pick(&mut rng).unwrap().id;
        c.credit_child(Some(1));
        c.credit_goals(Some(2), 3); // credits 2 and, transitively, 1

        let reports = c.seed_reports(100);
        let by_id = |id: u64| reports.iter().find(|r| r.id == id).unwrap().clone();
        assert_eq!(by_id(picked).selections, 1);
        assert_eq!(by_id(1).children, 1);
        assert_eq!(by_id(2).descendant_goals, 3);
        assert_eq!(by_id(1).descendant_goals, 3, "goals propagate up the chain");
        assert_eq!(by_id(1).age_executions, 90);
        assert_eq!(by_id(2).age_executions, 50);
    }

    #[test]
    fn eviction_drops_the_account() {
        let mut c = Corpus::new(1);
        c.insert(entry(1, 1));
        c.note_committed(1, None, 0);
        c.credit_child(Some(1));
        c.insert(CorpusEntry { id: 2, bytes: vec![2], metric: 0, new_branches: 1 });
        // Entry 1 is gone; crediting it is a no-op and its forensics reset.
        c.credit_child(Some(1));
        let reports = c.seed_reports(0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, 2);
        assert_eq!(reports[0].children, 0);
    }
}
