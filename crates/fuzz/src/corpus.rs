//! The fuzzing corpus: interesting inputs retained for further mutation.
//!
//! The paper (§3.2.2): "input data that achieves specific coverage metrics
//! will be saved as interesting inputs in the corpus for the next round of
//! mutation" and "when saving interesting inputs, we prioritize those with
//! higher Iteration Difference Coverage". Entries therefore carry the
//! metric, and seed selection is energy-weighted by it (switchable for the
//! ablation study).

use rand::rngs::SmallRng;
use rand::Rng;

/// One retained input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Stable lineage id of the input (shard-strided; see
    /// [`Lineage`](crate::Lineage)). Broadcast entries keep the id their
    /// originating shard minted.
    pub id: u64,
    /// The raw byte stream.
    pub bytes: Vec<u8>,
    /// Its Iteration Difference Coverage metric when executed.
    pub metric: usize,
    /// How many branches were newly covered when it was added.
    pub new_branches: usize,
}

/// What [`Corpus::insert`] did with the offered entry — the corpus-churn
/// signal the telemetry layer counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusInsertion {
    /// Stored in a free slot (corpus grew).
    Appended,
    /// Stored by evicting a retained entry (corpus churned).
    Replaced,
    /// Dropped: it did not beat the worst retained entry.
    Rejected,
}

/// A bounded corpus with metric-weighted seed selection.
#[derive(Debug, Clone)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    capacity: usize,
    /// When `false`, selection is uniform and replacement FIFO — the
    /// "no iteration-difference priority" ablation (A1).
    pub metric_weighted: bool,
}

impl Corpus {
    /// Creates an empty corpus holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Corpus { entries: Vec::new(), capacity: capacity.max(1), metric_weighted: true }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained entries.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Inserts an interesting input. When full, evicts the lowest-metric
    /// entry (metric-weighted mode) or the oldest (FIFO mode) — but only if
    /// the newcomer beats it. Returns what happened, for churn accounting.
    pub fn insert(&mut self, entry: CorpusEntry) -> CorpusInsertion {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return CorpusInsertion::Appended;
        }
        if self.metric_weighted {
            // Evict among non-finders first: inputs that discovered new
            // branches are the coverage frontier and must survive the flood
            // of high-metric-but-stale mutants.
            let (worst, worst_entry) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|&(_, e)| (e.new_branches, e.metric))
                .expect("corpus is non-empty at capacity");
            let beats_worst =
                (entry.new_branches, entry.metric) > (worst_entry.new_branches, worst_entry.metric);
            if beats_worst {
                self.entries[worst] = entry;
                CorpusInsertion::Replaced
            } else {
                CorpusInsertion::Rejected
            }
        } else {
            self.entries.remove(0);
            self.entries.push(entry);
            CorpusInsertion::Replaced
        }
    }

    /// Picks a seed for the next mutation round. In weighted mode the
    /// energy combines the iteration-difference metric with a strong bonus
    /// for inputs that discovered new branches (they sit at the coverage
    /// frontier); uniform otherwise. Returns `None` on an empty corpus.
    pub fn pick<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a CorpusEntry> {
        if self.entries.is_empty() {
            return None;
        }
        if !self.metric_weighted {
            let i = rng.random_range(0..self.entries.len());
            return Some(&self.entries[i]);
        }
        let energy = |e: &CorpusEntry| (e.metric as u64 + 1) * (1 + 8 * e.new_branches as u64);
        let total: u64 = self.entries.iter().map(&energy).sum();
        let mut ticket = rng.random_range(0..total);
        for entry in &self.entries {
            let e = energy(entry);
            if ticket < e {
                return Some(entry);
            }
            ticket -= e;
        }
        unreachable!("ticket always lands within total energy")
    }

    /// Picks a second, independent entry for crossover.
    pub fn pick_other<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a CorpusEntry> {
        self.pick(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn entry(metric: usize, tag: u8) -> CorpusEntry {
        CorpusEntry { id: u64::from(tag), bytes: vec![tag], metric, new_branches: 0 }
    }

    #[test]
    fn insert_and_len() {
        let mut c = Corpus::new(4);
        assert!(c.is_empty());
        c.insert(entry(1, 0));
        c.insert(entry(2, 1));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn capacity_eviction_prefers_high_metric() {
        let mut c = Corpus::new(2);
        c.insert(entry(5, 0));
        c.insert(entry(1, 1));
        c.insert(entry(10, 2)); // evicts the metric-1 entry
        let metrics: Vec<usize> = c.entries().iter().map(|e| e.metric).collect();
        assert_eq!(c.len(), 2);
        assert!(metrics.contains(&5) && metrics.contains(&10));
        c.insert(entry(0, 3)); // worse than both and no new coverage: dropped
        let metrics: Vec<usize> = c.entries().iter().map(|e| e.metric).collect();
        assert!(metrics.contains(&5) && metrics.contains(&10));
    }

    #[test]
    fn new_coverage_always_displaces_at_capacity() {
        let mut c = Corpus::new(1);
        c.insert(entry(100, 0));
        c.insert(CorpusEntry { id: 9, bytes: vec![9], metric: 0, new_branches: 3 });
        assert_eq!(c.entries()[0].bytes, vec![9]);
    }

    #[test]
    fn fifo_mode_evicts_oldest() {
        let mut c = Corpus::new(2);
        c.metric_weighted = false;
        c.insert(entry(100, 0));
        c.insert(entry(100, 1));
        c.insert(entry(0, 2));
        let tags: Vec<u8> = c.entries().iter().map(|e| e.bytes[0]).collect();
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn weighted_pick_prefers_high_metric() {
        let mut c = Corpus::new(4);
        c.insert(entry(0, 0));
        c.insert(entry(99, 1));
        let mut rng = SmallRng::seed_from_u64(42);
        let mut high = 0;
        for _ in 0..1000 {
            if c.pick(&mut rng).unwrap().bytes[0] == 1 {
                high += 1;
            }
        }
        assert!(high > 900, "high-metric seed picked only {high}/1000 times");
    }

    #[test]
    fn uniform_pick_in_fifo_mode() {
        let mut c = Corpus::new(4);
        c.metric_weighted = false;
        c.insert(entry(0, 0));
        c.insert(entry(9999, 1));
        let mut rng = SmallRng::seed_from_u64(43);
        let mut high = 0;
        for _ in 0..1000 {
            if c.pick(&mut rng).unwrap().bytes[0] == 1 {
                high += 1;
            }
        }
        assert!((350..650).contains(&high), "uniform pick skewed: {high}/1000");
    }

    #[test]
    fn empty_pick_is_none() {
        let c = Corpus::new(4);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(c.pick(&mut rng).is_none());
    }
}
