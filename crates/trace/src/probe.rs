//! Signal probes: the probe mask, the bounded trace ring, and VM capture.

use cftcg_codegen::{CompiledModel, Executor, Instr, TestCase};
use cftcg_coverage::NullRecorder;
use cftcg_model::{DataType, Value};

/// One probed signal: the hierarchical port name and its resolved type.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSignal {
    /// Hierarchical signal name (`model/…/block:port`).
    pub name: String,
    /// The port's resolved data type (decides the VCD variable kind).
    pub dtype: DataType,
}

/// One sample: signal `signal` (an index into the trace's probed-signal
/// list) had value `value` after tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Model iteration the sample was taken after (0-based).
    pub tick: u64,
    /// Index into [`Trace::signals`].
    pub signal: u32,
    /// Sampled value, widened to `f64` (how both engines carry signals).
    pub value: f64,
}

/// A selection of signal-table indices to probe.
///
/// Probing costs one register read (VM) or one signal-store read
/// (interpreter) per selected index per tick — O(probed), not O(model).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeMask {
    indices: Vec<usize>,
}

impl ProbeMask {
    /// Probes every signal of a table with `n` entries.
    pub fn all(n: usize) -> Self {
        ProbeMask { indices: (0..n).collect() }
    }

    /// Probes exactly the given signal-table indices (kept in given order).
    pub fn from_indices(indices: Vec<usize>) -> Self {
        ProbeMask { indices }
    }

    /// Probes every signal whose name contains one of `patterns`
    /// (case-sensitive substring match), in table order.
    ///
    /// # Errors
    ///
    /// Returns the first pattern that matches no signal.
    pub fn from_patterns(names: &[&str], patterns: &[String]) -> Result<Self, String> {
        for pattern in patterns {
            if !names.iter().any(|n| n.contains(pattern.as_str())) {
                return Err(format!("probe pattern {pattern:?} matches no signal"));
            }
        }
        let indices = (0..names.len())
            .filter(|&i| patterns.iter().any(|p| names[i].contains(p.as_str())))
            .collect();
        Ok(ProbeMask { indices })
    }

    /// Probes the signals that drive the model's outports, in outport
    /// order — the minimal mask that reproduces a Scope on every output.
    pub fn outputs(compiled: &CompiledModel) -> Self {
        let metas = compiled.signals();
        let mut indices = Vec::new();
        for instr in compiled.program() {
            if let Instr::Output { src, .. } = instr {
                if let Some(i) = metas.iter().position(|m| m.reg == *src) {
                    indices.push(i);
                }
            }
        }
        ProbeMask { indices }
    }

    /// The selected signal-table indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of probed signals.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the mask selects nothing.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// A captured waveform: the probed signals plus a bounded ring of samples.
///
/// The ring holds at most `capacity` records; older records are dropped
/// (and counted) when it overflows, so tracing a long case keeps the most
/// recent window instead of growing without bound.
#[derive(Debug, Clone)]
pub struct Trace {
    signals: Vec<TraceSignal>,
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    ticks: u64,
    dropped: u64,
}

impl Trace {
    /// An empty trace over `signals` with a ring bound of `capacity`
    /// records (minimum 1).
    pub fn new(signals: Vec<TraceSignal>, capacity: usize) -> Self {
        Trace {
            signals,
            records: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            ticks: 0,
            dropped: 0,
        }
    }

    /// The probed signals, in record `signal`-index order.
    pub fn signals(&self) -> &[TraceSignal] {
        &self.signals
    }

    /// The retained samples, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ticks the traced execution ran for.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends one sample, evicting the oldest record when full.
    pub fn record(&mut self, tick: u64, signal: u32, value: f64) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord { tick, signal, value });
        self.ticks = self.ticks.max(tick + 1);
    }
}

/// Decodes one input tuple into `out` (cleared first) using the compiled
/// model's field layout — the same decode `Executor::step_tuple` performs.
pub fn decode_tuple(compiled: &CompiledModel, tuple: &[u8], out: &mut Vec<Value>) {
    out.clear();
    for field in compiled.layout().fields() {
        out.push(Value::from_le_bytes(&tuple[field.offset..], field.dtype));
    }
}

/// Replays `case` on the compiled VM with probes attached, sampling every
/// masked signal after each tick. A fresh executor is used so held signals
/// start from initial conditions, matching a fresh interpreter.
///
/// The replay loop is allocation-free per tick: `step_tuple` decodes in
/// place and each probe is a single register read.
pub fn trace_vm_case(
    compiled: &CompiledModel,
    case: &TestCase,
    mask: &ProbeMask,
    capacity: usize,
) -> Trace {
    // `CFTCG_ENGINE` selects the execution tier (the JIT shares the flat
    // register file, so probing is unchanged; the reference walker needs
    // its pre-compaction signal table).
    let mut exec = Executor::with_engine(compiled, crate::replay_engine());
    let metas = if exec.engine() == cftcg_codegen::Engine::Reference {
        compiled.reference_signals()
    } else {
        compiled.signals()
    };
    let signals = mask
        .indices()
        .iter()
        .map(|&i| TraceSignal { name: metas[i].name.clone(), dtype: metas[i].dtype })
        .collect();
    let mut trace = Trace::new(signals, capacity);
    let mut recorder = NullRecorder;
    for (tick, tuple) in compiled.layout().split(&case.bytes).enumerate() {
        exec.step_tuple(tuple, &mut recorder);
        for (k, &i) in mask.indices().iter().enumerate() {
            trace.record(tick as u64, k as u32, exec.reg(metas[i].reg));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn counter_model() -> CompiledModel {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let g = b.add("g", BlockKind::Gain { gain: 2.0 });
        let y = b.outport("y");
        b.wire(u, g);
        b.wire(g, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Trace::new(vec![], 2);
        t.record(0, 0, 1.0);
        t.record(1, 0, 2.0);
        t.record(2, 0, 3.0);
        assert_eq!(t.dropped(), 1);
        let vals: Vec<f64> = t.records().map(|r| r.value).collect();
        assert_eq!(vals, vec![2.0, 3.0]);
        assert_eq!(t.ticks(), 3);
    }

    #[test]
    fn mask_patterns_select_by_substring() {
        let compiled = counter_model();
        let names: Vec<&str> = compiled.signals().iter().map(|m| m.name.as_str()).collect();
        let mask = ProbeMask::from_patterns(&names, &["/g:".into()]).unwrap();
        assert_eq!(mask.len(), 1);
        assert!(ProbeMask::from_patterns(&names, &["nope".into()]).is_err());
    }

    #[test]
    fn output_mask_traces_the_outport_driver() {
        let compiled = counter_model();
        let mask = ProbeMask::outputs(&compiled);
        assert_eq!(mask.len(), 1);
        let case = TestCase::new(3.0f64.to_le_bytes().to_vec());
        let trace = trace_vm_case(&compiled, &case, &mask, 64);
        assert_eq!(trace.signals()[0].name, "m/g:0");
        let recs: Vec<&TraceRecord> = trace.records().collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].value, 6.0);
    }
}
