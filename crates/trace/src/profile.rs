//! Per-block profiling: a [`BlockObserver`] that attributes interpreter
//! wall-clock time to block *kinds*, aggregated into the telemetry layer's
//! log2 histograms.
//!
//! Profiling runs at replay/audit time on the interpreter (the VM inlines
//! block boundaries away, so it has nothing to attribute) and never in the
//! fuzzing hot path — the fuzzer's outcomes stay byte-identical.

use std::collections::BTreeMap;

use cftcg_codegen::CompiledModel;
use cftcg_model::Model;
use cftcg_sim::{BlockObserver, SimError, Simulator};
use cftcg_telemetry::{Histogram, Telemetry};

use crate::probe::decode_tuple;

/// Accumulated cost of one block kind.
#[derive(Debug, Clone, Default)]
pub struct KindCost {
    /// Block executions observed.
    pub executions: u64,
    /// Total wall-clock nanoseconds attributed (subsystem containers are
    /// inclusive of their children, which are also counted individually).
    pub total_ns: u64,
    /// Per-execution latency distribution.
    pub ns: Histogram,
}

/// A per-block-kind execution profile. Keys are `BlockKind::tag` strings;
/// a `BTreeMap` keeps reports deterministic.
#[derive(Debug, Clone, Default)]
pub struct BlockProfile {
    kinds: BTreeMap<&'static str, KindCost>,
}

impl BlockProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct block kinds observed.
    pub fn kind_count(&self) -> usize {
        self.kinds.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Kinds sorted hottest-first (total ns desc, then name for ties).
    pub fn hottest(&self) -> Vec<(&'static str, &KindCost)> {
        let mut rows: Vec<_> = self.kinds.iter().map(|(k, v)| (*k, v)).collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        rows
    }

    /// Folds this profile into the telemetry registry (and through it, the
    /// Prometheus exposition and status reports).
    pub fn merge_into(&self, telemetry: &Telemetry) {
        for (kind, cost) in &self.kinds {
            telemetry.merge_block_cost(kind, cost.executions, cost.total_ns, &cost.ns);
        }
    }
}

impl BlockObserver for BlockProfile {
    const ENABLED: bool = true;

    fn block(&mut self, kind: &'static str, nanos: u64) {
        let cost = self.kinds.entry(kind).or_default();
        cost.executions += 1;
        cost.total_ns = cost.total_ns.saturating_add(nanos);
        cost.ns.record(nanos);
    }
}

/// Replays one input byte string on the interpreter with the profiler
/// attached, attributing per-block time into `profile`. Returns the number
/// of ticks executed.
///
/// # Errors
///
/// Propagates interpreter stepping errors.
pub fn profile_case(
    model: &Model,
    compiled: &CompiledModel,
    bytes: &[u8],
    profile: &mut BlockProfile,
) -> Result<u64, SimError> {
    let mut sim = Simulator::new(model)
        .map_err(|e| SimError::Eval(format!("model failed validation: {e}")))?;
    let mut inputs = Vec::new();
    let mut ticks = 0u64;
    for tuple in compiled.layout().split(bytes) {
        decode_tuple(compiled, tuple, &mut inputs);
        sim.step_observed(&inputs, profile)?;
        ticks += 1;
    }
    Ok(ticks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    #[test]
    fn profile_attributes_every_block_kind() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let g = b.add("g", BlockKind::Gain { gain: 3.0 });
        let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
        let y = b.outport("y");
        b.wire(u, g);
        b.wire(g, sat);
        b.wire(sat, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();

        let mut profile = BlockProfile::new();
        let bytes = vec![0u8; compiled.layout().tuple_size() * 5];
        let ticks = profile_case(&model, &compiled, &bytes, &mut profile).unwrap();
        assert_eq!(ticks, 5);
        let rows = profile.hottest();
        let kinds: Vec<&str> = rows.iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&"Gain"));
        assert!(kinds.contains(&"Saturation"));
        for (_, cost) in rows {
            assert_eq!(cost.executions, 5);
            assert_eq!(cost.ns.count(), 5);
        }
    }
}
