//! Waveform export: VCD (IEEE 1364 value-change dump, GTKWave-viewable)
//! and CSV.
//!
//! Mapping of [`Value`](cftcg_model::Value) types onto VCD variables:
//! `Bool` signals become 1-bit wires (`0`/`1` value changes); every numeric
//! type becomes a 64-bit `real` (`r<value>` changes) since both engines
//! carry signals as `f64`. One tick equals one timescale unit.

use std::fmt::Write as _;

use cftcg_model::DataType;

use crate::probe::Trace;

/// Builds the printable-ASCII identifier code for signal `i` (base-94 over
/// `!`..`~`, per the VCD grammar).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// VCD identifiers cannot contain whitespace; everything else is legal.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

/// Groups a trace's records by tick, preserving order.
fn by_tick(trace: &Trace) -> Vec<(u64, Vec<(usize, f64)>)> {
    let mut ticks: Vec<(u64, Vec<(usize, f64)>)> = Vec::new();
    for r in trace.records() {
        if ticks.last().map(|t| t.0) != Some(r.tick) {
            ticks.push((r.tick, Vec::new()));
        }
        ticks.last_mut().expect("pushed above").1.push((r.signal as usize, r.value));
    }
    ticks
}

/// Renders a captured trace as a VCD document.
///
/// The first retained tick dumps every probed signal inside `$dumpvars`;
/// later ticks emit value changes only. Output is deterministic (no
/// date/version timestamps), which is what lets a golden test pin it.
pub fn to_vcd(trace: &Trace, scope: &str) -> String {
    let mut out = String::new();
    out.push_str("$version cftcg-trace $end\n");
    out.push_str("$timescale 1 ns $end\n");
    let _ = writeln!(out, "$scope module {} $end", sanitize(scope));
    for (i, sig) in trace.signals().iter().enumerate() {
        let id = id_code(i);
        let name = sanitize(&sig.name);
        match sig.dtype {
            DataType::Bool => {
                let _ = writeln!(out, "$var wire 1 {id} {name} $end");
            }
            _ => {
                let _ = writeln!(out, "$var real 64 {id} {name} $end");
            }
        }
    }
    out.push_str("$upscope $end\n");
    out.push_str("$enddefinitions $end\n");

    let mut last: Vec<Option<u64>> = vec![None; trace.signals().len()];
    for (t, (tick, values)) in by_tick(trace).iter().enumerate() {
        let _ = writeln!(out, "#{tick}");
        if t == 0 {
            out.push_str("$dumpvars\n");
        }
        for &(s, v) in values {
            let bits = v.to_bits();
            if t > 0 && last[s] == Some(bits) {
                continue;
            }
            last[s] = Some(bits);
            let id = id_code(s);
            match trace.signals()[s].dtype {
                DataType::Bool => {
                    let _ = writeln!(out, "{}{id}", u8::from(v != 0.0));
                }
                _ => {
                    let _ = writeln!(out, "r{v:?} {id}");
                }
            }
        }
        if t == 0 {
            out.push_str("$end\n");
        }
    }
    out
}

/// Renders a captured trace as CSV: one row per tick, one column per
/// probed signal (held values carried forward; empty until first sample).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("tick");
    for sig in trace.signals() {
        let _ = write!(out, ",{}", sig.name.replace(',', ";"));
    }
    out.push('\n');
    let mut last: Vec<Option<f64>> = vec![None; trace.signals().len()];
    for (tick, values) in by_tick(trace) {
        for (s, v) in values {
            last[s] = Some(v);
        }
        let _ = write!(out, "{tick}");
        for v in &last {
            match v {
                Some(x) => {
                    let _ = write!(out, ",{x:?}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::TraceSignal;

    fn two_signal_trace() -> Trace {
        let signals = vec![
            TraceSignal { name: "m/b:0".into(), dtype: DataType::F64 },
            TraceSignal { name: "m/flag:0".into(), dtype: DataType::Bool },
        ];
        let mut t = Trace::new(signals, 1024);
        t.record(0, 0, 1.5);
        t.record(0, 1, 0.0);
        t.record(1, 0, 1.5); // unchanged: elided after tick 0
        t.record(1, 1, 1.0);
        t
    }

    #[test]
    fn vcd_structure_and_change_elision() {
        let vcd = to_vcd(&two_signal_trace(), "m");
        assert!(vcd.contains("$scope module m $end"));
        assert!(vcd.contains("$var real 64 ! m/b:0 $end"));
        assert!(vcd.contains("$var wire 1 \" m/flag:0 $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#0\n$dumpvars\nr1.5 !\n0\"\n$end\n"));
        // Tick 1 re-emits only the changed Bool.
        assert!(vcd.contains("#1\n1\"\n"));
        assert_eq!(vcd.matches("r1.5 !").count(), 1);
    }

    #[test]
    fn csv_carries_values_forward() {
        let csv = to_csv(&two_signal_trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "tick,m/b:0,m/flag:0");
        assert_eq!(lines[1], "0,1.5,0.0");
        assert_eq!(lines[2], "1,1.5,1.0");
    }

    #[test]
    fn id_codes_cover_the_printable_range() {
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!\"");
    }
}
