#![warn(missing_docs)]

//! Execution tracing for CFTCG: signal probes, waveform export, per-block
//! profiling, and a lockstep sim↔VM divergence auditor.
//!
//! A fuzzing campaign tells you *which* branches were reached; this crate
//! makes a *single execution* observable — the visibility Simulink users
//! get from Scope blocks, recovered for the compiled fuzzing path:
//!
//! * **Probes** ([`ProbeMask`], [`Trace`], [`trace_vm_case`]) — the
//!   compiler already dedicates one VM register per block output port
//!   ([`CompiledModel::signals`](cftcg_codegen::CompiledModel::signals)),
//!   so sampling a signal after a tick is one register read: tracing costs
//!   O(probed signals), not O(model), and zero extra instructions. Samples
//!   land in a bounded ring that keeps the most recent window.
//! * **Waveforms** ([`to_vcd`], [`to_csv`]) — captured traces export as
//!   VCD (viewable in GTKWave and friends) or CSV. `Bool` signals map to
//!   1-bit wires, numeric signals to 64-bit `real` variables.
//! * **Profiling** ([`BlockProfile`], [`profile_case`]) — the interpreter
//!   is generic over a [`BlockObserver`](cftcg_sim::BlockObserver); the
//!   profiler implementation attributes wall-clock nanoseconds per block
//!   kind into telemetry histograms ("hottest blocks").
//! * **Auditing** ([`Auditor`]) — both engines enumerate their signals in
//!   the same order with the same names, so the auditor steps them in
//!   lockstep over corpus or random inputs, compares every signal every
//!   tick, and localizes the first divergence (tick, block path, both
//!   values) by binary-searching the schedule order.
//!
//! Everything here runs at *replay* time. The fuzzing hot loop is
//! untouched: with tracing disabled, fuzzing outcomes are byte-identical.

mod audit;
mod probe;
mod profile;
mod vcd;

pub use audit::{AuditError, AuditReport, Auditor, Divergence};

/// The VM engine the replay paths (tracing, auditing) execute on: the
/// `CFTCG_ENGINE` override when set and supported on this build, otherwise
/// the flat VM. Replay favors the deterministic portable tier by default;
/// `CFTCG_ENGINE=jit` cross-checks native code, `=ref` the tree walker.
pub fn replay_engine() -> cftcg_codegen::Engine {
    cftcg_codegen::resolve_engine(None, cftcg_codegen::Engine::Flat)
}
pub use probe::{decode_tuple, trace_vm_case, ProbeMask, Trace, TraceRecord, TraceSignal};
pub use profile::{profile_case, BlockProfile, KindCost};
pub use vcd::{to_csv, to_vcd};

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, TestCase};

    /// The whole benchmark suite must audit clean: the interpreter and the
    /// VM agree on every signal of every tick over random fuzz-like inputs.
    #[test]
    fn bundled_benchmarks_audit_clean() {
        for model in cftcg_benchmarks::all() {
            let compiled = compile(&model).unwrap();
            let mut auditor =
                Auditor::new(&model, &compiled).unwrap_or_else(|e| panic!("{}: {e}", model.name()));
            let report = auditor.audit_random(4, 24, 0xC0FFEE).unwrap();
            assert!(report.passed(), "{} diverged: {}", model.name(), report.divergence.unwrap());
        }
    }

    /// End-to-end: trace a case on a benchmark model and export both
    /// waveform formats.
    #[test]
    fn trace_and_export_roundtrip() {
        let model = cftcg_benchmarks::by_name("SolarPV").expect("bundled");
        let compiled = compile(&model).unwrap();
        let mask = ProbeMask::all(compiled.signals().len());
        let case = TestCase::new(vec![0x5A; compiled.layout().tuple_size() * 6]);
        let trace = trace_vm_case(&compiled, &case, &mask, 1 << 16);
        assert_eq!(trace.ticks(), 6);
        assert_eq!(trace.dropped(), 0);
        let vcd = to_vcd(&trace, compiled.name());
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#5"));
        let csv = to_csv(&trace);
        assert_eq!(csv.lines().count(), 7); // header + 6 ticks
    }
}
