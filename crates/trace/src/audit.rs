//! Lockstep divergence auditor: runs the interpreter and the compiled VM
//! side by side over the same inputs and compares every probed signal per
//! tick. The two engines enumerate signals identically (see
//! `CompiledModel::signals` / `Simulator::signals`), so a comparison is an
//! index-for-index walk of two `f64` vectors.

use std::fmt;

use cftcg_codegen::{CompileError, CompiledModel};
use cftcg_coverage::NullRecorder;
use cftcg_model::{Model, Value};
use cftcg_sim::{SimError, Simulator};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::probe::decode_tuple;

/// Why an audit could not run (distinct from *finding* a divergence, which
/// is a successful audit with a [`Divergence`] result).
#[derive(Debug)]
pub enum AuditError {
    /// The model failed validation / compilation.
    Compile(CompileError),
    /// The interpreter failed to step (hand-built models only).
    Sim(SimError),
    /// The two engines disagree on the signal table itself — enumeration
    /// order or naming drifted, so per-index comparison is meaningless.
    SignalTable {
        /// First differing table index.
        index: usize,
        /// The interpreter's entry at that index (empty if missing).
        sim: String,
        /// The VM's entry at that index (empty if missing).
        vm: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Compile(e) => write!(f, "compile failed: {e}"),
            AuditError::Sim(e) => write!(f, "interpreter failed: {e}"),
            AuditError::SignalTable { index, sim, vm } => write!(
                f,
                "signal tables disagree at index {index}: interpreter has {sim:?}, VM has {vm:?}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<CompileError> for AuditError {
    fn from(e: CompileError) -> Self {
        AuditError::Compile(e)
    }
}

impl From<SimError> for AuditError {
    fn from(e: SimError) -> Self {
        AuditError::Sim(e)
    }
}

/// The first point where the engines disagreed.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Label of the input that exposed the divergence (case id or
    /// `random#N`).
    pub case: String,
    /// Tick (0-based model iteration) of the first disagreement.
    pub tick: u64,
    /// Index of the earliest divergent signal in schedule order.
    pub signal_index: usize,
    /// Hierarchical block path / port of that signal.
    pub signal: String,
    /// The interpreter's value.
    pub sim_value: f64,
    /// The VM's value.
    pub vm_value: f64,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "case {} tick {}: signal [{}] {} diverges (interpreter {:?}, vm {:?})",
            self.case, self.tick, self.signal_index, self.signal, self.sim_value, self.vm_value
        )
    }
}

/// Summary of a finished audit.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Inputs audited.
    pub cases: usize,
    /// Total ticks executed across all inputs.
    pub ticks: u64,
    /// Signals compared per tick.
    pub signals: usize,
    /// The first divergence found, if any (the audit stops there).
    pub divergence: Option<Divergence>,
}

impl AuditReport {
    /// Whether the engines agreed on every signal of every tick.
    pub fn passed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Bitwise equality with NaN treated as equal to NaN — signals travel as
/// raw `f64` through both engines, so representation equality is the
/// honest check (the differential tests use the same rule).
fn values_eq(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    a.to_bits() == b.to_bits()
}

/// Localizes the earliest divergent signal of one tick by binary-searching
/// the schedule-ordered prefix: `predicate(m)` = "some signal in `[0, m)`
/// diverges" is monotone in `m`, so the earliest divergence is the smallest
/// `m` flipping it to true. (Scanning `[lo, mid)` suffices because the
/// invariant guarantees `[0, lo)` is clean.)
fn first_divergent(sim: &[f64], vm: &[f64]) -> usize {
    let mut lo = 0usize; // invariant: no divergence in [0, lo)
    let mut hi = sim.len(); // invariant: some divergence in [0, hi)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        let diverged = sim[lo..mid].iter().zip(&vm[lo..mid]).any(|(a, b)| !values_eq(*a, *b));
        if diverged {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi - 1
}

/// A reusable lockstep auditor over one model/compiled pair.
///
/// Construction verifies the two engines agree on the signal table; each
/// audited input then runs on a **fresh** interpreter and VM (held signals
/// start from initial conditions on both sides) and compares every signal
/// after every tick, stopping at the first divergence.
#[derive(Debug)]
pub struct Auditor<'a> {
    model: &'a Model,
    compiled: &'a CompiledModel,
    names: Vec<String>,
    inputs: Vec<Value>,
    sim_buf: Vec<f64>,
    vm_buf: Vec<f64>,
}

impl<'a> Auditor<'a> {
    /// Builds an auditor, checking the signal-table contract up front.
    ///
    /// # Errors
    ///
    /// [`AuditError::SignalTable`] if the engines' tables differ in length,
    /// order, or naming; [`AuditError::Sim`] if the interpreter rejects the
    /// model.
    pub fn new(model: &'a Model, compiled: &'a CompiledModel) -> Result<Self, AuditError> {
        let sim = Simulator::new(model).map_err(CompileError::from)?;
        let sim_table = sim.signals();
        let vm_table = compiled.signals();
        let n = sim_table.len().max(vm_table.len());
        for i in 0..n {
            let s = sim_table.get(i).map(|(name, _)| name.as_str()).unwrap_or("");
            let v = vm_table.get(i).map(|m| m.name.as_str()).unwrap_or("");
            if s != v {
                return Err(AuditError::SignalTable {
                    index: i,
                    sim: s.to_string(),
                    vm: v.to_string(),
                });
            }
        }
        let names = sim_table.into_iter().map(|(name, _)| name).collect();
        Ok(Auditor {
            model,
            compiled,
            names,
            inputs: Vec::new(),
            sim_buf: Vec::new(),
            vm_buf: Vec::new(),
        })
    }

    /// Signals compared per tick.
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Audits one input byte string; returns the first divergence, or
    /// `None` with the tick count if the engines agree throughout.
    ///
    /// # Errors
    ///
    /// [`AuditError::Sim`] when the interpreter fails to step.
    pub fn audit_case(
        &mut self,
        label: &str,
        bytes: &[u8],
    ) -> Result<(u64, Option<Divergence>), AuditError> {
        let mut sim = Simulator::new(self.model).map_err(CompileError::from)?;
        // `CFTCG_ENGINE` picks the tier under audit (`jit` cross-checks
        // native code against the interpreter).
        let mut exec = cftcg_codegen::Executor::with_engine(self.compiled, crate::replay_engine());
        // The reference walker keeps the pre-compaction register file, so
        // its signal metas live in a different register space.
        let metas = if exec.engine() == cftcg_codegen::Engine::Reference {
            self.compiled.reference_signals()
        } else {
            self.compiled.signals()
        };
        let mut recorder = NullRecorder;
        let mut ticks = 0u64;
        for tuple in self.compiled.layout().split(bytes) {
            decode_tuple(self.compiled, tuple, &mut self.inputs);
            sim.step(&self.inputs)?;
            exec.step_tuple(tuple, &mut recorder);
            sim.read_signals_into(&mut self.sim_buf);
            self.vm_buf.clear();
            self.vm_buf.extend(metas.iter().map(|m| exec.reg(m.reg)));
            let diverged = self.sim_buf.iter().zip(&self.vm_buf).any(|(a, b)| !values_eq(*a, *b));
            if diverged {
                let i = first_divergent(&self.sim_buf, &self.vm_buf);
                return Ok((
                    ticks + 1,
                    Some(Divergence {
                        case: label.to_string(),
                        tick: ticks,
                        signal_index: i,
                        signal: self.names[i].clone(),
                        sim_value: self.sim_buf[i],
                        vm_value: self.vm_buf[i],
                    }),
                ));
            }
            ticks += 1;
        }
        Ok((ticks, None))
    }

    /// Audits a batch of labelled inputs, stopping at the first divergence.
    ///
    /// # Errors
    ///
    /// Propagates [`Auditor::audit_case`] errors.
    pub fn audit_corpus(&mut self, cases: &[(String, Vec<u8>)]) -> Result<AuditReport, AuditError> {
        let mut report =
            AuditReport { cases: 0, ticks: 0, signals: self.signal_count(), divergence: None };
        for (label, bytes) in cases {
            let (ticks, divergence) = self.audit_case(label, bytes)?;
            report.cases += 1;
            report.ticks += ticks;
            if divergence.is_some() {
                report.divergence = divergence;
                break;
            }
        }
        Ok(report)
    }

    /// Audits `cases` random inputs of `ticks_per_case` ticks each, from a
    /// seeded generator (raw bytes, so decoded inputs cover NaNs, huge
    /// magnitudes, and denormals — exactly what a fuzzer would feed).
    ///
    /// # Errors
    ///
    /// Propagates [`Auditor::audit_case`] errors.
    pub fn audit_random(
        &mut self,
        cases: usize,
        ticks_per_case: usize,
        seed: u64,
    ) -> Result<AuditReport, AuditError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tuple_size = self.compiled.layout().tuple_size();
        let mut report =
            AuditReport { cases: 0, ticks: 0, signals: self.signal_count(), divergence: None };
        let mut bytes = vec![0u8; tuple_size * ticks_per_case];
        for n in 0..cases {
            rng.fill_bytes(&mut bytes);
            let (ticks, divergence) = self.audit_case(&format!("random#{n}"), &bytes)?;
            report.cases += 1;
            report.ticks += ticks;
            if divergence.is_some() {
                report.divergence = divergence;
                break;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    #[test]
    fn first_divergent_finds_the_earliest_index() {
        let sim = [1.0, 2.0, 3.0, 4.0];
        let mut vm = sim;
        for i in 0..4 {
            let mut v = vm;
            v[i] += 0.5;
            assert_eq!(first_divergent(&sim, &v), i);
        }
        vm[1] = 9.0;
        vm[3] = 9.0;
        assert_eq!(first_divergent(&sim, &vm), 1);
    }

    #[test]
    fn nan_values_compare_equal() {
        assert!(values_eq(f64::NAN, f64::NAN));
        assert!(!values_eq(0.0, -0.0) || 0.0f64.to_bits() == (-0.0f64).to_bits());
        assert!(values_eq(1.5, 1.5));
    }

    #[test]
    fn stateful_model_audits_clean_over_random_inputs() {
        let mut b = ModelBuilder::new("acc");
        let u = b.inport("u", DataType::F64);
        let sum = b.add("sum", BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus; 2] });
        let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
        let sat = b.add("sat", BlockKind::Saturation { lower: -10.0, upper: 10.0 });
        let y = b.outport("y");
        b.connect(u, 0, sum, 0);
        b.connect(dly, 0, sum, 1);
        b.connect(sum, 0, dly, 0);
        b.connect(sum, 0, sat, 0);
        b.wire(sat, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();
        let mut auditor = Auditor::new(&model, &compiled).unwrap();
        let report = auditor.audit_random(8, 16, 7).unwrap();
        assert!(report.passed(), "unexpected divergence: {:?}", report.divergence);
        assert_eq!(report.cases, 8);
        assert_eq!(report.ticks, 8 * 16);
        assert_eq!(report.signals, 4); // u, sum, dly, sat (outport has no port)
    }
}
