//! The auditor's core check as a unit-level property: over *random small
//! models* and *random input tuples*, the interpreter and the compiled VM
//! agree on **every signal** (not just the outports) after every tick.
//!
//! This is strictly stronger than the output-level differential tests in
//! `crates/codegen/tests/differential.rs`: a bug that cancels out before
//! reaching an outport (e.g. inside a held subsystem signal) still fails
//! here.

use cftcg_codegen::compile;
use cftcg_model::expr::parse_expr;
use cftcg_model::{BlockKind, DataType, EdgeKind, ModelBuilder, RelOp, Value};
use cftcg_trace::Auditor;
use proptest::prelude::*;

/// A palette of 1-in/1-out block kinds, parameterized by one float so
/// proptest explores thresholds/gains too. Parameters are shaped to stay
/// valid (e.g. saturation bounds ordered).
fn palette(index: usize, p: f64) -> BlockKind {
    match index % 17 {
        0 => BlockKind::Gain { gain: p },
        1 => BlockKind::Bias { bias: p },
        2 => BlockKind::Abs,
        3 => BlockKind::Signum,
        4 => BlockKind::Saturation { lower: -p.abs(), upper: p.abs() },
        5 => BlockKind::DeadZone { start: -p.abs(), end: p.abs() },
        6 => BlockKind::Quantizer { interval: p.abs() + 0.25 },
        7 => BlockKind::RateLimiter { rising: p.abs() + 0.1, falling: p.abs() + 0.2 },
        8 => BlockKind::Backlash { width: p.abs() + 0.1, initial: 0.0 },
        9 => BlockKind::CoulombFriction { offset: p.abs(), gain: p },
        10 => BlockKind::UnitDelay { initial: Value::F64(p) },
        11 => BlockKind::Delay { steps: 2, initial: Value::F64(p) },
        12 => BlockKind::Memory { initial: Value::F64(p) },
        13 => BlockKind::DiscreteIntegrator {
            gain: p,
            initial: 0.0,
            lower: Some(-5.0),
            upper: Some(5.0),
        },
        14 => BlockKind::Relay {
            on_threshold: p.abs(),
            off_threshold: -p.abs(),
            on_output: 1.0,
            off_output: 0.0,
        },
        15 => BlockKind::Compare { op: RelOp::Gt, constant: p },
        _ => BlockKind::EdgeDetect { kind: EdgeKind::Rising },
    }
}

fn interesting_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -10.0f64..10.0,
        2 => prop_oneof![Just(0.0f64), Just(-0.0), Just(1.0), Just(-1.0), Just(0.5)],
        1 => -1e6f64..1e6,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(1e300f64),
        ],
    ]
}

fn encode_f64s(xs: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        bytes.extend_from_slice(&x.to_le_bytes());
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random block chains: every signal of every tick matches.
    #[test]
    fn random_chains_agree_on_every_signal(
        picks in prop::collection::vec((0usize..17, -3.0f64..3.0), 1..6),
        xs in prop::collection::vec(interesting_f64(), 4..24),
    ) {
        let mut b = ModelBuilder::new("chain");
        let u = b.inport("u", DataType::F64);
        let mut prev = u;
        for (i, (k, p)) in picks.iter().enumerate() {
            let blk = b.add(format!("b{i}"), palette(*k, *p));
            b.connect(prev, 0, blk, 0);
            prev = blk;
        }
        let y = b.outport("y");
        b.connect(prev, 0, y, 0);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();

        let mut auditor = Auditor::new(&model, &compiled).unwrap();
        prop_assert_eq!(auditor.signal_count(), picks.len() + 1);
        let bytes = encode_f64s(&xs);
        let (ticks, divergence) = auditor.audit_case("prop", &bytes).unwrap();
        prop_assert!(divergence.is_none(), "divergence: {}", divergence.unwrap());
        prop_assert_eq!(ticks, xs.len() as u64);
    }

    /// Conditional subsystems with held inner signals: the audit compares
    /// signals *inside* inactive subsystems too, so hold semantics must
    /// match exactly between the engines.
    #[test]
    fn conditional_subsystems_agree_on_held_inner_signals(
        xs in prop::collection::vec(interesting_f64(), 6..30),
        gains in (-4.0f64..4.0, -4.0f64..4.0),
    ) {
        fn gain_action(name: &str, gain: f64) -> BlockKind {
            let mut b = ModelBuilder::new(name);
            let u = b.inport("u", DataType::F64);
            let g = b.add("g", BlockKind::Gain { gain });
            let d = b.add("d", BlockKind::UnitDelay { initial: Value::F64(0.0) });
            let y = b.outport("y");
            b.wire(u, g);
            b.wire(g, d);
            b.wire(d, y);
            BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
        }
        let mut b = ModelBuilder::new("cond");
        let u = b.inport("u", DataType::F64);
        let iff = b.add("if", BlockKind::If {
            num_inputs: 1,
            conditions: vec![parse_expr("u1 > 0").unwrap()],
            has_else: true,
        });
        let pos = b.add("pos", gain_action("pos_m", gains.0));
        let neg = b.add("neg", gain_action("neg_m", gains.1));
        let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
        let y = b.outport("y");
        b.connect(u, 0, iff, 0);
        b.connect(iff, 0, pos, 0);
        b.connect(iff, 1, neg, 0);
        b.connect(u, 0, pos, 1);
        b.connect(u, 0, neg, 1);
        b.connect(pos, 0, merge, 0);
        b.connect(neg, 0, merge, 1);
        b.wire(merge, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();

        let mut auditor = Auditor::new(&model, &compiled).unwrap();
        let bytes = encode_f64s(&xs);
        let (_, divergence) = auditor.audit_case("prop", &bytes).unwrap();
        prop_assert!(divergence.is_none(), "divergence: {}", divergence.unwrap());
    }
}
