//! Property tests on the telemetry primitives: the algebra that makes
//! per-shard stats safe to merge in any order, and the histogram bucketing
//! invariants the Prometheus exposition relies on.

use cftcg_telemetry::{Histogram, OperatorCounters, ShardStats};
use proptest::prelude::*;

/// Builds a histogram from a list of observations.
fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Compact generator output: executions, iterations, discoveries, exec
/// latencies, and (operator, earned) attribution events.
type RawStats = (u64, u64, u64, Vec<u64>, Vec<(usize, bool)>);

/// Builds shard stats from compact generator output.
fn stats_of((execs, iters, discoveries, latencies, ops): &RawStats) -> ShardStats {
    let mut s = ShardStats::new(8);
    s.executions = *execs;
    s.iterations = *iters;
    s.discoveries = *discoveries;
    for &v in latencies {
        s.exec_latency_ns.record(v);
    }
    for &(op, earned) in ops {
        s.operators.record(op % 8, earned);
    }
    s
}

fn stats_strategy() -> impl Strategy<Value = RawStats> {
    (
        0..1_000_000u64,
        0..1_000_000u64,
        0..1_000u64,
        prop::collection::vec(any::<u64>(), 0..32),
        prop::collection::vec((any::<usize>(), any::<bool>()), 0..32),
    )
}

proptest! {
    /// Every value lands in a bucket whose bounds bracket it, so the
    /// bucketing round-trips: bound(index(v)) covers v.
    #[test]
    fn bucket_bounds_bracket_every_value(value in any::<u64>()) {
        let index = Histogram::bucket_index(value);
        prop_assert!(index < cftcg_telemetry::BUCKETS);
        prop_assert!(Histogram::bucket_lower_bound(index) <= value);
        prop_assert!(value <= Histogram::bucket_upper_bound(index));
    }

    /// Merging histograms is commutative: a+b == b+a, element-wise.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        let mut ab = ha.clone();
        ab.merge_from(&hb);
        let mut ba = hb.clone();
        ba.merge_from(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// A merged histogram equals one built from the concatenated stream —
    /// sharding the observations never changes the final shape.
    #[test]
    fn histogram_merge_matches_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge_from(&histogram_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, histogram_of(&concat));
    }

    /// The quantile upper bound is an actual upper bound: at least `q·count`
    /// observations are ≤ it.
    #[test]
    fn quantile_upper_bound_is_sound(
        values in prop::collection::vec(0..1_000_000u64, 1..64),
        q in 0.0..=1.0f64,
    ) {
        let h = histogram_of(&values);
        let bound = h.quantile_upper_bound(q);
        let at_or_below = values.iter().filter(|&&v| v <= bound).count() as f64;
        prop_assert!(at_or_below >= (q * values.len() as f64).ceil().max(1.0));
    }

    /// Shard-stat merging is commutative, so the coordinator may fold worker
    /// reports in any arrival order.
    #[test]
    fn shard_stats_merge_is_commutative(
        a in stats_strategy(),
        b in stats_strategy(),
    ) {
        let (sa, sb) = (stats_of(&a), stats_of(&b));
        let mut ab = sa.clone();
        ab.merge_from(&sb);
        let mut ba = sb.clone();
        ba.merge_from(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Shard-stat merging is associative: (a+b)+c == a+(b+c), so batching
    /// deltas before the global merge is equivalent to merging one by one.
    #[test]
    fn shard_stats_merge_is_associative(
        a in stats_strategy(),
        b in stats_strategy(),
        c in stats_strategy(),
    ) {
        let (sa, sb, sc) = (stats_of(&a), stats_of(&b), stats_of(&c));
        let mut left = sa.clone();
        left.merge_from(&sb);
        left.merge_from(&sc);
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut right = sa.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left, right);
    }

    /// delta_since inverts merge_from: baseline + (current − baseline)
    /// reconstructs current exactly.
    #[test]
    fn delta_since_inverts_merge(
        base in stats_strategy(),
        extra in stats_strategy(),
    ) {
        let baseline = stats_of(&base);
        let mut current = baseline.clone();
        current.merge_from(&stats_of(&extra));
        let delta = current.delta_since(&baseline);
        let mut rebuilt = baseline.clone();
        rebuilt.merge_from(&delta);
        prop_assert_eq!(rebuilt, current);
    }

    /// Operator counters never report more coverage-earning executions than
    /// total executions, regardless of the record/merge sequence.
    #[test]
    fn operator_earning_never_exceeds_executions(
        ops in prop::collection::vec((any::<usize>(), any::<bool>()), 0..128),
        split in 0..128usize,
    ) {
        let mut a = OperatorCounters::new(4);
        let mut b = OperatorCounters::new(4);
        for (i, &(op, earned)) in ops.iter().enumerate() {
            if i < split { a.record(op % 4, earned) } else { b.record(op % 4, earned) }
        }
        a.merge_from(&b);
        for (execs, earning) in a.executions.iter().zip(&a.coverage_earning) {
            prop_assert!(earning <= execs);
        }
    }
}
