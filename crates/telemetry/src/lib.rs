#![warn(missing_docs)]

//! Observability for the CFTCG fuzzing engine: structured metrics, a JSONL
//! event log, a live status line, and Prometheus text exposition — all
//! zero-dependency and offline-safe.
//!
//! # Architecture
//!
//! The hot path never takes a lock: each fuzzing shard (a worker thread, or
//! the one sequential fuzzer) owns a plain [`ShardStats`] — counters plus
//! log₂-scale [`Histogram`]s — and records into it with ordinary integer
//! arithmetic. At *sync rounds* (or status ticks for the sequential loop)
//! the shard's cumulative stats are snapshotted, the delta since the last
//! report is computed ([`ShardStats::delta_since`]), and the delta is folded
//! into the shared [`Telemetry`] registry under a short mutex hold
//! ([`Telemetry::merge_shard`]). Merging is commutative and associative
//! (element-wise addition), so shard order never matters.
//!
//! Because telemetry only *observes* — it never touches the fuzzer's RNG,
//! corpus, or scheduling — enabling it cannot perturb a campaign: a
//! `workers = 1` run stays byte-identical to the sequential fuzzer with or
//! without sinks attached (enforced by `crates/fuzz` regression tests).
//!
//! # Sinks
//!
//! * **JSONL event log** ([`Telemetry::with_jsonl`]): one [`Event`] per
//!   line — campaign lifecycle, new-coverage discoveries, violations,
//!   corpus evictions, sync rounds, bench series points.
//! * **Status line** ([`Telemetry::with_status`]): an AFL-style periodic
//!   one-liner (execs/s, per-shard rates, corpus size, branch %, violation
//!   count, sync lag).
//! * **Prometheus** ([`Telemetry::prometheus_text`]): a pull-style text
//!   exposition dump of every counter, gauge, and histogram.
//!
//! # Example
//!
//! ```
//! use cftcg_telemetry::{Event, ShardStats, Telemetry};
//!
//! let telemetry = Telemetry::new().with_jsonl(Vec::new());
//! telemetry.set_operator_labels(&["EraseTuples", "InsertTuple"]);
//!
//! // A shard records locally, lock-free…
//! let mut stats = ShardStats::new(2);
//! stats.executions += 1;
//! stats.exec_latency_ns.record(12_345);
//! stats.operators.record(0, true);
//!
//! // …and merges at a sync point.
//! telemetry.merge_shard(0, &stats, 1);
//! telemetry.emit(&Event::NewCoverage { shard: 0, executions: 1, covered: 3, total: 8, t: 0.1 });
//!
//! assert!(telemetry.prometheus_text().contains("cftcg_executions_total 1"));
//! ```

mod event;
mod histogram;
pub mod json;
mod series;
mod span;

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use event::{Event, OperatorReport, PlateauGoal, YieldReport, PLATEAU_FRONTIER_CAP};
pub use histogram::{Histogram, BUCKETS};
pub use series::{SeriesPoint, SeriesRing};
pub use span::{
    SpanKind, SpanReport, SpanSampler, SpanStats, SpanTrace, TraceEvent, COORDINATOR_TID,
};

/// Per-mutation-operator attribution counters.
///
/// Index space is defined by the caller (the fuzz crate maps its
/// `MutationKind` table onto `0..n`); labels are attached once via
/// [`Telemetry::set_operator_labels`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OperatorCounters {
    /// Candidate executions whose mutation chain included the operator.
    pub executions: Vec<u64>,
    /// Of those, executions that earned new (shard-local) coverage.
    pub coverage_earning: Vec<u64>,
}

impl OperatorCounters {
    /// Counters for `n` operators, all zero.
    pub fn new(n: usize) -> Self {
        OperatorCounters { executions: vec![0; n], coverage_earning: vec![0; n] }
    }

    /// Number of operator slots.
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// `true` when no operator slots exist.
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// Records one candidate execution attributed to operator `index`.
    #[inline]
    pub fn record(&mut self, index: usize, earned_coverage: bool) {
        self.executions[index] += 1;
        if earned_coverage {
            self.coverage_earning[index] += 1;
        }
    }

    /// Folds another counter set into this one, growing if needed.
    pub fn merge_from(&mut self, other: &OperatorCounters) {
        if other.len() > self.len() {
            self.executions.resize(other.len(), 0);
            self.coverage_earning.resize(other.len(), 0);
        }
        for (mine, theirs) in self.executions.iter_mut().zip(&other.executions) {
            *mine += theirs;
        }
        for (mine, theirs) in self.coverage_earning.iter_mut().zip(&other.coverage_earning) {
            *mine += theirs;
        }
    }

    /// The difference `self − baseline` (both from the same monotone
    /// counter stream).
    pub fn delta_since(&self, baseline: &OperatorCounters) -> OperatorCounters {
        let sub = |now: &[u64], base: &[u64]| {
            now.iter()
                .enumerate()
                .map(|(i, v)| v.saturating_sub(base.get(i).copied().unwrap_or(0)))
                .collect()
        };
        OperatorCounters {
            executions: sub(&self.executions, &baseline.executions),
            coverage_earning: sub(&self.coverage_earning, &baseline.coverage_earning),
        }
    }
}

/// What a candidate execution attributed to a mutation operator achieved —
/// the outcome axis of the [`YieldMatrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldOutcome {
    /// The candidate ran (every attributed execution lands here).
    Executed,
    /// The candidate covered at least one new (shard-local) branch.
    NewCoverage,
    /// The candidate was committed to the corpus (append or replace).
    CorpusInsert,
    /// The candidate first witnessed an assertion violation.
    Violation,
}

impl YieldOutcome {
    /// Number of outcome classes.
    pub const COUNT: usize = 4;

    /// All outcomes, in matrix-column order.
    pub const ALL: [YieldOutcome; YieldOutcome::COUNT] = [
        YieldOutcome::Executed,
        YieldOutcome::NewCoverage,
        YieldOutcome::CorpusInsert,
        YieldOutcome::Violation,
    ];

    /// Stable snake_case label (Prometheus `outcome` label value).
    pub fn name(self) -> &'static str {
        match self {
            YieldOutcome::Executed => "executed",
            YieldOutcome::NewCoverage => "new_coverage",
            YieldOutcome::CorpusInsert => "corpus_insert",
            YieldOutcome::Violation => "violation",
        }
    }

    /// The outcome's column index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The per-operator × per-outcome yield matrix: for every mutation
/// operator, how many attributed candidate executions reached each
/// [`YieldOutcome`]. Same merge algebra as [`OperatorCounters`] —
/// element-wise addition, commutative and associative — so it rides the
/// shard delta/merge machinery unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YieldMatrix {
    rows: Vec<[u64; YieldOutcome::COUNT]>,
}

impl YieldMatrix {
    /// A zeroed matrix with `n` operator rows.
    pub fn new(n: usize) -> Self {
        YieldMatrix { rows: vec![[0; YieldOutcome::COUNT]; n] }
    }

    /// Number of operator rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no operator rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Records one outcome for operator `operator`.
    #[inline]
    pub fn record(&mut self, operator: usize, outcome: YieldOutcome) {
        self.rows[operator][outcome.index()] += 1;
    }

    /// One cell of the matrix (0 for out-of-range rows).
    pub fn get(&self, operator: usize, outcome: YieldOutcome) -> u64 {
        self.rows.get(operator).map_or(0, |row| row[outcome.index()])
    }

    /// Column total across every operator.
    pub fn total(&self, outcome: YieldOutcome) -> u64 {
        self.rows.iter().map(|row| row[outcome.index()]).sum()
    }

    /// Folds another matrix into this one, growing if needed.
    pub fn merge_from(&mut self, other: &YieldMatrix) {
        if other.len() > self.len() {
            self.rows.resize(other.len(), [0; YieldOutcome::COUNT]);
        }
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// The difference `self − baseline` (both from the same monotone
    /// counter stream).
    pub fn delta_since(&self, baseline: &YieldMatrix) -> YieldMatrix {
        let rows = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let base = baseline.rows.get(i).copied().unwrap_or_default();
                std::array::from_fn(|j| row[j].saturating_sub(base[j]))
            })
            .collect();
        YieldMatrix { rows }
    }
}

/// One corpus entry's scheduling forensics, published wholesale by the
/// owning shard at sync points (a gauge set, not a counter stream): how
/// often the seed was selected as a mutation base, how many of its mutants
/// were committed, the goal yield of its whole descendant subtree, and its
/// current energy/age in the schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorpusSeedReport {
    /// Stable lineage id of the retained input.
    pub id: u64,
    /// Input size in bytes.
    pub size_bytes: u64,
    /// Its iteration-difference metric.
    pub metric: u64,
    /// Branches newly covered when it was committed.
    pub new_branches: u64,
    /// Current energy (selection ticket weight).
    pub energy: u64,
    /// Times selected as a mutation base.
    pub selections: u64,
    /// Direct children committed to the corpus or emitted as cases.
    pub children: u64,
    /// New branches earned by the seed's descendants (transitive).
    pub descendant_goals: u64,
    /// Shard executions elapsed since the entry was committed.
    pub age_executions: u64,
}

/// The most recent plateau the registry saw (from a [`Event::Plateau`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PlateauSummary {
    /// Seconds since campaign start when the plateau fired.
    pub t: f64,
    /// Executions completed when the plateau fired.
    pub executions: u64,
    /// Open goals at the time of the plateau.
    pub open: u64,
}

/// One shard's locally owned metrics. Plain data, no locks: the owning
/// worker increments fields directly; deltas are merged into [`Telemetry`]
/// at sync points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Inputs executed.
    pub executions: u64,
    /// Model iterations executed.
    pub iterations: u64,
    /// Inputs that found new (shard-local) coverage.
    pub discoveries: u64,
    /// Assertion violations first witnessed by this shard.
    pub violations: u64,
    /// Corpus insertions (appends and replacements).
    pub corpus_inserts: u64,
    /// Corpus replacements (an older entry was evicted).
    pub corpus_evictions: u64,
    /// Per-input execution latency, nanoseconds (recorded only when a
    /// telemetry handle is attached — timing costs two clock reads).
    pub exec_latency_ns: Histogram,
    /// Mutation stacking depth per generated candidate.
    pub mutation_depth: Histogram,
    /// Coordinator-side sync-round merge cost, nanoseconds (empty on
    /// worker shards).
    pub sync_duration_ns: Histogram,
    /// Mutation-operator attribution.
    pub operators: OperatorCounters,
    /// Per-operator × per-outcome mutation yield.
    pub yields: YieldMatrix,
    /// Span-based self-profiling: per-phase wall-clock attribution
    /// (recorded only when a telemetry handle or trace buffer is attached).
    pub spans: SpanStats,
}

impl ShardStats {
    /// Fresh stats with `operator_count` attribution slots.
    pub fn new(operator_count: usize) -> Self {
        ShardStats {
            operators: OperatorCounters::new(operator_count),
            yields: YieldMatrix::new(operator_count),
            ..Default::default()
        }
    }

    /// Folds another stats block into this one.
    pub fn merge_from(&mut self, other: &ShardStats) {
        self.executions += other.executions;
        self.iterations += other.iterations;
        self.discoveries += other.discoveries;
        self.violations += other.violations;
        self.corpus_inserts += other.corpus_inserts;
        self.corpus_evictions += other.corpus_evictions;
        self.exec_latency_ns.merge_from(&other.exec_latency_ns);
        self.mutation_depth.merge_from(&other.mutation_depth);
        self.sync_duration_ns.merge_from(&other.sync_duration_ns);
        self.operators.merge_from(&other.operators);
        self.yields.merge_from(&other.yields);
        self.spans.merge_from(&other.spans);
    }

    /// The difference `self − baseline`, where `baseline` is an earlier
    /// snapshot of this same stats block.
    pub fn delta_since(&self, baseline: &ShardStats) -> ShardStats {
        ShardStats {
            executions: self.executions.saturating_sub(baseline.executions),
            iterations: self.iterations.saturating_sub(baseline.iterations),
            discoveries: self.discoveries.saturating_sub(baseline.discoveries),
            violations: self.violations.saturating_sub(baseline.violations),
            corpus_inserts: self.corpus_inserts.saturating_sub(baseline.corpus_inserts),
            corpus_evictions: self.corpus_evictions.saturating_sub(baseline.corpus_evictions),
            exec_latency_ns: self.exec_latency_ns.delta_since(&baseline.exec_latency_ns),
            mutation_depth: self.mutation_depth.delta_since(&baseline.mutation_depth),
            sync_duration_ns: self.sync_duration_ns.delta_since(&baseline.sync_duration_ns),
            operators: self.operators.delta_since(&baseline.operators),
            yields: self.yields.delta_since(&baseline.yields),
            spans: self.spans.delta_since(&baseline.spans),
        }
    }
}

/// A consistent point-in-time copy of the registry's merged state.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Campaign-wide merged stats.
    pub totals: ShardStats,
    /// Branches covered (from the latest coverage-bearing event).
    pub covered: usize,
    /// Total branch probes.
    pub branch_count: usize,
    /// Total corpus entries across shards (latest reports).
    pub corpus_size: u64,
    /// Wall-clock time since the registry was created.
    pub elapsed: Duration,
    /// Most recent per-shard execution rates (executions per second).
    pub shard_rates: Vec<f64>,
    /// Per-shard share of span-attributed wall-clock spent blocked on sync
    /// rounds, percent (0 for shards that never synced).
    pub shard_sync_pct: Vec<f64>,
    /// Operator labels (parallel to `totals.operators`).
    pub operator_labels: Vec<String>,
    /// Event-side violation count (distinct `Violation` events witnessed).
    pub violations_seen: u64,
    /// Most recent coordinator sync-round cost, milliseconds.
    pub last_sync_ms: f64,
    /// Native code bytes resident in the JIT cache, when the JIT tier ran.
    pub jit_code_bytes: Option<u64>,
    /// JIT compilation wall-clock cost in nanoseconds, when the tier ran.
    pub jit_compile_ns: Option<u64>,
    /// Batched-tier gauges, when the fuzz loop ran `Engine::Batch`.
    pub batch: Option<BatchTierStats>,
    /// The retained coverage/throughput time series, oldest first.
    pub series: Vec<SeriesPoint>,
    /// Per-corpus-entry scheduling forensics, flattened across shards in
    /// shard order (empty until a shard publishes).
    pub corpus_seeds: Vec<CorpusSeedReport>,
    /// Plateau events witnessed so far.
    pub plateaus: u64,
    /// The most recent plateau, when one fired.
    pub last_plateau: Option<PlateauSummary>,
}

/// Batched-tier gauges, published wholesale on each fuzz-loop flush (like
/// the JIT gauges): what the SoA tier has done and how much of its lane
/// capacity divergence is wasting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTierStats {
    /// Lanes per batch round.
    pub width: u64,
    /// Batched rounds executed.
    pub rounds: u64,
    /// Lanes committed (inputs the batch tier contributed to the campaign).
    pub commits: u64,
    /// Lanes abandoned to a mid-round corpus/dictionary change.
    pub abandons: u64,
    /// Fraction of lane executions spent in divergence masks rather than
    /// the converged row path (`BatchStats::scalar_lane_fraction`).
    pub scalar_lane_fraction: f64,
}

impl TelemetrySnapshot {
    /// Per-operator attribution as reportable rows.
    pub fn operator_reports(&self) -> Vec<OperatorReport> {
        self.operator_labels
            .iter()
            .enumerate()
            .map(|(i, name)| OperatorReport {
                name: name.clone(),
                executions: self.totals.operators.executions.get(i).copied().unwrap_or(0),
                coverage_earning: self
                    .totals
                    .operators
                    .coverage_earning
                    .get(i)
                    .copied()
                    .unwrap_or(0),
            })
            .collect()
    }

    /// The mutation-yield matrix as reportable rows (one per operator).
    pub fn yield_reports(&self) -> Vec<YieldReport> {
        self.operator_labels
            .iter()
            .enumerate()
            .map(|(i, name)| YieldReport {
                name: name.clone(),
                executed: self.totals.yields.get(i, YieldOutcome::Executed),
                new_coverage: self.totals.yields.get(i, YieldOutcome::NewCoverage),
                corpus_insert: self.totals.yields.get(i, YieldOutcome::CorpusInsert),
                violation: self.totals.yields.get(i, YieldOutcome::Violation),
            })
            .collect()
    }

    /// Branch goals attained per wall-clock second.
    pub fn goals_per_second(&self) -> f64 {
        self.covered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Branch goals attained per nanosecond spent mutating (joins the span
    /// profile: the mutation-phase histogram sum is the denominator).
    /// `None` until mutation spans were recorded.
    pub fn goals_per_mutation_ns(&self) -> Option<f64> {
        let mutation_ns = self.totals.spans.histogram(SpanKind::Mutation).sum();
        if mutation_ns == 0 {
            return None;
        }
        Some(self.covered as f64 / mutation_ns as f64)
    }
}

struct ShardCell {
    executions: u64,
    corpus_len: usize,
    last_merge: Option<Duration>,
    rate: f64,
    /// Cumulative nanoseconds this shard spent blocked on sync rounds, and
    /// its total span-attributed nanoseconds — together the per-worker
    /// sync-wait share the parallel-scaling benchmarks report.
    sync_wait_ns: u64,
    span_ns: u64,
}

struct StatusSink {
    every: Duration,
    last: Option<Instant>,
    last_executions: u64,
    out: Box<dyn Write + Send>,
}

struct PromSink {
    path: PathBuf,
    every: Duration,
    last: Option<Instant>,
}

struct BlockCostCell {
    executions: u64,
    total_ns: u64,
    ns: Histogram,
}

struct Inner {
    totals: ShardStats,
    shards: Vec<ShardCell>,
    covered: usize,
    branch_count: usize,
    violations: u64,
    last_sync_ms: f64,
    jsonl: Option<Box<dyn Write + Send>>,
    jsonl_flush_every: Duration,
    jsonl_last_flush: Option<Instant>,
    status: Option<StatusSink>,
    prom: Option<PromSink>,
    operator_labels: Vec<String>,
    /// Per-block-kind execution cost from profiled replays (`cftcg-trace`).
    /// A `BTreeMap` keeps reports and the Prometheus dump deterministic.
    block_costs: BTreeMap<String, BlockCostCell>,
    /// Coverage/throughput time series, sampled on merge windows.
    series: SeriesRing,
    /// `(t_s, executions)` at the last retained series sample, for the
    /// windowed execution-rate estimate.
    series_last: Option<(f64, u64)>,
    jit_code_bytes: Option<u64>,
    jit_compile_ns: Option<u64>,
    batch: Option<BatchTierStats>,
    /// Per-shard corpus scheduling forensics, replaced wholesale on publish.
    corpus_seeds: Vec<Vec<CorpusSeedReport>>,
    plateaus: u64,
    last_plateau: Option<PlateauSummary>,
}

/// One row of the "hottest blocks" report: accumulated cost of a block
/// kind across profiled replays.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCost {
    /// The block kind's tag (e.g. `Gain`, `Chart`, `Subsystem`).
    pub kind: String,
    /// Block executions observed.
    pub executions: u64,
    /// Total attributed wall-clock nanoseconds.
    pub total_ns: u64,
    /// Mean nanoseconds per execution.
    pub mean_ns: f64,
    /// Upper bound of the 99th-percentile latency bucket.
    pub p99_ns: u64,
}

/// The shared metrics registry and sink multiplexer.
///
/// Cheap to share (`Arc<Telemetry>`); every method takes `&self`. With no
/// sinks attached the registry is a passive accumulator — queries like
/// [`Telemetry::snapshot`] and [`Telemetry::prometheus_text`] work either
/// way.
pub struct Telemetry {
    started: Instant,
    has_jsonl: AtomicBool,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("jsonl", &self.has_jsonl.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A registry with no sinks attached.
    pub fn new() -> Self {
        Telemetry {
            started: Instant::now(),
            has_jsonl: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                totals: ShardStats::default(),
                shards: Vec::new(),
                covered: 0,
                branch_count: 0,
                violations: 0,
                last_sync_ms: 0.0,
                jsonl: None,
                jsonl_flush_every: Duration::from_secs(1),
                jsonl_last_flush: None,
                status: None,
                prom: None,
                operator_labels: Vec::new(),
                block_costs: BTreeMap::new(),
                series: SeriesRing::default(),
                series_last: None,
                jit_code_bytes: None,
                jit_compile_ns: None,
                batch: None,
                corpus_seeds: Vec::new(),
                plateaus: 0,
                last_plateau: None,
            }),
        }
    }

    /// Attaches a JSONL event-log writer (one [`Event`] per line). Callers
    /// should hand in a buffered writer for file sinks; [`Telemetry::flush`]
    /// and campaign end force the buffer out.
    pub fn with_jsonl(self, writer: impl Write + Send + 'static) -> Self {
        self.has_jsonl.store(true, Ordering::Relaxed);
        self.lock().jsonl = Some(Box::new(writer));
        self
    }

    /// Attaches the periodic status line, written to stderr.
    pub fn with_status(self, every: Duration) -> Self {
        self.with_status_to(every, std::io::stderr())
    }

    /// Attaches the periodic status line with a custom writer (tests).
    pub fn with_status_to(self, every: Duration, out: impl Write + Send + 'static) -> Self {
        self.lock().status =
            Some(StatusSink { every, last: None, last_executions: 0, out: Box::new(out) });
        self
    }

    /// Attaches a live Prometheus file sink: the full text exposition is
    /// rewritten to `path` on every elapsed `every` (checked at tick
    /// points) and once more at [`Telemetry::flush`], so file-based
    /// scrapers see the campaign while it runs — not only at exit.
    pub fn with_prom_file(self, path: impl Into<PathBuf>, every: Duration) -> Self {
        self.lock().prom = Some(PromSink { path: path.into(), every, last: None });
        self
    }

    /// Overrides the bounded JSONL flush interval (default 1s): the event
    /// log is flushed whenever an event lands and this much time passed
    /// since the last flush, so `tail -f` of the file sink stays live.
    pub fn with_jsonl_flush_every(self, every: Duration) -> Self {
        self.lock().jsonl_flush_every = every;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Telemetry must never take the engine down: a poisoned registry
        // (a panic while holding the lock) keeps serving the sane parts.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Seconds since the registry was created — the `t` timestamp base for
    /// every event.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Names the operator-attribution slots (idempotent; first caller with
    /// a non-empty list wins).
    pub fn set_operator_labels(&self, labels: &[&str]) {
        let mut inner = self.lock();
        if inner.operator_labels.is_empty() {
            inner.operator_labels = labels.iter().map(|s| (*s).to_string()).collect();
        }
    }

    /// Appends an event to the JSONL log (if attached) and folds any gauges
    /// the event carries (coverage totals, violation count, sync lag) into
    /// the registry so the status line and Prometheus dump stay current.
    pub fn emit(&self, event: &Event) {
        let mut inner = self.lock();
        match event {
            Event::CampaignStart { branch_count, .. } => inner.branch_count = *branch_count,
            Event::NewCoverage { covered, total, .. } => {
                inner.covered = inner.covered.max(*covered);
                inner.branch_count = *total;
            }
            Event::Violation { .. } => inner.violations += 1,
            Event::Plateau { executions, open, t, .. } => {
                inner.plateaus += 1;
                inner.last_plateau =
                    Some(PlateauSummary { t: *t, executions: *executions, open: *open });
            }
            Event::SyncRound { duration_ms, covered, total, .. } => {
                inner.last_sync_ms = *duration_ms;
                inner.covered = inner.covered.max(*covered);
                inner.branch_count = *total;
                inner.totals.sync_duration_ns.record((duration_ms * 1e6) as u64);
                inner.totals.spans.record(SpanKind::SyncRound, (duration_ms * 1e6) as u64);
            }
            _ => {}
        }
        let flush_due = inner
            .jsonl_last_flush
            .is_none_or(|at: Instant| at.elapsed() >= inner.jsonl_flush_every);
        if let Some(w) = &mut inner.jsonl {
            let _ = writeln!(w, "{}", event.to_json());
            // Bounded-interval flush so `tail -f` of the event log works
            // during a campaign, not only after the sink drops.
            if flush_due {
                let _ = w.flush();
                inner.jsonl_last_flush = Some(Instant::now());
            }
        }
    }

    /// Folds a shard's stats *delta* into the campaign totals and updates
    /// that shard's execution-rate estimate and corpus gauge.
    pub fn merge_shard(&self, shard: usize, delta: &ShardStats, corpus_len: usize) {
        let now = self.started.elapsed();
        let mut inner = self.lock();
        inner.totals.merge_from(delta);
        if inner.shards.len() <= shard {
            inner.shards.resize_with(shard + 1, || ShardCell {
                executions: 0,
                corpus_len: 0,
                last_merge: None,
                rate: 0.0,
                sync_wait_ns: 0,
                span_ns: 0,
            });
        }
        let cell = &mut inner.shards[shard];
        cell.executions += delta.executions;
        cell.corpus_len = corpus_len;
        cell.sync_wait_ns += delta.spans.total_ns(SpanKind::SyncWait);
        cell.span_ns += SpanKind::ALL.iter().map(|&k| delta.spans.total_ns(k)).sum::<u64>();
        if let Some(last) = cell.last_merge {
            let window = (now - last).as_secs_f64();
            if window > 1e-6 {
                cell.rate = delta.executions as f64 / window;
            }
        } else if now.as_secs_f64() > 1e-6 {
            cell.rate = delta.executions as f64 / now.as_secs_f64();
        }
        cell.last_merge = Some(now);
        sample_series(&mut inner, now.as_secs_f64());
    }

    /// The periodic maintenance tick: writes the AFL-style status line if
    /// the status sink is attached and its period elapsed (or `force` is
    /// set), rewrites the live Prometheus file if one is attached and due,
    /// and flushes the JSONL sink. Rate-limited internally, so callers can
    /// invoke it once per batch/round without bookkeeping.
    pub fn status_tick(&self, force: bool) {
        let elapsed = self.started.elapsed();
        let mut status_written = false;
        {
            let mut inner = self.lock();
            let status_due = match &inner.status {
                None => false,
                Some(status) => {
                    force || status.last.is_none_or(|at: Instant| at.elapsed() >= status.every)
                }
            };
            if status_due {
                let line = render_status(&inner, elapsed);
                let executions = inner.totals.executions;
                if let Some(status) = &mut inner.status {
                    let _ = writeln!(status.out, "{line}");
                    let _ = status.out.flush();
                    status.last = Some(Instant::now());
                    status.last_executions = executions;
                }
                if let Some(w) = &mut inner.jsonl {
                    let _ = w.flush();
                    inner.jsonl_last_flush = Some(Instant::now());
                }
                status_written = true;
            }
        }
        if status_written {
            self.emit_span_summary();
        }
        self.prom_tick(force);
    }

    /// Rewrites the Prometheus file sink if attached and due. The text is
    /// rendered outside the registry lock ([`Telemetry::prometheus_text`]
    /// snapshots internally).
    fn prom_tick(&self, force: bool) {
        let path = {
            let mut inner = self.lock();
            let Some(prom) = &mut inner.prom else { return };
            let due = force || prom.last.is_none_or(|at: Instant| at.elapsed() >= prom.every);
            if !due {
                return;
            }
            prom.last = Some(Instant::now());
            prom.path.clone()
        };
        let _ = std::fs::write(&path, self.prometheus_text());
    }

    /// Emits a [`Event::SpanSummary`] to the JSONL sink (no-op when no
    /// sink is attached or no span has been recorded yet).
    pub fn emit_span_summary(&self) {
        if !self.has_jsonl.load(Ordering::Relaxed) {
            return;
        }
        let spans = self.lock().totals.spans.reports();
        if spans.is_empty() {
            return;
        }
        self.emit(&Event::SpanSummary { spans, t: self.elapsed_s() });
    }

    /// Records the JIT tier's compilation outcome: resident native code
    /// bytes (gauge) and compile wall-clock cost (gauge + a
    /// [`SpanKind::JitCompile`] span).
    pub fn set_jit_stats(&self, code_bytes: u64, compile_ns: u64) {
        let mut inner = self.lock();
        inner.jit_code_bytes = Some(code_bytes);
        inner.jit_compile_ns = Some(compile_ns);
        inner.totals.spans.record(SpanKind::JitCompile, compile_ns);
    }

    /// Publishes the batched tier's gauges (replaced wholesale; the fuzz
    /// loop calls this on its flush cadence while running `Engine::Batch`).
    pub fn set_batch_stats(&self, stats: BatchTierStats) {
        self.lock().batch = Some(stats);
    }

    /// The retained coverage/throughput time series, oldest first.
    pub fn series_points(&self) -> Vec<SeriesPoint> {
        self.lock().series.points().to_vec()
    }

    /// Publishes one shard's per-corpus-entry scheduling forensics,
    /// replacing that shard's previous publication (gauges, not counters).
    pub fn set_corpus_seeds(&self, shard: usize, seeds: Vec<CorpusSeedReport>) {
        let mut inner = self.lock();
        if inner.corpus_seeds.len() <= shard {
            inner.corpus_seeds.resize_with(shard + 1, Vec::new);
        }
        inner.corpus_seeds[shard] = seeds;
    }

    /// Flushes every sink, emits a final span summary, and rewrites the
    /// Prometheus file if attached (call at campaign end).
    pub fn flush(&self) {
        self.emit_span_summary();
        {
            let mut inner = self.lock();
            let t_s = self.started.elapsed().as_secs_f64();
            sample_series(&mut inner, t_s);
            if let Some(w) = &mut inner.jsonl {
                let _ = w.flush();
            }
            if let Some(status) = &mut inner.status {
                let _ = status.out.flush();
            }
        }
        self.prom_tick(true);
    }

    /// Folds one block kind's profiled cost into the registry (additive and
    /// commutative, like shard merging).
    pub fn merge_block_cost(&self, kind: &str, executions: u64, total_ns: u64, ns: &Histogram) {
        let mut inner = self.lock();
        let cell = inner.block_costs.entry(kind.to_string()).or_insert_with(|| BlockCostCell {
            executions: 0,
            total_ns: 0,
            ns: Histogram::new(),
        });
        cell.executions += executions;
        cell.total_ns = cell.total_ns.saturating_add(total_ns);
        cell.ns.merge_from(ns);
    }

    /// The "hottest blocks" report: per-kind profiled cost, sorted by total
    /// attributed time descending (ties broken by kind name). Empty unless
    /// a profiled replay merged its [`Telemetry::merge_block_cost`] data.
    pub fn block_costs(&self) -> Vec<BlockCost> {
        let inner = self.lock();
        let mut rows: Vec<BlockCost> = inner
            .block_costs
            .iter()
            .map(|(kind, cell)| BlockCost {
                kind: kind.clone(),
                executions: cell.executions,
                total_ns: cell.total_ns,
                mean_ns: if cell.executions > 0 {
                    cell.total_ns as f64 / cell.executions as f64
                } else {
                    0.0
                },
                p99_ns: cell.ns.quantile_upper_bound(0.99),
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.kind.cmp(&b.kind)));
        rows
    }

    /// A point-in-time copy of the merged state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let elapsed = self.started.elapsed();
        let inner = self.lock();
        TelemetrySnapshot {
            totals: inner.totals.clone(),
            covered: inner.covered,
            branch_count: inner.branch_count,
            corpus_size: inner.shards.iter().map(|s| s.corpus_len as u64).sum(),
            elapsed,
            shard_rates: inner.shards.iter().map(|s| s.rate).collect(),
            shard_sync_pct: inner
                .shards
                .iter()
                .map(|s| {
                    if s.span_ns == 0 {
                        0.0
                    } else {
                        100.0 * s.sync_wait_ns as f64 / s.span_ns as f64
                    }
                })
                .collect(),
            operator_labels: inner.operator_labels.clone(),
            violations_seen: inner.violations,
            last_sync_ms: inner.last_sync_ms,
            jit_code_bytes: inner.jit_code_bytes,
            jit_compile_ns: inner.jit_compile_ns,
            batch: inner.batch,
            series: inner.series.points().to_vec(),
            corpus_seeds: inner.corpus_seeds.iter().flatten().cloned().collect(),
            plateaus: inner.plateaus,
            last_plateau: inner.last_plateau.clone(),
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (counters, gauges, per-operator counters with labels, and the three
    /// histograms with cumulative `le` buckets).
    pub fn prometheus_text(&self) -> String {
        let snapshot = self.snapshot();
        let t = &snapshot.totals;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"));
        };
        counter("cftcg_executions_total", "Inputs executed", t.executions);
        counter("cftcg_iterations_total", "Model iterations executed", t.iterations);
        counter("cftcg_discoveries_total", "Inputs that found new coverage", t.discoveries);
        counter("cftcg_violations_total", "Assertion violations witnessed", t.violations);
        counter("cftcg_corpus_inserts_total", "Corpus insertions", t.corpus_inserts);
        counter("cftcg_corpus_evictions_total", "Corpus replacements", t.corpus_evictions);

        out.push_str("# HELP cftcg_covered_branches Branches covered so far\n");
        out.push_str("# TYPE cftcg_covered_branches gauge\n");
        out.push_str(&format!("cftcg_covered_branches {}\n", snapshot.covered));
        out.push_str("# HELP cftcg_branch_count Total branch probes\n");
        out.push_str("# TYPE cftcg_branch_count gauge\n");
        out.push_str(&format!("cftcg_branch_count {}\n", snapshot.branch_count));
        out.push_str("# HELP cftcg_corpus_size Retained corpus entries across shards\n");
        out.push_str("# TYPE cftcg_corpus_size gauge\n");
        out.push_str(&format!("cftcg_corpus_size {}\n", snapshot.corpus_size));
        out.push_str("# HELP cftcg_shard_execs_per_second Latest per-shard execution rate\n");
        out.push_str("# TYPE cftcg_shard_execs_per_second gauge\n");
        for (shard, rate) in snapshot.shard_rates.iter().enumerate() {
            out.push_str(&format!("cftcg_shard_execs_per_second{{shard=\"{shard}\"}} {rate:.1}\n"));
        }
        out.push_str("# HELP cftcg_frontier_open_branches Open branch goals (uncovered probes)\n");
        out.push_str("# TYPE cftcg_frontier_open_branches gauge\n");
        out.push_str(&format!(
            "cftcg_frontier_open_branches {}\n",
            snapshot.branch_count.saturating_sub(snapshot.covered)
        ));
        out.push_str("# HELP cftcg_execs_per_second Campaign-wide execution rate since start\n");
        out.push_str("# TYPE cftcg_execs_per_second gauge\n");
        let secs = snapshot.elapsed.as_secs_f64().max(1e-9);
        out.push_str(&format!("cftcg_execs_per_second {:.1}\n", t.executions as f64 / secs));
        out.push_str("# HELP cftcg_series_points Retained coverage time-series samples\n");
        out.push_str("# TYPE cftcg_series_points gauge\n");
        out.push_str(&format!("cftcg_series_points {}\n", snapshot.series.len()));
        if let Some(bytes) = snapshot.jit_code_bytes {
            out.push_str(
                "# HELP cftcg_jit_code_bytes Native code bytes resident in the JIT cache\n",
            );
            out.push_str("# TYPE cftcg_jit_code_bytes gauge\n");
            out.push_str(&format!("cftcg_jit_code_bytes {bytes}\n"));
        }
        if let Some(ns) = snapshot.jit_compile_ns {
            out.push_str("# HELP cftcg_jit_compile_ns JIT compilation wall-clock cost (ns)\n");
            out.push_str("# TYPE cftcg_jit_compile_ns gauge\n");
            out.push_str(&format!("cftcg_jit_compile_ns {ns}\n"));
        }
        if let Some(batch) = &snapshot.batch {
            out.push_str("# HELP cftcg_batch_width Lanes per batched fuzz round\n");
            out.push_str("# TYPE cftcg_batch_width gauge\n");
            out.push_str(&format!("cftcg_batch_width {}\n", batch.width));
            out.push_str("# HELP cftcg_batch_rounds Batched fuzz rounds executed\n");
            out.push_str("# TYPE cftcg_batch_rounds gauge\n");
            out.push_str(&format!("cftcg_batch_rounds {}\n", batch.rounds));
            out.push_str("# HELP cftcg_batch_commits Lanes committed by the batch tier\n");
            out.push_str("# TYPE cftcg_batch_commits gauge\n");
            out.push_str(&format!("cftcg_batch_commits {}\n", batch.commits));
            out.push_str(
                "# HELP cftcg_batch_abandons Lanes abandoned to mid-round state changes\n",
            );
            out.push_str("# TYPE cftcg_batch_abandons gauge\n");
            out.push_str(&format!("cftcg_batch_abandons {}\n", batch.abandons));
            out.push_str(
                "# HELP cftcg_batch_scalar_lane_fraction Lane executions spent under \
                 divergence masks\n",
            );
            out.push_str("# TYPE cftcg_batch_scalar_lane_fraction gauge\n");
            out.push_str(&format!(
                "cftcg_batch_scalar_lane_fraction {:.4}\n",
                batch.scalar_lane_fraction
            ));
        }

        out.push_str(
            "# HELP cftcg_operator_executions_total Candidate executions per mutation operator\n",
        );
        out.push_str("# TYPE cftcg_operator_executions_total counter\n");
        for op in snapshot.operator_reports() {
            out.push_str(&format!(
                "cftcg_operator_executions_total{{operator=\"{}\"}} {}\n",
                op.name, op.executions
            ));
        }
        out.push_str(
            "# HELP cftcg_operator_coverage_earning_total Coverage-earning executions per mutation operator\n",
        );
        out.push_str("# TYPE cftcg_operator_coverage_earning_total counter\n");
        for op in snapshot.operator_reports() {
            out.push_str(&format!(
                "cftcg_operator_coverage_earning_total{{operator=\"{}\"}} {}\n",
                op.name, op.coverage_earning
            ));
        }

        // The mutation-yield matrix: one labeled counter series per
        // operator × outcome cell, in stable (operator, outcome) order.
        out.push_str(
            "# HELP cftcg_mutation_yield Candidate executions per mutation operator and outcome\n",
        );
        out.push_str("# TYPE cftcg_mutation_yield counter\n");
        for (i, name) in snapshot.operator_labels.iter().enumerate() {
            for outcome in YieldOutcome::ALL {
                out.push_str(&format!(
                    "cftcg_mutation_yield{{kind=\"{name}\",outcome=\"{}\"}} {}\n",
                    outcome.name(),
                    snapshot.totals.yields.get(i, outcome)
                ));
            }
        }
        out.push_str("# HELP cftcg_goals_per_second Branch goals attained per wall-clock second\n");
        out.push_str("# TYPE cftcg_goals_per_second gauge\n");
        out.push_str(&format!("cftcg_goals_per_second {:.4}\n", snapshot.goals_per_second()));
        if let Some(rate) = snapshot.goals_per_mutation_ns() {
            out.push_str(
                "# HELP cftcg_goals_per_mutation_ns Branch goals attained per ns spent mutating\n",
            );
            out.push_str("# TYPE cftcg_goals_per_mutation_ns gauge\n");
            out.push_str(&format!("cftcg_goals_per_mutation_ns {rate:.6e}\n"));
        }
        out.push_str("# HELP cftcg_plateaus_total Plateau events witnessed\n");
        out.push_str("# TYPE cftcg_plateaus_total counter\n");
        out.push_str(&format!("cftcg_plateaus_total {}\n", snapshot.plateaus));

        let blocks = self.block_costs();
        if !blocks.is_empty() {
            out.push_str("# HELP cftcg_block_executions_total Profiled block executions by kind\n");
            out.push_str("# TYPE cftcg_block_executions_total counter\n");
            for row in &blocks {
                out.push_str(&format!(
                    "cftcg_block_executions_total{{kind=\"{}\"}} {}\n",
                    row.kind, row.executions
                ));
            }
            out.push_str(
                "# HELP cftcg_block_exec_ns_total Profiled wall-clock ns attributed by block kind\n",
            );
            out.push_str("# TYPE cftcg_block_exec_ns_total counter\n");
            for row in &blocks {
                out.push_str(&format!(
                    "cftcg_block_exec_ns_total{{kind=\"{}\"}} {}\n",
                    row.kind, row.total_ns
                ));
            }
        }

        // Merge every kind's latency distribution into one histogram for the
        // exposition (per-kind splits stay available via block_costs()).
        let mut block_ns = Histogram::new();
        {
            let inner = self.lock();
            for cell in inner.block_costs.values() {
                block_ns.merge_from(&cell.ns);
            }
        }
        for (name, help, histogram) in [
            ("cftcg_exec_latency_ns", "Per-input execution latency (ns)", &t.exec_latency_ns),
            ("cftcg_mutation_depth", "Stacked mutations per candidate", &t.mutation_depth),
            ("cftcg_sync_duration_ns", "Coordinator sync-round cost (ns)", &t.sync_duration_ns),
            ("cftcg_block_exec_ns", "Profiled per-block execution latency (ns)", &block_ns),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
            for (le, cumulative) in histogram.cumulative_buckets() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", histogram.count()));
            out.push_str(&format!("{name}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{name}_count {}\n", histogram.count()));
        }

        // Span self-profiling: one labeled histogram family, one series per
        // non-empty span kind.
        out.push_str(
            "# HELP cftcg_span_ns Wall-clock attribution per engine phase (ns)\n# TYPE cftcg_span_ns histogram\n",
        );
        for kind in SpanKind::ALL {
            let histogram = t.spans.histogram(kind);
            if histogram.is_empty() {
                continue;
            }
            let label = kind.name();
            for (le, cumulative) in histogram.cumulative_buckets() {
                out.push_str(&format!(
                    "cftcg_span_ns_bucket{{kind=\"{label}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "cftcg_span_ns_bucket{{kind=\"{label}\",le=\"+Inf\"}} {}\n",
                histogram.count()
            ));
            out.push_str(&format!("cftcg_span_ns_sum{{kind=\"{label}\"}} {}\n", histogram.sum()));
            out.push_str(&format!(
                "cftcg_span_ns_count{{kind=\"{label}\"}} {}\n",
                histogram.count()
            ));
        }
        out
    }
}

/// Offers one time-series sample built from the registry's merged state.
/// The ring rate-limits and compacts internally, so this is safe to call on
/// every merge window.
fn sample_series(inner: &mut Inner, t_s: f64) {
    let executions = inner.totals.executions;
    let execs_per_sec = match inner.series_last {
        Some((last_t, last_execs)) if t_s - last_t > 1e-6 => {
            executions.saturating_sub(last_execs) as f64 / (t_s - last_t)
        }
        _ if t_s > 1e-6 => executions as f64 / t_s,
        _ => 0.0,
    };
    let point = SeriesPoint {
        t_s,
        executions,
        covered: inner.covered,
        branch_count: inner.branch_count,
        corpus: inner.shards.iter().map(|s| s.corpus_len as u64).sum(),
        frontier_open: inner.branch_count.saturating_sub(inner.covered),
        execs_per_sec,
    };
    if inner.series.offer(point) {
        inner.series_last = Some((t_s, executions));
    }
}

/// Renders the one-line status summary.
fn render_status(inner: &Inner, elapsed: Duration) -> String {
    let t = &inner.totals;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let overall_rate = t.executions as f64 / secs;
    let corpus: usize = inner.shards.iter().map(|s| s.corpus_len).sum();
    let pct = if inner.branch_count > 0 {
        100.0 * inner.covered as f64 / inner.branch_count as f64
    } else {
        0.0
    };
    let mut line = format!(
        "[{secs:8.1}s] execs {} ({}/s)",
        group_digits(t.executions),
        group_digits(overall_rate as u64)
    );
    if inner.shards.len() > 1 {
        let rates: Vec<f64> = inner.shards.iter().map(|s| s.rate).collect();
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let max = rates.iter().copied().fold(0.0f64, f64::max);
        line.push_str(&format!(
            " | shards {}x ({}-{}/s)",
            inner.shards.len(),
            group_digits(min as u64),
            group_digits(max as u64)
        ));
    }
    line.push_str(&format!(
        " | corpus {corpus} | branches {}/{} {pct:.1}% | viols {}",
        inner.covered, inner.branch_count, inner.violations
    ));
    if inner.last_sync_ms > 0.0 {
        line.push_str(&format!(" | sync {:.1}ms", inner.last_sync_ms));
    }
    if !t.exec_latency_ns.is_empty() {
        line.push_str(&format!(
            " | p50 exec {}",
            format_ns(t.exec_latency_ns.quantile_upper_bound(0.5))
        ));
    }
    line
}

/// `1234567` → `"1,234,567"`.
fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Human-scale nanosecond rendering (`"≤512ns"`, `"≤8.2µs"`, `"≤1.0ms"`).
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("≤{ns}ns")
    } else if ns < 1_000_000 {
        format!("≤{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("≤{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("≤{:.1}s", ns as f64 / 1e9)
    }
}

/// Host metadata as a JSON object string — core count, target architecture,
/// the `CFTCG_WORKERS` and `CFTCG_ENGINE` overrides (if set), and an
/// optional budget — so benchmark artifacts are self-describing.
pub fn host_metadata_json(budget_ms: Option<u64>) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let arch = std::env::consts::ARCH;
    let mut out = format!("{{\"cores\": {cores}, \"arch\": \"{arch}\", \"cftcg_workers\": ");
    match std::env::var("CFTCG_WORKERS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(w) => out.push_str(&w.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"cftcg_engine\": ");
    match std::env::var("CFTCG_ENGINE") {
        Ok(e) if !e.is_empty() => out.push_str(&format!("\"{}\"", e.escape_default())),
        _ => out.push_str("null"),
    }
    out.push_str(", \"budget_ms\": ");
    match budget_ms {
        Some(ms) => out.push_str(&ms.to_string()),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// A thread-safe shared byte buffer usable as a sink in tests and in-memory
/// campaigns: `SharedBuf::new()` clones share one underlying `Vec<u8>`.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered bytes as a UTF-8 string (lossy).
    pub fn contents(&self) -> String {
        let buf = self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_shard_accumulates_and_tracks_rates() {
        let t = Telemetry::new();
        let mut a = ShardStats::new(2);
        a.executions = 100;
        a.iterations = 1_000;
        a.operators.record(0, true);
        let mut b = ShardStats::new(2);
        b.executions = 50;
        b.operators.record(1, false);
        t.merge_shard(0, &a, 10);
        t.merge_shard(1, &b, 20);
        let snap = t.snapshot();
        assert_eq!(snap.totals.executions, 150);
        assert_eq!(snap.totals.iterations, 1_000);
        assert_eq!(snap.corpus_size, 30);
        assert_eq!(snap.shard_rates.len(), 2);
        assert_eq!(snap.totals.operators.executions, vec![1, 1]);
        assert_eq!(snap.totals.operators.coverage_earning, vec![1, 0]);
    }

    #[test]
    fn emit_updates_gauges_and_writes_jsonl() {
        let buf = SharedBuf::new();
        let t = Telemetry::new().with_jsonl(buf.clone());
        t.emit(&Event::NewCoverage { shard: 0, executions: 5, covered: 3, total: 10, t: 0.1 });
        t.emit(&Event::Violation { shard: 0, assertion: 1, label: "a".into(), t: 0.2 });
        t.flush();
        let snap = t.snapshot();
        assert_eq!(snap.covered, 3);
        assert_eq!(snap.branch_count, 10);
        assert_eq!(snap.totals.violations, 0, "violations gauge is event-side");
        let contents = buf.contents();
        let lines: Vec<&str> = contents.lines().map(str::trim).collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            json::Json::parse(line).expect("every JSONL line parses");
        }
    }

    #[test]
    fn status_line_renders_all_sections() {
        let buf = SharedBuf::new();
        let t = Telemetry::new().with_status_to(Duration::from_millis(0), buf.clone());
        let mut stats = ShardStats::new(1);
        stats.executions = 1_234;
        stats.exec_latency_ns.record(5_000);
        t.merge_shard(0, &stats, 17);
        t.emit(&Event::NewCoverage { shard: 0, executions: 10, covered: 4, total: 8, t: 0.1 });
        t.status_tick(true);
        let line = buf.contents();
        assert!(line.contains("execs 1,234"), "{line}");
        assert!(line.contains("corpus 17"), "{line}");
        assert!(line.contains("branches 4/8 50.0%"), "{line}");
        assert!(line.contains("p50 exec"), "{line}");
    }

    #[test]
    fn prometheus_dump_is_well_formed() {
        let t = Telemetry::new();
        t.set_operator_labels(&["EraseTuples", "InsertTuple"]);
        let mut stats = ShardStats::new(2);
        stats.executions = 7;
        stats.exec_latency_ns.record(100);
        stats.operators.record(0, true);
        t.merge_shard(0, &stats, 3);
        let text = t.prometheus_text();
        assert!(text.contains("cftcg_executions_total 7"));
        assert!(text.contains("cftcg_operator_executions_total{operator=\"EraseTuples\"} 1"));
        assert!(text.contains("cftcg_exec_latency_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cftcg_exec_latency_ns_count 1"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
        }
    }

    #[test]
    fn prometheus_exposition_covers_span_gauge_and_series_families() {
        let t = Telemetry::new();
        let mut stats = ShardStats::new(0);
        stats.executions = 1_000;
        stats.spans.record(SpanKind::Mutation, 400);
        stats.spans.record(SpanKind::Execution, 3_000);
        stats.spans.record(SpanKind::Execution, 5_000);
        t.merge_shard(0, &stats, 4);
        t.emit(&Event::NewCoverage { shard: 0, executions: 10, covered: 30, total: 56, t: 0.1 });
        t.set_jit_stats(8_192, 250_000);
        let text = t.prometheus_text();

        // New gauge families.
        assert!(text.contains("# TYPE cftcg_frontier_open_branches gauge"), "{text}");
        assert!(text.contains("cftcg_frontier_open_branches 26"), "{text}");
        assert!(text.contains("# TYPE cftcg_execs_per_second gauge"), "{text}");
        assert!(text.contains("cftcg_jit_code_bytes 8192"), "{text}");
        assert!(text.contains("cftcg_jit_compile_ns 250000"), "{text}");
        // Time-series gauge: merge_shard sampled at least one point.
        assert!(text.contains("# TYPE cftcg_series_points gauge"), "{text}");
        assert!(text.contains("cftcg_series_points 1"), "{text}");

        // Labeled span histogram family: per-kind bucket/sum/count series,
        // cumulative buckets monotone, count consistent.
        assert!(text.contains("# TYPE cftcg_span_ns histogram"), "{text}");
        assert!(text.contains("cftcg_span_ns_count{kind=\"mutation\"} 1"), "{text}");
        assert!(text.contains("cftcg_span_ns_count{kind=\"execution\"} 2"), "{text}");
        assert!(text.contains("cftcg_span_ns_sum{kind=\"execution\"} 8000"), "{text}");
        assert!(text.contains("cftcg_span_ns_count{kind=\"jit_compile\"} 1"), "{text}");
        let exec_buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("cftcg_span_ns_bucket{kind=\"execution\""))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!exec_buckets.is_empty());
        assert!(exec_buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative: {exec_buckets:?}");
        assert_eq!(*exec_buckets.last().unwrap(), 2, "+Inf bucket equals count");

        // Every non-comment line still parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
        }
    }

    #[test]
    fn prom_file_sink_rewrites_live() {
        let dir = std::env::temp_dir().join(format!("cftcg-prom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        let t = Telemetry::new().with_prom_file(&path, Duration::from_millis(0));
        let mut stats = ShardStats::new(0);
        stats.executions = 5;
        t.merge_shard(0, &stats, 1);
        t.status_tick(false);
        let first = std::fs::read_to_string(&path).expect("prom file written mid-campaign");
        assert!(first.contains("cftcg_executions_total 5"), "{first}");
        stats.executions = 2;
        t.merge_shard(0, &stats, 1);
        t.status_tick(false);
        let second = std::fs::read_to_string(&path).unwrap();
        assert!(second.contains("cftcg_executions_total 7"), "rewritten live: {second}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_flushes_on_bounded_interval() {
        let buf = SharedBuf::new();
        // SharedBuf "flushes" on every write, so observe the interval logic
        // indirectly: a zero interval flushes on every emit without error,
        // and events stay parseable.
        let t = Telemetry::new()
            .with_jsonl(buf.clone())
            .with_jsonl_flush_every(Duration::from_millis(0));
        for i in 0..3 {
            t.emit(&Event::SeedAdded { shard: 0, executions: i, t: i as f64 });
        }
        let contents = buf.contents();
        assert_eq!(contents.lines().count(), 3);
        for line in contents.lines() {
            json::Json::parse(line).expect("parses");
        }
    }

    #[test]
    fn span_summary_event_rides_the_jsonl_sink() {
        let buf = SharedBuf::new();
        let t = Telemetry::new().with_jsonl(buf.clone());
        let mut stats = ShardStats::new(0);
        stats.spans.record(SpanKind::Execution, 1_000);
        stats.spans.record(SpanKind::SyncWait, 9_000);
        t.merge_shard(0, &stats, 1);
        t.flush();
        let contents = buf.contents();
        let line = contents
            .lines()
            .find(|l| l.contains("span-summary"))
            .expect("flush emits a span summary");
        let parsed = json::Json::parse(line).unwrap();
        let spans = parsed.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("execution"));
        assert_eq!(spans[1].get("name").unwrap().as_str(), Some("sync_wait"));
        assert_eq!(spans[1].get("total_ns").unwrap().as_u64(), Some(9_000));
    }

    #[test]
    fn series_sampling_rides_merge_shard() {
        let t = Telemetry::new();
        t.emit(&Event::NewCoverage { shard: 0, executions: 1, covered: 8, total: 56, t: 0.0 });
        let mut stats = ShardStats::new(0);
        stats.executions = 100;
        t.merge_shard(0, &stats, 7);
        let points = t.series_points();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].executions, 100);
        assert_eq!(points[0].covered, 8);
        assert_eq!(points[0].frontier_open, 48);
        assert_eq!(points[0].corpus, 7);
    }

    #[test]
    fn host_metadata_is_json() {
        let meta = host_metadata_json(Some(3_000));
        let parsed = json::Json::parse(&meta).unwrap();
        assert!(parsed.get("cores").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(parsed.get("budget_ms").unwrap().as_u64(), Some(3_000));
    }

    #[test]
    fn yield_matrix_merges_commutatively_and_deltas() {
        let mut a = YieldMatrix::new(2);
        a.record(0, YieldOutcome::Executed);
        a.record(0, YieldOutcome::NewCoverage);
        a.record(1, YieldOutcome::Executed);
        let mut b = YieldMatrix::new(3);
        b.record(2, YieldOutcome::Violation);
        b.record(0, YieldOutcome::Executed);

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.get(0, YieldOutcome::Executed), 2);
        assert_eq!(ab.get(2, YieldOutcome::Violation), 1);
        assert_eq!(ab.total(YieldOutcome::Executed), 3);

        let delta = ab.delta_since(&a);
        assert_eq!(delta.get(0, YieldOutcome::Executed), 1);
        assert_eq!(delta.get(0, YieldOutcome::NewCoverage), 0);
        assert_eq!(delta.get(2, YieldOutcome::Violation), 1);
    }

    #[test]
    fn mutation_yield_family_rides_the_exposition() {
        let t = Telemetry::new();
        t.set_operator_labels(&["EraseTuples", "InsertTuple"]);
        let mut stats = ShardStats::new(2);
        stats.executions = 10;
        stats.yields.record(0, YieldOutcome::Executed);
        stats.yields.record(0, YieldOutcome::CorpusInsert);
        stats.yields.record(1, YieldOutcome::Executed);
        stats.spans.record(SpanKind::Mutation, 5_000);
        t.merge_shard(0, &stats, 2);
        t.emit(&Event::NewCoverage { shard: 0, executions: 10, covered: 4, total: 8, t: 0.1 });
        let text = t.prometheus_text();
        assert!(text.contains("# TYPE cftcg_mutation_yield counter"), "{text}");
        assert!(
            text.contains("cftcg_mutation_yield{kind=\"EraseTuples\",outcome=\"executed\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cftcg_mutation_yield{kind=\"EraseTuples\",outcome=\"corpus_insert\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cftcg_mutation_yield{kind=\"InsertTuple\",outcome=\"violation\"} 0"),
            "{text}"
        );
        assert!(text.contains("# TYPE cftcg_goals_per_second gauge"), "{text}");
        assert!(text.contains("# TYPE cftcg_goals_per_mutation_ns gauge"), "{text}");
        assert!(text.contains("cftcg_plateaus_total 0"), "{text}");
        // Every non-comment line still parses as `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad exposition line: {line}");
        }
        // The derived rate joins span data: covered=4 over 5000 mutation ns.
        let snap = t.snapshot();
        assert_eq!(snap.goals_per_mutation_ns(), Some(4.0 / 5_000.0));
        let rows = snap.yield_reports();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "EraseTuples");
        assert_eq!(rows[0].corpus_insert, 1);
    }

    #[test]
    fn corpus_seeds_and_plateau_fold_into_the_snapshot() {
        let t = Telemetry::new();
        t.set_corpus_seeds(
            1,
            vec![CorpusSeedReport {
                id: 7,
                size_bytes: 24,
                metric: 3,
                new_branches: 1,
                energy: 36,
                selections: 5,
                children: 2,
                descendant_goals: 4,
                age_executions: 100,
            }],
        );
        t.emit(&Event::Plateau {
            shard: 0,
            executions: 2_000,
            window: 1_000,
            covered: 5,
            total: 10,
            open: 5,
            frontier: vec![PlateauGoal { label: "g".into(), cause: "mcdc-pair".into() }],
            t: 1.5,
        });
        let snap = t.snapshot();
        assert_eq!(snap.corpus_seeds.len(), 1);
        assert_eq!(snap.corpus_seeds[0].id, 7);
        assert_eq!(snap.corpus_seeds[0].descendant_goals, 4);
        assert_eq!(snap.plateaus, 1);
        let plateau = snap.last_plateau.expect("plateau folded");
        assert_eq!(plateau.executions, 2_000);
        assert_eq!(plateau.open, 5);
        // Re-publishing shard 1 replaces, never accumulates.
        t.set_corpus_seeds(1, Vec::new());
        assert!(t.snapshot().corpus_seeds.is_empty());
    }

    #[test]
    fn group_digits_inserts_separators() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567), "1,234,567");
    }
}
