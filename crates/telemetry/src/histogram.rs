//! A log₂-scale histogram for latency- and size-shaped measurements.
//!
//! Values spanning many orders of magnitude (execution latency in
//! nanoseconds, sync-round cost, mutation stacking depth) are bucketed by
//! their bit length: bucket `b ≥ 1` covers `[2^(b-1), 2^b - 1]`, bucket 0
//! holds exact zeros. Recording is two adds and a shift — cheap enough for
//! the fuzzing hot loop — and merging is element-wise addition, so per-shard
//! histograms fold into campaign totals at sync rounds without locks in the
//! workers.

/// Number of buckets: one for zero plus one per possible bit length.
pub const BUCKETS: usize = 65;

/// A fixed-shape log₂ histogram with a total count and saturating sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold (inclusive).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// The smallest value bucket `index` can hold (inclusive).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ..= 1.0`): the upper bound
    /// of the first bucket whose cumulative count reaches `q · count`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= threshold {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }

    /// Folds another histogram into this one (element-wise addition).
    pub fn merge_from(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The difference `self − baseline`, assuming `baseline` is an earlier
    /// snapshot of this histogram (all counters monotone). Used to turn
    /// cumulative per-shard stats into per-sync-round deltas.
    pub fn delta_since(&self, baseline: &Histogram) -> Histogram {
        let mut delta = Histogram::new();
        for (i, (now, base)) in self.buckets.iter().zip(&baseline.buckets).enumerate() {
            delta.buckets[i] = now.saturating_sub(*base);
        }
        delta.count = self.count.saturating_sub(baseline.count);
        delta.sum = self.sum.saturating_sub(baseline.sum);
        delta
    }

    /// Non-empty buckets as `(inclusive upper bound, cumulative count)`
    /// pairs, in ascending bound order — the shape Prometheus histogram
    /// exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((Self::bucket_upper_bound(i), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_land_in_distinct_buckets() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantile_bounds_bracket_the_data() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1060);
        // p50 upper bound must cover 20 (second value) but not exceed 31
        // (the bucket holding 20 is [16, 31]).
        assert_eq!(h.quantile_upper_bound(0.5), 31);
        assert!(h.quantile_upper_bound(1.0) >= 1000);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let mut h = Histogram::new();
        for v in 0..200u64 {
            h.record(v * v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "bounds ascend");
            assert!(pair[0].1 < pair[1].1, "counts cumulative");
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(100);
        let snapshot = h.clone();
        h.record(7);
        let delta = h.delta_since(&snapshot);
        assert_eq!(delta.count(), 1);
        assert_eq!(delta.sum(), 7);
        let mut rebuilt = snapshot.clone();
        rebuilt.merge_from(&delta);
        assert_eq!(rebuilt, h, "snapshot + delta == current");
    }
}
