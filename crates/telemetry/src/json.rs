//! Minimal JSON support for the telemetry layer: an escaping writer used by
//! the event serializer and a recursive-descent parser used by the `report`
//! renderer and the JSONL round-trip tests.
//!
//! Hand-rolled because the workspace builds offline (no serde) and the event
//! schema is tiny; the parser accepts all of RFC 8259 except that numbers
//! are read as `f64` (every value the sinks emit fits losslessly — counters
//! are only rendered up to 2^53).

use std::fmt;

/// A parsed JSON value. Objects preserve key order (the schema is
/// hand-written, so order is meaningful to human readers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document. Trailing non-whitespace is an
    /// error (each JSONL line must be exactly one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after value"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: peek for a low half.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10) as u32
                                        + (low - 0xDC00) as u32;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code as u32)
                            };
                            out.push(ch.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid; find the char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return Err(self.error("bad \\u escape")),
            };
            code = code << 4 | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("invalid number"))
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON number. Non-finite values (unrepresentable in
/// JSON) are rendered as `null` — the sinks never emit them, but a corrupt
/// measurement must not corrupt the whole log line.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's float Display is always plain decimal — valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"type":"x","n":1.5,"neg":-2,"arr":[1,true,null,"s"],"o":{"k":"v"}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-2.0));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::Bool(true));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\te\u{1}f");
        let parsed = Json::parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn non_finite_floats_render_null() {
        let mut out = String::new();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, 0.25);
        assert_eq!(out, "0.25");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
