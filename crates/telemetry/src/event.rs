//! The campaign event schema: everything the JSONL sink can log.
//!
//! One event per line, serialized as a flat JSON object with a `"type"`
//! discriminator and a `"t"` wall-clock offset in seconds since the
//! campaign started. The schema is documented in DESIGN.md §5c and consumed
//! by `cftcg report`.

use crate::json::{push_json_f64, push_json_str};
use crate::span::SpanReport;

/// Per-operator attribution snapshot carried by [`Event::CampaignEnd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorReport {
    /// Mutation-operator name (Table 1 spelling, e.g. `EraseTuples`).
    pub name: String,
    /// Candidate executions whose mutation chain included this operator.
    pub executions: u64,
    /// Of those, how many earned new coverage.
    pub coverage_earning: u64,
}

/// One mutation operator's yield-matrix row, carried by
/// [`Event::CampaignEnd`] (and the snapshot/report surfaces).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct YieldReport {
    /// Mutation-operator name (Table 1 spelling).
    pub name: String,
    /// Candidate executions whose mutation chain included this operator.
    pub executed: u64,
    /// Of those, how many covered at least one new branch.
    pub new_coverage: u64,
    /// Of those, how many were committed to the corpus.
    pub corpus_insert: u64,
    /// Of those, how many first witnessed an assertion violation.
    pub violation: u64,
}

/// One still-open goal named by a [`Event::Plateau`] frontier diff: the
/// goal's human-readable label and its frontier cause classification tag
/// (pre-rendered by the fuzz layer — telemetry stays coverage-agnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlateauGoal {
    /// The goal label (e.g. `charge_ok outcome=true`).
    pub label: String,
    /// The frontier cause tag (e.g. `unreached-decision`, `mcdc-pair`).
    pub cause: String,
}

/// A campaign event. Field names below match the JSON keys exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The campaign began: identity and shape of the run.
    CampaignStart {
        /// Model name.
        model: String,
        /// Base RNG seed.
        seed: u64,
        /// Worker-shard count (1 = sequential).
        workers: usize,
        /// Wall-clock budget in milliseconds (`None` for execution budgets).
        budget_ms: Option<u64>,
        /// Total branch probes in the instrumentation map.
        branch_count: usize,
    },
    /// An externally supplied seed input entered the corpus.
    SeedAdded {
        /// Originating shard.
        shard: usize,
        /// Executions completed when the seed was absorbed.
        executions: u64,
        /// Seconds since campaign start.
        t: f64,
    },
    /// An input covered at least one new branch and was emitted as a test
    /// case. In parallel campaigns these carry *global* novelty (judged by
    /// the coordinator's re-execution), so `covered` is monotone.
    NewCoverage {
        /// Discovering shard.
        shard: usize,
        /// Executions completed at discovery.
        executions: u64,
        /// Total branches covered after this input.
        covered: usize,
        /// Total branch probes.
        total: usize,
        /// Seconds since campaign start.
        t: f64,
    },
    /// First witness for an assertion violation.
    Violation {
        /// Discovering shard.
        shard: usize,
        /// Assertion index in the instrumentation map.
        assertion: usize,
        /// Assertion label.
        label: String,
        /// Seconds since campaign start.
        t: f64,
    },
    /// The corpus replaced a retained entry (churn signal).
    CorpusEvict {
        /// Shard whose corpus evicted.
        shard: usize,
        /// Corpus size after the eviction.
        corpus_len: usize,
        /// Seconds since campaign start.
        t: f64,
    },
    /// Lineage of a newly emitted test case: the mutation round that
    /// produced it and its ancestry links, keyed by stable shard-strided
    /// case ids. One event per suite entry, emitted right after its
    /// `new-coverage` event, so the JSONL stream carries the full lineage
    /// DAG of the emitted suite.
    CaseLineage {
        /// Shard that minted the case.
        shard: usize,
        /// Stable case id (shard-strided).
        case: u64,
        /// Parent case id (`None` for bootstrap tuples and seeds).
        parent: Option<u64>,
        /// Crossover partner id, when `TuplesCrossOver` consulted one.
        crossover: Option<u64>,
        /// Mutation operators applied, in order (Table 1 spellings).
        ops: Vec<String>,
        /// Campaign executions when the case was emitted.
        executions: u64,
        /// Seconds since campaign start.
        t: f64,
    },
    /// The parallel coordinator finished a sync round.
    SyncRound {
        /// Round index (0-based).
        round: u64,
        /// Coordinator merge cost for this round, in milliseconds.
        duration_ms: f64,
        /// Candidate cases accepted as globally novel.
        accepted: usize,
        /// Corpus entries broadcast to other shards.
        broadcast: usize,
        /// Global executions after the round.
        executions: u64,
        /// Global branches covered after the round.
        covered: usize,
        /// Total branch probes.
        total: usize,
        /// Seconds since campaign start.
        t: f64,
    },
    /// Periodic span self-profiling summary: aggregate wall-clock
    /// attribution per engine phase (emitted on status ticks and at
    /// campaign end when spans were recorded).
    SpanSummary {
        /// One row per non-empty span kind, in taxonomy order.
        spans: Vec<SpanReport>,
        /// Seconds since campaign start.
        t: f64,
    },
    /// One point of a benchmark coverage-growth series (used by the bench
    /// binaries instead of ad-hoc CSV plumbing).
    BenchPoint {
        /// Generating tool (`CFTCG`, `SLDV`, …).
        tool: String,
        /// Model name.
        model: String,
        /// Series timestamp in seconds.
        t: f64,
        /// Branches covered at `t`.
        covered: usize,
        /// Total branch probes.
        total: usize,
    },
    /// The coverage frontier stalled: a full detection window of executions
    /// elapsed without a single new goal. Carries a frontier diff naming
    /// the still-open goals and their cause classifications, so a stalled
    /// campaign explains *what* it is stuck on. Fires once per quiet
    /// window; a campaign that stays stalled emits one event per window.
    Plateau {
        /// Shard that detected the stall (coordinator = 0).
        shard: usize,
        /// Executions completed when the window closed.
        executions: u64,
        /// Detection window width, in executions.
        window: u64,
        /// Branches covered (unchanged across the whole window).
        covered: usize,
        /// Total branch probes.
        total: usize,
        /// Open goals at detection time (full frontier size; `frontier`
        /// below may be capped).
        open: u64,
        /// The frontier diff: still-open goals with cause classifications
        /// (capped to the first [`PLATEAU_FRONTIER_CAP`] entries).
        frontier: Vec<PlateauGoal>,
        /// Seconds since campaign start.
        t: f64,
    },
    /// The campaign finished: final aggregates and operator attribution.
    CampaignEnd {
        /// Inputs executed.
        executions: u64,
        /// Model iterations executed.
        iterations: u64,
        /// Branches covered at the end.
        covered: usize,
        /// Total branch probes.
        total: usize,
        /// Distinct assertions violated.
        violations: usize,
        /// Wall-clock seconds the campaign ran.
        elapsed_s: f64,
        /// Iteration throughput.
        iterations_per_second: f64,
        /// Per-operator attribution.
        operators: Vec<OperatorReport>,
        /// Per-operator × per-outcome mutation yield (empty when the
        /// campaign ran without yield accounting).
        yields: Vec<YieldReport>,
    },
}

/// Upper bound on frontier rows carried by one [`Event::Plateau`] — keeps
/// the JSONL line bounded on models with huge open frontiers.
pub const PLATEAU_FRONTIER_CAP: usize = 32;

impl Event {
    /// The `"type"` discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CampaignStart { .. } => "campaign-start",
            Event::SeedAdded { .. } => "seed-added",
            Event::NewCoverage { .. } => "new-coverage",
            Event::Violation { .. } => "violation",
            Event::CorpusEvict { .. } => "corpus-evict",
            Event::CaseLineage { .. } => "case-lineage",
            Event::SyncRound { .. } => "sync-round",
            Event::SpanSummary { .. } => "span-summary",
            Event::BenchPoint { .. } => "bench-point",
            Event::Plateau { .. } => "plateau",
            Event::CampaignEnd { .. } => "campaign-end",
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"type\":");
        push_json_str(&mut out, self.kind());
        match self {
            Event::CampaignStart { model, seed, workers, budget_ms, branch_count } => {
                out.push_str(",\"model\":");
                push_json_str(&mut out, model);
                out.push_str(&format!(",\"seed\":{seed},\"workers\":{workers}"));
                match budget_ms {
                    Some(ms) => out.push_str(&format!(",\"budget_ms\":{ms}")),
                    None => out.push_str(",\"budget_ms\":null"),
                }
                out.push_str(&format!(",\"branch_count\":{branch_count}"));
            }
            Event::SeedAdded { shard, executions, t } => {
                out.push_str(&format!(",\"shard\":{shard},\"executions\":{executions},\"t\":"));
                push_json_f64(&mut out, *t);
            }
            Event::NewCoverage { shard, executions, covered, total, t } => {
                out.push_str(&format!(
                    ",\"shard\":{shard},\"executions\":{executions},\"covered\":{covered},\"total\":{total},\"t\":"
                ));
                push_json_f64(&mut out, *t);
            }
            Event::Violation { shard, assertion, label, t } => {
                out.push_str(&format!(",\"shard\":{shard},\"assertion\":{assertion},\"label\":"));
                push_json_str(&mut out, label);
                out.push_str(",\"t\":");
                push_json_f64(&mut out, *t);
            }
            Event::CorpusEvict { shard, corpus_len, t } => {
                out.push_str(&format!(",\"shard\":{shard},\"corpus_len\":{corpus_len},\"t\":"));
                push_json_f64(&mut out, *t);
            }
            Event::CaseLineage { shard, case, parent, crossover, ops, executions, t } => {
                out.push_str(&format!(",\"shard\":{shard},\"case\":{case},\"parent\":"));
                match parent {
                    Some(p) => out.push_str(&p.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(",\"crossover\":");
                match crossover {
                    Some(c) => out.push_str(&c.to_string()),
                    None => out.push_str("null"),
                }
                out.push_str(",\"ops\":[");
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(&mut out, op);
                }
                out.push_str(&format!("],\"executions\":{executions},\"t\":"));
                push_json_f64(&mut out, *t);
            }
            Event::SyncRound {
                round,
                duration_ms,
                accepted,
                broadcast,
                executions,
                covered,
                total,
                t,
            } => {
                out.push_str(&format!(",\"round\":{round},\"duration_ms\":"));
                push_json_f64(&mut out, *duration_ms);
                out.push_str(&format!(
                    ",\"accepted\":{accepted},\"broadcast\":{broadcast},\"executions\":{executions},\"covered\":{covered},\"total\":{total},\"t\":"
                ));
                push_json_f64(&mut out, *t);
            }
            Event::SpanSummary { spans, t } => {
                out.push_str(",\"spans\":[");
                for (i, span) in spans.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, span.name);
                    out.push_str(&format!(
                        ",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                        span.count, span.total_ns, span.p50_ns, span.p99_ns
                    ));
                }
                out.push_str("],\"t\":");
                push_json_f64(&mut out, *t);
            }
            Event::BenchPoint { tool, model, t, covered, total } => {
                out.push_str(",\"tool\":");
                push_json_str(&mut out, tool);
                out.push_str(",\"model\":");
                push_json_str(&mut out, model);
                out.push_str(",\"t\":");
                push_json_f64(&mut out, *t);
                out.push_str(&format!(",\"covered\":{covered},\"total\":{total}"));
            }
            Event::Plateau { shard, executions, window, covered, total, open, frontier, t } => {
                out.push_str(&format!(
                    ",\"shard\":{shard},\"executions\":{executions},\"window\":{window},\"covered\":{covered},\"total\":{total},\"open\":{open},\"frontier\":["
                ));
                for (i, goal) in frontier.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"label\":");
                    push_json_str(&mut out, &goal.label);
                    out.push_str(",\"cause\":");
                    push_json_str(&mut out, &goal.cause);
                    out.push('}');
                }
                out.push_str("],\"t\":");
                push_json_f64(&mut out, *t);
            }
            Event::CampaignEnd {
                executions,
                iterations,
                covered,
                total,
                violations,
                elapsed_s,
                iterations_per_second,
                operators,
                yields,
            } => {
                out.push_str(&format!(
                    ",\"executions\":{executions},\"iterations\":{iterations},\"covered\":{covered},\"total\":{total},\"violations\":{violations},\"elapsed_s\":"
                ));
                push_json_f64(&mut out, *elapsed_s);
                out.push_str(",\"iterations_per_second\":");
                push_json_f64(&mut out, *iterations_per_second);
                out.push_str(",\"operators\":[");
                for (i, op) in operators.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, &op.name);
                    out.push_str(&format!(
                        ",\"executions\":{},\"coverage_earning\":{}}}",
                        op.executions, op.coverage_earning
                    ));
                }
                out.push_str("],\"yields\":[");
                for (i, row) in yields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, &row.name);
                    out.push_str(&format!(
                        ",\"executed\":{},\"new_coverage\":{},\"corpus_insert\":{},\"violation\":{}}}",
                        row.executed, row.new_coverage, row.corpus_insert, row.violation
                    ));
                }
                out.push(']');
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn every_event_serializes_to_parseable_json() {
        let events = [
            Event::CampaignStart {
                model: "SolarPV".into(),
                seed: 7,
                workers: 4,
                budget_ms: Some(3_000),
                branch_count: 56,
            },
            Event::SeedAdded { shard: 0, executions: 1, t: 0.01 },
            Event::NewCoverage { shard: 2, executions: 512, covered: 12, total: 56, t: 0.5 },
            Event::Violation {
                shard: 1,
                assertion: 0,
                label: "overcharge \"guard\"".into(),
                t: 1.0,
            },
            Event::CorpusEvict { shard: 0, corpus_len: 256, t: 2.0 },
            Event::CaseLineage {
                shard: 1,
                case: (1 << 40) + 3,
                parent: Some(1 << 40),
                crossover: None,
                ops: vec!["InsertTuple".into(), "ChangeBinaryFloat".into()],
                executions: 741,
                t: 1.5,
            },
            Event::SyncRound {
                round: 3,
                duration_ms: 1.25,
                accepted: 2,
                broadcast: 2,
                executions: 4096,
                covered: 30,
                total: 56,
                t: 2.5,
            },
            Event::SpanSummary {
                spans: vec![SpanReport {
                    name: "execution",
                    count: 4_096,
                    total_ns: 9_000_000,
                    p50_ns: 2_047,
                    p99_ns: 16_383,
                }],
                t: 2.75,
            },
            Event::BenchPoint {
                tool: "CFTCG".into(),
                model: "TCP".into(),
                t: 0.2,
                covered: 9,
                total: 40,
            },
            Event::Plateau {
                shard: 0,
                executions: 9_000,
                window: 4_096,
                covered: 48,
                total: 56,
                open: 8,
                frontier: vec![PlateauGoal {
                    label: "charge_ok \"outcome\"=true".into(),
                    cause: "mcdc-pair".into(),
                }],
                t: 2.9,
            },
            Event::CampaignEnd {
                executions: 10_000,
                iterations: 1_000_000,
                covered: 50,
                total: 56,
                violations: 1,
                elapsed_s: 3.0,
                iterations_per_second: 333_333.3,
                operators: vec![OperatorReport {
                    name: "EraseTuples".into(),
                    executions: 900,
                    coverage_earning: 12,
                }],
                yields: vec![YieldReport {
                    name: "EraseTuples".into(),
                    executed: 900,
                    new_coverage: 12,
                    corpus_insert: 40,
                    violation: 1,
                }],
            },
        ];
        for event in &events {
            let line = event.to_json();
            let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(parsed.get("type").unwrap().as_str(), Some(event.kind()));
        }
    }

    #[test]
    fn case_lineage_round_trips_ids_and_ops() {
        let event = Event::CaseLineage {
            shard: 0,
            case: 5,
            parent: None,
            crossover: Some(2),
            ops: vec!["EraseTuples".into()],
            executions: 10,
            t: 0.25,
        };
        let parsed = Json::parse(&event.to_json()).unwrap();
        assert_eq!(parsed.get("case").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("parent"), Some(&Json::Null));
        assert_eq!(parsed.get("crossover").unwrap().as_u64(), Some(2));
        let ops = parsed.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops[0].as_str(), Some("EraseTuples"));
    }

    #[test]
    fn campaign_end_operators_round_trip() {
        let event = Event::CampaignEnd {
            executions: 1,
            iterations: 2,
            covered: 3,
            total: 4,
            violations: 0,
            elapsed_s: 0.5,
            iterations_per_second: 4.0,
            operators: vec![
                OperatorReport { name: "A".into(), executions: 10, coverage_earning: 2 },
                OperatorReport { name: "B".into(), executions: 20, coverage_earning: 0 },
            ],
            yields: vec![YieldReport {
                name: "A".into(),
                executed: 10,
                new_coverage: 2,
                corpus_insert: 5,
                violation: 0,
            }],
        };
        let parsed = Json::parse(&event.to_json()).unwrap();
        let ops = parsed.get("operators").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].get("name").unwrap().as_str(), Some("A"));
        assert_eq!(ops[1].get("executions").unwrap().as_u64(), Some(20));
        let yields = parsed.get("yields").unwrap().as_array().unwrap();
        assert_eq!(yields.len(), 1);
        assert_eq!(yields[0].get("corpus_insert").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn plateau_frontier_round_trips() {
        let event = Event::Plateau {
            shard: 0,
            executions: 4_096,
            window: 2_048,
            covered: 10,
            total: 56,
            open: 46,
            frontier: vec![
                PlateauGoal { label: "a".into(), cause: "unreached-decision".into() },
                PlateauGoal { label: "b \"quoted\"".into(), cause: "mcdc-pair".into() },
            ],
            t: 1.0,
        };
        let parsed = Json::parse(&event.to_json()).unwrap();
        assert_eq!(parsed.get("type").unwrap().as_str(), Some("plateau"));
        assert_eq!(parsed.get("open").unwrap().as_u64(), Some(46));
        assert_eq!(parsed.get("window").unwrap().as_u64(), Some(2_048));
        let frontier = parsed.get("frontier").unwrap().as_array().unwrap();
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[1].get("label").unwrap().as_str(), Some("b \"quoted\""));
        assert_eq!(frontier[1].get("cause").unwrap().as_str(), Some("mcdc-pair"));
    }
}
