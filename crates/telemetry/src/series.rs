//! A bounded coverage/throughput time series for live dashboards and the
//! campaign artifact.
//!
//! The registry samples one [`SeriesPoint`] per merge window (rate-limited
//! by a minimum interval); when the ring reaches capacity it *compacts* —
//! every other point is dropped and the minimum interval doubles — so an
//! arbitrarily long campaign is summarized by a bounded, uniformly thinning
//! series (the same trick AFL's `plot_data` uses). Points are appended in
//! time order by the single merging side (coordinator or sequential loop),
//! so the persisted series is deterministic given the sample times.

/// One sample of campaign progress.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Seconds since campaign start.
    pub t_s: f64,
    /// Inputs executed so far.
    pub executions: u64,
    /// Branches covered so far.
    pub covered: usize,
    /// Total branch probes.
    pub branch_count: usize,
    /// Retained corpus entries across shards.
    pub corpus: u64,
    /// Open branch goals (`branch_count - covered`): the frontier the
    /// fuzzer is still chasing.
    pub frontier_open: usize,
    /// Execution rate over the window since the previous sample.
    pub execs_per_sec: f64,
}

impl SeriesPoint {
    /// Coverage percentage at this sample (0 when the model has no probes).
    pub fn coverage_pct(&self) -> f64 {
        if self.branch_count == 0 {
            0.0
        } else {
            100.0 * self.covered as f64 / self.branch_count as f64
        }
    }
}

/// The bounded, self-compacting sample ring.
#[derive(Debug, Clone)]
pub struct SeriesRing {
    points: Vec<SeriesPoint>,
    capacity: usize,
    min_interval_s: f64,
    compactions: u32,
}

impl Default for SeriesRing {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl SeriesRing {
    /// Default ring capacity (samples).
    pub const DEFAULT_CAPACITY: usize = 512;
    /// Initial minimum spacing between samples, seconds.
    pub const INITIAL_INTERVAL_S: f64 = 0.1;

    /// A ring holding at most `capacity` samples (clamped to ≥ 4).
    pub fn new(capacity: usize) -> Self {
        SeriesRing {
            points: Vec::new(),
            capacity: capacity.max(4),
            min_interval_s: Self::INITIAL_INTERVAL_S,
            compactions: 0,
        }
    }

    /// Offers a sample; returns `true` if it was retained. Samples closer
    /// than the current minimum interval to the last retained sample are
    /// rejected (the caller can offer on every merge without bookkeeping).
    pub fn offer(&mut self, point: SeriesPoint) -> bool {
        if let Some(last) = self.points.last() {
            if point.t_s - last.t_s < self.min_interval_s {
                return false;
            }
        }
        self.points.push(point);
        if self.points.len() >= self.capacity {
            // Keep every other sample; double the spacing going forward.
            let mut keep = false;
            self.points.retain(|_| {
                keep = !keep;
                keep
            });
            self.min_interval_s *= 2.0;
            self.compactions += 1;
        }
        true
    }

    /// The retained samples, oldest first.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// How many times the ring halved itself.
    pub fn compactions(&self) -> u32 {
        self.compactions
    }

    /// Current minimum spacing between retained samples, seconds.
    pub fn min_interval_s(&self) -> f64 {
        self.min_interval_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t_s: f64, executions: u64) -> SeriesPoint {
        SeriesPoint {
            t_s,
            executions,
            covered: 10,
            branch_count: 40,
            corpus: 5,
            frontier_open: 30,
            execs_per_sec: 100.0,
        }
    }

    #[test]
    fn rejects_samples_below_the_interval() {
        let mut ring = SeriesRing::new(16);
        assert!(ring.offer(point(0.0, 1)));
        assert!(!ring.offer(point(0.05, 2)), "closer than 0.1s");
        assert!(ring.offer(point(0.2, 3)));
        assert_eq!(ring.points().len(), 2);
    }

    #[test]
    fn compaction_halves_and_doubles_interval() {
        let mut ring = SeriesRing::new(8);
        for i in 0..8 {
            assert!(ring.offer(point(i as f64, i as u64)));
        }
        assert_eq!(ring.compactions(), 1);
        assert_eq!(ring.points().len(), 4);
        assert!((ring.min_interval_s() - 0.2).abs() < 1e-12);
        // Survivors are the even-index samples, still time-ordered.
        let times: Vec<f64> = ring.points().iter().map(|p| p.t_s).collect();
        assert_eq!(times, vec![0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn long_campaign_stays_bounded() {
        let mut ring = SeriesRing::new(64);
        for i in 0..100_000 {
            ring.offer(point(i as f64 * 0.1, i as u64));
        }
        assert!(ring.points().len() < 64);
        assert!(ring.compactions() > 0);
        let times: Vec<f64> = ring.points().iter().map(|p| p.t_s).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "monotone time");
    }

    #[test]
    fn coverage_pct_handles_empty_models() {
        assert_eq!(point(0.0, 0).coverage_pct(), 25.0);
        let mut p = point(0.0, 0);
        p.branch_count = 0;
        assert_eq!(p.coverage_pct(), 0.0);
    }
}
