//! Span-based self-profiling: wall-clock attribution for the fuzzing
//! engine's phases.
//!
//! Spans answer *where does campaign time go* — mutation vs execution vs
//! coverage bookkeeping vs corpus maintenance vs coordinator sync vs JIT
//! compilation — which is exactly the question behind the multi-core
//! scaling numbers in `results/BENCH_parallel.json`.
//!
//! Two complementary representations:
//!
//! * [`SpanStats`] — per-shard log₂ [`Histogram`]s, one per [`SpanKind`],
//!   embedded in `ShardStats` so they ride the existing commutative merge
//!   algebra (record lock-free, fold deltas at sync rounds). This is the
//!   *statistical* view: counts, totals, quantiles, phase percentages.
//! * [`SpanTrace`] — a bounded shared buffer of individual timestamped
//!   [`TraceEvent`]s, exportable as Chrome trace-event JSON
//!   ([`SpanTrace::to_chrome_json`]) loadable in Perfetto or
//!   `chrome://tracing`. Hot kinds are sampled (1-in-N per shard, via
//!   [`SpanSampler`]) so the buffer bounds both memory and lock traffic.
//!
//! Recording is gated by the caller: the fuzzer only reads the clock when a
//! telemetry registry or a trace buffer is attached, so an uninstrumented
//! run pays nothing.

use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::Histogram;

/// The span taxonomy: every profiled phase of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// Building one candidate input: the stacked mutation rounds.
    Mutation = 0,
    /// Executing one candidate through the compiled model.
    Execution = 1,
    /// Booking a discovery: coverage diff, provenance replay, suite append.
    CoverageUpdate = 2,
    /// Inserting (or replacing) a corpus entry.
    CorpusInsert = 3,
    /// Worker-side wait for the coordinator's broadcast (lock-wait signal).
    SyncWait = 4,
    /// Coordinator-side sync-round merge: novelty re-execution + broadcast.
    SyncRound = 5,
    /// Native-code compilation of the model (JIT tier, once per campaign).
    JitCompile = 6,
}

impl SpanKind {
    /// Number of span kinds.
    pub const COUNT: usize = 7;

    /// Every kind, in index order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::Mutation,
        SpanKind::Execution,
        SpanKind::CoverageUpdate,
        SpanKind::CorpusInsert,
        SpanKind::SyncWait,
        SpanKind::SyncRound,
        SpanKind::JitCompile,
    ];

    /// Stable metric/JSON name for the kind.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Mutation => "mutation",
            SpanKind::Execution => "execution",
            SpanKind::CoverageUpdate => "coverage_update",
            SpanKind::CorpusInsert => "corpus_insert",
            SpanKind::SyncWait => "sync_wait",
            SpanKind::SyncRound => "sync_round",
            SpanKind::JitCompile => "jit_compile",
        }
    }

    /// Trace-event sampling factor: hot per-input kinds keep 1-in-N
    /// occurrences so the shared buffer bounds lock traffic; rare
    /// coordinator-scale kinds keep every occurrence.
    pub fn sample_every(self) -> u32 {
        match self {
            SpanKind::Mutation | SpanKind::Execution => 64,
            SpanKind::CorpusInsert => 16,
            _ => 1,
        }
    }
}

/// Per-shard span histograms — one log₂ latency distribution per
/// [`SpanKind`]. Plain data like the rest of `ShardStats`: the owning
/// worker records lock-free and deltas merge commutatively.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    histograms: [Histogram; SpanKind::COUNT],
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats { histograms: std::array::from_fn(|_| Histogram::new()) }
    }
}

/// One row of a span summary: aggregate cost of one span kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Span kind name ([`SpanKind::name`]).
    pub name: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Total attributed wall-clock nanoseconds.
    pub total_ns: u64,
    /// Upper bound of the median latency bucket.
    pub p50_ns: u64,
    /// Upper bound of the 99th-percentile latency bucket.
    pub p99_ns: u64,
}

impl SpanStats {
    /// Empty span stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span occurrence of `kind` lasting `ns` nanoseconds.
    #[inline]
    pub fn record(&mut self, kind: SpanKind, ns: u64) {
        self.histograms[kind as usize].record(ns);
    }

    /// The latency distribution for one kind.
    pub fn histogram(&self, kind: SpanKind) -> &Histogram {
        &self.histograms[kind as usize]
    }

    /// Total attributed nanoseconds for one kind.
    pub fn total_ns(&self, kind: SpanKind) -> u64 {
        self.histograms[kind as usize].sum()
    }

    /// `true` when no span has been recorded at all.
    pub fn is_empty(&self) -> bool {
        self.histograms.iter().all(Histogram::is_empty)
    }

    /// Folds another span block into this one (element-wise addition).
    pub fn merge_from(&mut self, other: &SpanStats) {
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge_from(theirs);
        }
    }

    /// The difference `self − baseline` (both from the same monotone
    /// stream).
    pub fn delta_since(&self, baseline: &SpanStats) -> SpanStats {
        SpanStats {
            histograms: std::array::from_fn(|i| {
                self.histograms[i].delta_since(&baseline.histograms[i])
            }),
        }
    }

    /// Summary rows for every non-empty kind, in taxonomy order.
    pub fn reports(&self) -> Vec<SpanReport> {
        SpanKind::ALL
            .iter()
            .filter(|kind| !self.histogram(**kind).is_empty())
            .map(|&kind| {
                let h = self.histogram(kind);
                SpanReport {
                    name: kind.name(),
                    count: h.count(),
                    total_ns: h.sum(),
                    p50_ns: h.quantile_upper_bound(0.5),
                    p99_ns: h.quantile_upper_bound(0.99),
                }
            })
            .collect()
    }

    /// Percentage of the total attributed time spent in `kind`
    /// (0 when nothing is recorded).
    pub fn phase_pct(&self, kind: SpanKind) -> f64 {
        let total: u64 = self.histograms.iter().map(Histogram::sum).sum();
        if total == 0 {
            0.0
        } else {
            100.0 * self.total_ns(kind) as f64 / total as f64
        }
    }
}

/// The `tid` used for coordinator-side trace events (workers use their
/// shard index).
pub const COORDINATOR_TID: u32 = u32::MAX;

/// One recorded span occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which phase.
    pub kind: SpanKind,
    /// Recording shard ([`COORDINATOR_TID`] for the coordinator).
    pub shard: u32,
    /// Start offset from the trace epoch, nanoseconds.
    pub ts_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

struct TraceInner {
    events: Vec<TraceEvent>,
    dropped: u64,
}

/// A bounded, shared buffer of timestamped span events, writable from every
/// shard and the coordinator, exportable as Chrome trace-event JSON.
///
/// Cloning shares the buffer. Once `capacity` events are held, further
/// events are counted as dropped rather than grown — a campaign's opening
/// window is captured in full, which is where JIT compile, corpus seeding,
/// and the sync cadence are visible.
#[derive(Clone)]
pub struct SpanTrace {
    epoch: Instant,
    capacity: usize,
    inner: Arc<Mutex<TraceInner>>,
}

impl std::fmt::Debug for SpanTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanTrace").field("capacity", &self.capacity).finish_non_exhaustive()
    }
}

impl Default for SpanTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTrace {
    /// Default buffer capacity (events).
    pub const DEFAULT_CAPACITY: usize = 262_144;

    /// A trace buffer with the default capacity; the epoch is now.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A trace buffer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        SpanTrace {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Arc::new(Mutex::new(TraceInner { events: Vec::new(), dropped: 0 })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one span occurrence bounded by two clock readings.
    pub fn record_span(&self, kind: SpanKind, shard: u32, start: Instant, end: Instant) {
        let ts_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(start).as_nanos() as u64;
        self.record_raw(kind, shard, ts_ns, dur_ns);
    }

    /// Records one span from raw epoch offsets — for phases whose clock
    /// readings are not available as [`Instant`]s (e.g. a lazy JIT compile
    /// that happened inside the engine before its cost was reported).
    pub fn record_raw(&self, kind: SpanKind, shard: u32, ts_ns: u64, dur_ns: u64) {
        let mut inner = self.lock();
        if inner.events.len() >= self.capacity {
            inner.dropped += 1;
        } else {
            inner.events.push(TraceEvent { kind, shard, ts_ns, dur_ns });
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Renders the buffer as Chrome trace-event JSON (the object form, with
    /// `traceEvents`), loadable in Perfetto or `chrome://tracing`.
    /// Timestamps are microseconds from the trace epoch; each shard is a
    /// named thread, the coordinator is `tid` [`COORDINATOR_TID`].
    pub fn to_chrome_json(&self) -> String {
        let (mut events, dropped) = {
            let inner = self.lock();
            (inner.events.clone(), inner.dropped)
        };
        events.sort_by_key(|e| (e.ts_ns, e.shard));
        let mut tids: Vec<u32> = events.iter().map(|e| e.shard).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"cftcg\",");
        out.push_str(&format!("\"dropped\":{dropped}}},\"traceEvents\":[\n"));
        let mut first = true;
        for tid in &tids {
            let name = if *tid == COORDINATOR_TID {
                "coordinator".to_string()
            } else {
                format!("shard {tid}")
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ));
        }
        for e in &events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                e.kind.name(),
                e.shard,
                e.ts_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace-event JSON to `path`.
    pub fn write_chrome_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

/// A shard-local sampling front end for a [`SpanTrace`]: keeps per-kind
/// occurrence counters *outside* the shared buffer's lock so hot kinds only
/// touch the mutex once per [`SpanKind::sample_every`] occurrences.
#[derive(Debug, Clone)]
pub struct SpanSampler {
    trace: SpanTrace,
    shard: u32,
    counters: [u32; SpanKind::COUNT],
}

impl SpanSampler {
    /// A sampler recording as `shard` into `trace`.
    pub fn new(trace: SpanTrace, shard: u32) -> Self {
        SpanSampler { trace, shard, counters: [0; SpanKind::COUNT] }
    }

    /// Re-targets the sampler at another shard id (workers learn their
    /// shard after construction).
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// Offers one span occurrence; forwards 1-in-`sample_every` to the
    /// shared buffer.
    #[inline]
    pub fn record(&mut self, kind: SpanKind, start: Instant, end: Instant) {
        let counter = &mut self.counters[kind as usize];
        *counter += 1;
        if *counter >= kind.sample_every() {
            *counter = 0;
            self.trace.record_span(kind, self.shard, start, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stats_merge_and_delta_round_trip() {
        let mut a = SpanStats::new();
        a.record(SpanKind::Mutation, 100);
        a.record(SpanKind::Execution, 2_000);
        let snapshot = a.clone();
        a.record(SpanKind::Execution, 4_000);
        let delta = a.delta_since(&snapshot);
        assert_eq!(delta.histogram(SpanKind::Execution).count(), 1);
        assert_eq!(delta.histogram(SpanKind::Mutation).count(), 0);
        let mut rebuilt = snapshot.clone();
        rebuilt.merge_from(&delta);
        assert_eq!(rebuilt, a, "snapshot + delta == current");
    }

    #[test]
    fn reports_skip_empty_kinds_and_order_by_taxonomy() {
        let mut s = SpanStats::new();
        s.record(SpanKind::SyncRound, 1_000_000);
        s.record(SpanKind::Mutation, 50);
        let rows = s.reports();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "mutation");
        assert_eq!(rows[1].name, "sync_round");
        assert_eq!(rows[1].total_ns, 1_000_000);
    }

    #[test]
    fn phase_pct_partitions_total_time() {
        let mut s = SpanStats::new();
        s.record(SpanKind::Execution, 750);
        s.record(SpanKind::Mutation, 250);
        assert!((s.phase_pct(SpanKind::Execution) - 75.0).abs() < 1e-9);
        assert!((s.phase_pct(SpanKind::Mutation) - 25.0).abs() < 1e-9);
        assert_eq!(SpanStats::new().phase_pct(SpanKind::Execution), 0.0);
    }

    #[test]
    fn trace_buffer_bounds_and_counts_drops() {
        let trace = SpanTrace::with_capacity(2);
        let t0 = Instant::now();
        for _ in 0..5 {
            trace.record_span(SpanKind::SyncRound, COORDINATOR_TID, t0, Instant::now());
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let trace = SpanTrace::new();
        let t0 = Instant::now();
        trace.record_span(SpanKind::JitCompile, COORDINATOR_TID, t0, Instant::now());
        trace.record_span(SpanKind::SyncRound, 0, t0, Instant::now());
        let json = trace.to_chrome_json();
        let parsed = crate::json::Json::parse(&json).expect("chrome trace json parses");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata events + 2 span events.
        assert_eq!(events.len(), 4);
        let span = events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).unwrap();
        assert!(span.get("ts").is_some() && span.get("dur").is_some());
    }

    #[test]
    fn sampler_downsamples_hot_kinds() {
        let trace = SpanTrace::new();
        let mut sampler = SpanSampler::new(trace.clone(), 3);
        let t0 = Instant::now();
        for _ in 0..128 {
            sampler.record(SpanKind::Execution, t0, Instant::now());
        }
        assert_eq!(trace.len(), 2, "1-in-64 sampling for execution spans");
        for _ in 0..3 {
            sampler.record(SpanKind::SyncWait, t0, Instant::now());
        }
        assert_eq!(trace.len(), 5, "coarse kinds record every occurrence");
    }
}
