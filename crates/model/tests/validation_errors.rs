//! Error-path integration tests for model validation: every rejection the
//! validator promises, demonstrated end to end.

use cftcg_model::expr::parse_stmts;
use cftcg_model::{
    BlockKind, Chart, DataType, FunctionDef, Model, ModelBuilder, ModelError, PortRef, State, Value,
};

fn gain_subsystem(input_type: DataType) -> Model {
    let mut b = ModelBuilder::new("inner");
    let u = b.inport("u", input_type);
    let g = b.add("g", BlockKind::Gain { gain: 2.0 });
    let y = b.outport("y");
    b.wire(u, g);
    b.wire(g, y);
    b.finish().unwrap()
}

#[test]
fn subsystem_boundary_type_mismatch_is_rejected() {
    // Outer drives a double into an inner inport declared int16.
    let mut b = ModelBuilder::new("outer");
    let u = b.inport("u", DataType::F64);
    let sub = b.add("sub", BlockKind::Subsystem { model: Box::new(gain_subsystem(DataType::I16)) });
    let y = b.outport("y");
    b.wire(u, sub);
    b.wire(sub, y);
    let err = b.finish().unwrap_err();
    assert!(matches!(err, ModelError::TypeMismatch { .. }), "expected TypeMismatch, got {err}");
    assert!(err.to_string().contains("int16"));
}

#[test]
fn matching_boundary_types_pass() {
    let mut b = ModelBuilder::new("outer");
    let u = b.inport("u", DataType::I16);
    let sub = b.add("sub", BlockKind::Subsystem { model: Box::new(gain_subsystem(DataType::I16)) });
    let y = b.outport("y");
    b.wire(u, sub);
    b.wire(sub, y);
    b.finish().unwrap();
}

#[test]
fn invalid_chart_surfaces_as_bad_parameter() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("y".into(), DataType::F64));
    // `ghost` is not declared anywhere.
    chart.states.push(State::new("S").with_during(parse_stmts("y = ghost;").unwrap()));
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let c = b.add("chart", BlockKind::Chart { chart });
    let y = b.outport("y");
    b.wire(u, c);
    b.wire(c, y);
    let err = b.finish().unwrap_err();
    match err {
        ModelError::BadParameter { block, detail } => {
            assert_eq!(block, "chart");
            assert!(detail.contains("ghost"), "{detail}");
        }
        other => panic!("expected BadParameter, got {other}"),
    }
}

#[test]
fn invalid_function_surfaces_as_bad_parameter() {
    let function = FunctionDef::new(
        vec![("u".into(), DataType::F64)],
        vec![("y".into(), DataType::F64)],
        Vec::new(), // y never assigned
    );
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let f = b.add("f", BlockKind::MatlabFunction { function });
    let y = b.outport("y");
    b.wire(u, f);
    b.wire(f, y);
    let err = b.finish().unwrap_err();
    assert!(matches!(err, ModelError::BadParameter { .. }), "{err}");
}

#[test]
fn nested_subsystem_errors_propagate() {
    // The invalid model sits two levels deep.
    let mut broken = ModelBuilder::new("broken");
    broken.inport("u", DataType::F64);
    broken.add("floating", BlockKind::Gain { gain: 1.0 }); // unconnected
    let broken = broken.finish_unchecked();

    let mut mid = ModelBuilder::new("mid");
    let u = mid.inport("u", DataType::F64);
    let sub = mid.add("sub", BlockKind::Subsystem { model: Box::new(broken) });
    let y = mid.outport("y");
    mid.wire(u, sub);
    mid.wire(sub, y);
    let mid = mid.finish_unchecked();

    let mut top = ModelBuilder::new("top");
    let u = top.inport("u", DataType::F64);
    let sub = top.add("sub", BlockKind::Subsystem { model: Box::new(mid) });
    let y = top.outport("y");
    top.wire(u, sub);
    top.wire(sub, y);
    let err = top.finish().unwrap_err();
    assert!(matches!(err, ModelError::UnconnectedInput { .. }), "{err}");
}

#[test]
fn sinks_of_lists_every_consumer() {
    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let g1 = b.add("g1", BlockKind::Gain { gain: 1.0 });
    let g2 = b.add("g2", BlockKind::Gain { gain: 2.0 });
    let y1 = b.outport("y1");
    let y2 = b.outport("y2");
    b.wire(u, g1);
    b.feed(u, g2, 0);
    b.wire(g1, y1);
    b.wire(g2, y2);
    let m = b.finish().unwrap();
    let src = PortRef::new(u, 0);
    let sinks: Vec<_> = m.sinks_of(src).collect();
    assert_eq!(sinks.len(), 2);
}

#[test]
fn value_parse_rejects_out_of_range_integers() {
    assert!(Value::parse_typed("300", DataType::I8).is_err());
    assert!(Value::parse_typed("-1", DataType::U16).is_err());
    assert!(Value::parse_typed("70000", DataType::U16).is_err());
}

#[test]
fn triggered_subsystem_type_check_uses_data_ports() {
    // Port 0 is the trigger; data starts at port 1. Types must be checked
    // against the *data* mapping, not shifted by one.
    let mut b = ModelBuilder::new("m");
    let trig = b.inport("trig", DataType::Bool);
    let data = b.inport("data", DataType::I16);
    let sub = b.add(
        "sub",
        BlockKind::TriggeredSubsystem {
            model: Box::new(gain_subsystem(DataType::I16)),
            edge: cftcg_model::EdgeKind::Rising,
        },
    );
    let y = b.outport("y");
    b.feed(trig, sub, 0);
    b.feed(data, sub, 1);
    b.wire(sub, y);
    b.finish().unwrap();

    // And the mismatching variant is rejected.
    let mut b = ModelBuilder::new("m2");
    let trig = b.inport("trig", DataType::Bool);
    let data = b.inport("data", DataType::F64);
    let sub = b.add(
        "sub",
        BlockKind::TriggeredSubsystem {
            model: Box::new(gain_subsystem(DataType::I16)),
            edge: cftcg_model::EdgeKind::Rising,
        },
    );
    let y = b.outport("y");
    b.feed(trig, sub, 0);
    b.feed(data, sub, 1);
    b.wire(sub, y);
    assert!(matches!(b.finish(), Err(ModelError::TypeMismatch { .. })));
}
