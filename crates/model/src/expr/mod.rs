//! The CFTCG expression and statement language.
//!
//! Simulink models embed imperative logic in three places that CFTCG must
//! instrument (Figure 4(d) of the paper): `If` block condition expressions,
//! MATLAB Function block bodies, and Stateflow chart guards/actions. This
//! module provides a small C-like language for all three:
//!
//! * expressions with arithmetic, comparison, logical operators and a set of
//!   builtin math functions,
//! * statements: assignment and `if`/`else if`/`else`.
//!
//! Text is parsed with [`parse_expr`] / [`parse_stmts`], and ASTs print back
//! to parseable text via `Display`, which is also what the C emitter uses.
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_model::expr::{parse_expr, ExprEnv, MapEnv};
//! use cftcg_model::Value;
//!
//! let e = parse_expr("u1 > 10 && u2 != 0")?;
//! let mut env = MapEnv::new();
//! env.set("u1", Value::F64(11.0));
//! env.set("u2", Value::I32(3));
//! assert_eq!(e.eval(&env)?, Value::Bool(true));
//! # Ok(())
//! # }
//! ```

mod ast;
mod eval;
mod lexer;
mod parser;

pub use ast::{format_stmts, BinOp, Expr, Stmt, UnaryOp};
pub use eval::{apply_builtin, exec_stmts, DynEnv, EvalExprError, ExprEnv, MapEnv, BUILTINS};
pub use parser::{parse_expr, parse_stmts, ParseExprError};
