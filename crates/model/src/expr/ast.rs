//! Expression and statement AST, with parseable `Display` output.

use std::collections::BTreeSet;
use std::fmt;

use crate::Value;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation, `-x`.
    Neg,
    /// Logical not, `!x`.
    Not,
}

/// Binary operators, C-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (C `fmod` semantics: result takes the dividend's sign)
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` — a *condition boundary* for Condition/MCDC coverage
    And,
    /// `||` — a *condition boundary* for Condition/MCDC coverage
    Or,
}

impl BinOp {
    /// The operator's source text.
    pub const fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// `true` for operators that produce a boolean.
    pub const fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }

    /// `true` for the short-circuiting logical connectives.
    pub const fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value (`3`, `2.5`, `true`).
    Literal(Value),
    /// A variable reference.
    Var(String),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A builtin function call (`min(a, b)`, `abs(x)`, ...).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand for a numeric literal.
    pub fn num(x: f64) -> Expr {
        Expr::Literal(Value::F64(x))
    }

    /// Shorthand for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Collects the free variable names referenced by the expression.
    ///
    /// ```
    /// # use cftcg_model::expr::parse_expr;
    /// let e = parse_expr("a + min(b, a)").unwrap();
    /// let vars = e.free_vars();
    /// assert_eq!(vars.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
    /// ```
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Var(name) => {
                out.insert(name.clone());
            }
            Expr::Unary(_, inner) => inner.collect_vars(out),
            Expr::Binary(_, lhs, rhs) => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for arg in args {
                    arg.collect_vars(out);
                }
            }
        }
    }

    /// Counts the *leaf conditions* of the expression when it is used as a
    /// decision: the operands that are not themselves `&&`/`||`/`!` nodes.
    ///
    /// This is the unit Condition Coverage and MCDC count over.
    ///
    /// ```
    /// # use cftcg_model::expr::parse_expr;
    /// assert_eq!(parse_expr("a && (b || !c)").unwrap().count_conditions(), 3);
    /// assert_eq!(parse_expr("a + b > 0").unwrap().count_conditions(), 1);
    /// ```
    pub fn count_conditions(&self) -> usize {
        match self {
            Expr::Binary(op, lhs, rhs) if op.is_logical() => {
                lhs.count_conditions() + rhs.count_conditions()
            }
            Expr::Unary(UnaryOp::Not, inner) => inner.count_conditions(),
            _ => 1,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Var(name) => f.write_str(name),
            Expr::Unary(op, inner) => {
                f.write_str(match op {
                    UnaryOp::Neg => "-",
                    UnaryOp::Not => "!",
                })?;
                // Unary binds tightest; parenthesize any non-primary operand.
                match inner.as_ref() {
                    Expr::Literal(_) | Expr::Var(_) | Expr::Call(..) | Expr::Unary(..) => {
                        inner.fmt_prec(f, 6)
                    }
                    _ => {
                        f.write_str("(")?;
                        inner.fmt_prec(f, 0)?;
                        f.write_str(")")
                    }
                }
            }
            Expr::Binary(op, lhs, rhs) => {
                let prec = op.precedence();
                let need_parens = prec < parent_prec;
                if need_parens {
                    f.write_str("(")?;
                }
                lhs.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand needs parens at equal precedence to preserve
                // left associativity (a - (b - c)).
                rhs.fmt_prec(f, prec + 1)?;
                if need_parens {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    arg.fmt_prec(f, 0)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A statement in a MATLAB Function body or chart action.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr;`
    Assign(String, Expr),
    /// `if (cond) { ... } else { ... }` — `else if` chains nest in
    /// `else_body`. Every `cond` is a *decision* for coverage purposes.
    If {
        /// The decision expression.
        cond: Expr,
        /// Statements executed when `cond` is truthy.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise (empty for a bare `if`).
        else_body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Shorthand for an assignment statement.
    pub fn assign(name: impl Into<String>, value: Expr) -> Stmt {
        Stmt::Assign(name.into(), value)
    }

    /// Collects variables read by this statement (not assignment targets).
    pub fn free_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_read_vars(&mut out);
        out
    }

    fn collect_read_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Stmt::Assign(_, value) => value.collect_vars(out),
            Stmt::If { cond, then_body, else_body } => {
                cond.collect_vars(out);
                for s in then_body.iter().chain(else_body) {
                    s.collect_read_vars(out);
                }
            }
        }
    }

    /// Collects variables assigned anywhere in this statement.
    pub fn assigned_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_assigned_vars(&mut out);
        out
    }

    fn collect_assigned_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Stmt::Assign(name, _) => {
                out.insert(name.clone());
            }
            Stmt::If { then_body, else_body, .. } => {
                for s in then_body.iter().chain(else_body) {
                    s.collect_assigned_vars(out);
                }
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Stmt::Assign(name, value) => writeln!(f, "{pad}{name} = {value};"),
            Stmt::If { cond, then_body, else_body } => {
                writeln!(f, "{pad}if ({cond}) {{")?;
                for s in then_body {
                    s.fmt_indented(f, depth + 1)?;
                }
                if else_body.is_empty() {
                    writeln!(f, "{pad}}}")
                } else {
                    writeln!(f, "{pad}}} else {{")?;
                    for s in else_body {
                        s.fmt_indented(f, depth + 1)?;
                    }
                    writeln!(f, "{pad}}}")
                }
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Formats a statement list as a block body (each statement on its own line).
///
/// The output reparses with [`crate::expr::parse_stmts`] to the same AST.
pub fn format_stmts(stmts: &[Stmt]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    for s in stmts {
        let _ = write!(out, "{s}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_minimal_parens() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("c"),
        );
        assert_eq!(e.to_string(), "(a + b) * c");

        let e = Expr::bin(
            BinOp::Add,
            Expr::var("a"),
            Expr::bin(BinOp::Mul, Expr::var("b"), Expr::var("c")),
        );
        assert_eq!(e.to_string(), "a + b * c");
    }

    #[test]
    fn display_preserves_right_nesting() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::var("a"),
            Expr::bin(BinOp::Sub, Expr::var("b"), Expr::var("c")),
        );
        assert_eq!(e.to_string(), "a - (b - c)");
    }

    #[test]
    fn display_unary() {
        let e = Expr::Unary(
            UnaryOp::Neg,
            Box::new(Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"))),
        );
        assert_eq!(e.to_string(), "-(a + b)");
        let e = Expr::Unary(UnaryOp::Not, Box::new(Expr::var("x")));
        assert_eq!(e.to_string(), "!x");
    }

    #[test]
    fn condition_counting() {
        use crate::expr::parse_expr;
        assert_eq!(parse_expr("a").unwrap().count_conditions(), 1);
        assert_eq!(parse_expr("a && b").unwrap().count_conditions(), 2);
        assert_eq!(parse_expr("a && b || c > 1").unwrap().count_conditions(), 3);
        assert_eq!(parse_expr("!(a || b)").unwrap().count_conditions(), 2);
        assert_eq!(parse_expr("min(a, b) > 0").unwrap().count_conditions(), 1);
    }

    #[test]
    fn stmt_variable_analysis() {
        use crate::expr::parse_stmts;
        let stmts = parse_stmts("if (x > 0) { y = x + z; } else { y = 0; w = q; }").unwrap();
        let read: Vec<_> = stmts[0].free_vars().into_iter().collect();
        assert_eq!(read, vec!["q", "x", "z"]);
        let written: Vec<_> = stmts[0].assigned_vars().into_iter().collect();
        assert_eq!(written, vec!["w", "y"]);
    }

    #[test]
    fn stmt_display_roundtrips() {
        use crate::expr::parse_stmts;
        let src = "if (x > 0) { y = 1; } else { y = 2; }";
        let stmts = parse_stmts(src).unwrap();
        let printed = format_stmts(&stmts);
        assert_eq!(parse_stmts(&printed).unwrap(), stmts);
    }
}
