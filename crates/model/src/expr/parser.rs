//! Recursive-descent parser for expressions and statement lists.

use std::error::Error;
use std::fmt;

use crate::Value;

use super::ast::{BinOp, Expr, Stmt, UnaryOp};
use super::lexer::{tokenize, Spanned, Token};

/// Error produced when expression/statement text is malformed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseExprError {
    message: String,
    offset: usize,
}

impl ParseExprError {
    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset of the offending token in the source text.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl Error for ParseExprError {}

/// Parses a single expression.
///
/// # Errors
///
/// Returns [`ParseExprError`] on malformed input or trailing tokens.
///
/// ```
/// # use cftcg_model::expr::parse_expr;
/// assert!(parse_expr("u1 >= 2 && !u2").is_ok());
/// assert!(parse_expr("u1 +").is_err());
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseExprError> {
    let tokens = tokenize(src).map_err(|(offset, message)| ParseExprError { message, offset })?;
    let mut p = Parser { tokens, pos: 0, src_len: src.len() };
    let expr = p.expr()?;
    p.expect_end()?;
    Ok(expr)
}

/// Parses a statement list (a MATLAB Function body or a chart action).
///
/// # Errors
///
/// Returns [`ParseExprError`] on malformed input.
///
/// ```
/// # use cftcg_model::expr::parse_stmts;
/// let body = parse_stmts("y = 0; if (u > 5) { y = 1; }").unwrap();
/// assert_eq!(body.len(), 2);
/// ```
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>, ParseExprError> {
    let tokens = tokenize(src).map_err(|(offset, message)| ParseExprError { message, offset })?;
    let mut p = Parser { tokens, pos: 0, src_len: src.len() };
    let stmts = p.stmt_list_until_end()?;
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |s| s.offset)
    }

    fn error(&self, message: impl Into<String>) -> ParseExprError {
        ParseExprError { message: message.into(), offset: self.offset() }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseExprError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{token}`, found {}",
                self.peek().map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn expect_end(&self) -> Result<(), ParseExprError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseExprError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            Some(Token::EqEq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::bin(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseExprError> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            // Fold negation of literals so `-1` is a literal, not an op.
            if let Expr::Literal(Value::F64(x)) = inner {
                return Ok(Expr::Literal(Value::F64(-x)));
            }
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        if self.eat(&Token::Bang) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseExprError> {
        match self.bump() {
            Some(Token::Number(x)) => Ok(Expr::Literal(Value::F64(x))),
            Some(Token::True) => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::False) => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Ident(name)) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma)?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::LParen) => {
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(other) => Err(ParseExprError {
                message: format!("unexpected token `{other}`"),
                offset: self.tokens[self.pos - 1].offset,
            }),
            None => Err(self.error("unexpected end of input")),
        }
    }

    // ---- statements ------------------------------------------------------

    fn stmt_list_until_end(&mut self) -> Result<Vec<Stmt>, ParseExprError> {
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseExprError> {
        if self.eat(&Token::If) {
            return self.if_stmt();
        }
        match self.bump() {
            Some(Token::Ident(name)) => {
                self.expect(&Token::Assign)?;
                let value = self.expr()?;
                self.expect(&Token::Semicolon)?;
                Ok(Stmt::Assign(name, value))
            }
            Some(other) => Err(ParseExprError {
                message: format!("expected a statement, found `{other}`"),
                offset: self.tokens[self.pos - 1].offset,
            }),
            None => Err(self.error("expected a statement")),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseExprError> {
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&Token::Else) {
            if self.eat(&Token::If) {
                vec![self.if_stmt()?] // `else if` chains
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseExprError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.error("unclosed `{` block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(e.to_string(), "a + b * c");
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(e.to_string(), "(a + b) * c");
        let e = parse_expr("a || b && c").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Or,
                Expr::var("a"),
                Expr::bin(BinOp::And, Expr::var("b"), Expr::var("c"))
            )
        );
    }

    #[test]
    fn comparison_binds_between_logic_and_arith() {
        let e = parse_expr("a + 1 > b && c < 2").unwrap();
        assert_eq!(e.to_string(), "a + 1 > b && c < 2");
    }

    #[test]
    fn unary_folding_and_nesting() {
        assert_eq!(parse_expr("-1").unwrap(), Expr::num(-1.0));
        assert_eq!(parse_expr("- 2.5").unwrap(), Expr::num(-2.5));
        let e = parse_expr("--x").unwrap();
        assert_eq!(e.to_string(), "--x");
        let e = parse_expr("!!b").unwrap();
        assert_eq!(e.to_string(), "!!b");
    }

    #[test]
    fn calls() {
        let e = parse_expr("min(a, max(b, 3))").unwrap();
        assert_eq!(e.to_string(), "min(a, max(b, 3))");
        let e = parse_expr("rand()").unwrap();
        assert_eq!(e, Expr::Call("rand".into(), vec![]));
    }

    #[test]
    fn matlab_not_equal_alias() {
        let e = parse_expr("a ~= b").unwrap();
        assert_eq!(e.to_string(), "a != b");
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse_expr("a b").unwrap_err();
        assert!(err.message().contains("trailing"));
        assert_eq!(err.offset(), 2);
    }

    #[test]
    fn rejects_missing_operand() {
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("(a").is_err());
        assert!(parse_expr("").is_err());
        assert!(parse_expr("f(a,)").is_err());
    }

    #[test]
    fn statements() {
        let stmts = parse_stmts("x = 1; y = x + 2;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0], Stmt::assign("x", Expr::num(1.0)));
    }

    #[test]
    fn if_else_chain() {
        let stmts = parse_stmts("if (a > 1) { x = 1; } else if (a > 0) { x = 2; } else { x = 3; }")
            .unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_statements() {
        assert!(parse_stmts("x = 1").is_err()); // missing semicolon
        assert!(parse_stmts("if (a) x = 1;").is_err()); // missing braces
        assert!(parse_stmts("if (a) { x = 1;").is_err()); // unclosed block
        assert!(parse_stmts("1 = x;").is_err());
    }

    #[test]
    fn expr_display_reparses_to_same_ast() {
        let sources = [
            "a && (b || c) && !(d > 1)",
            "-x * (y - -3) % 2",
            "min(a + 1, abs(b)) >= c / 4",
            "a - (b - c) - d",
            "!(a != b) || c % 2 == 0",
        ];
        for src in sources {
            let e = parse_expr(src).unwrap();
            let printed = e.to_string();
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
            assert_eq!(reparsed, e, "source `{src}` printed as `{printed}`");
        }
    }
}
