//! Tokenizer for the expression/statement language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Token {
    Number(f64),
    Ident(String),
    True,
    False,
    If,
    Else,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Assign,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "{n}"),
            Token::Ident(s) => f.write_str(s),
            Token::True => f.write_str("true"),
            Token::False => f.write_str("false"),
            Token::If => f.write_str("if"),
            Token::Else => f.write_str("else"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Star => f.write_str("*"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Bang => f.write_str("!"),
            Token::Lt => f.write_str("<"),
            Token::Le => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::Ge => f.write_str(">="),
            Token::EqEq => f.write_str("=="),
            Token::Ne => f.write_str("!="),
            Token::AndAnd => f.write_str("&&"),
            Token::OrOr => f.write_str("||"),
            Token::Assign => f.write_str("="),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBrace => f.write_str("{"),
            Token::RBrace => f.write_str("}"),
            Token::Comma => f.write_str(","),
            Token::Semicolon => f.write_str(";"),
        }
    }
}

/// A token plus its byte offset in the source (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Tokenizes `src`. Returns the offset of the offending byte on failure.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Spanned>, (usize, String)> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let token = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'0'..=b'9' => j += 1,
                        b'.' if !seen_dot && !seen_exp => {
                            seen_dot = true;
                            j += 1;
                        }
                        b'e' | b'E' if !seen_exp && j > i => {
                            seen_exp = true;
                            j += 1;
                            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                                j += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[i..j];
                let value: f64 =
                    text.parse().map_err(|_| (start, format!("bad number literal `{text}`")))?;
                i = j;
                Token::Number(value)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[i..j];
                i = j;
                match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "if" => Token::If,
                    "else" => Token::Else,
                    _ => Token::Ident(word.to_string()),
                }
            }
            b'+' => one(&mut i, Token::Plus),
            b'-' => one(&mut i, Token::Minus),
            b'*' => one(&mut i, Token::Star),
            b'/' => one(&mut i, Token::Slash),
            b'%' => one(&mut i, Token::Percent),
            b'(' => one(&mut i, Token::LParen),
            b')' => one(&mut i, Token::RParen),
            b'{' => one(&mut i, Token::LBrace),
            b'}' => one(&mut i, Token::RBrace),
            b',' => one(&mut i, Token::Comma),
            b';' => one(&mut i, Token::Semicolon),
            b'<' => pair(bytes, &mut i, b'=', Token::Le, Token::Lt),
            b'>' => pair(bytes, &mut i, b'=', Token::Ge, Token::Gt),
            b'=' => pair(bytes, &mut i, b'=', Token::EqEq, Token::Assign),
            b'!' => pair(bytes, &mut i, b'=', Token::Ne, Token::Bang),
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    i += 2;
                    Token::AndAnd
                } else {
                    return Err((start, "expected `&&`".to_string()));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    Token::OrOr
                } else {
                    return Err((start, "expected `||`".to_string()));
                }
            }
            b'~' => {
                // MATLAB-style `~=` accepted as an alias for `!=`.
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Ne
                } else {
                    return Err((start, "expected `~=`".to_string()));
                }
            }
            other => {
                return Err((start, format!("unexpected character `{}`", other as char)));
            }
        };
        tokens.push(Spanned { token, offset: start });
    }
    Ok(tokens)
}

fn one(i: &mut usize, token: Token) -> Token {
    *i += 1;
    token
}

fn pair(bytes: &[u8], i: &mut usize, next: u8, matched: Token, single: Token) -> Token {
    if bytes.get(*i + 1) == Some(&next) {
        *i += 2;
        matched
    } else {
        *i += 1;
        single
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 .5 1e3 2.5e-2"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(0.5),
                Token::Number(1000.0),
                Token::Number(0.025),
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("if else true false foo _x9"),
            vec![
                Token::If,
                Token::Else,
                Token::True,
                Token::False,
                Token::Ident("foo".into()),
                Token::Ident("_x9".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("< <= > >= == != && || = ! ~="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Assign,
                Token::Bang,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn rejects_single_ampersand() {
        let (offset, msg) = tokenize("a & b").unwrap_err();
        assert_eq!(offset, 2);
        assert!(msg.contains("&&"));
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn offsets_are_recorded() {
        let spanned = tokenize("ab + cd").unwrap();
        assert_eq!(spanned[1].offset, 3);
        assert_eq!(spanned[2].offset, 5);
    }
}
