//! Direct AST evaluation, used by the interpretive simulator and by the
//! baselines. The compiled path in `cftcg-codegen` lowers the same AST to
//! step-IR instead; differential tests keep the two in agreement.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{DataType, Value};

use super::ast::{BinOp, Expr, Stmt, UnaryOp};

/// A read/write variable environment for expression evaluation.
pub trait ExprEnv {
    /// Reads a variable, or `None` if it is not defined.
    fn get(&self, name: &str) -> Option<Value>;

    /// Writes a variable (used by statement execution).
    fn set(&mut self, name: &str, value: Value);
}

/// A simple `HashMap`-backed environment.
///
/// ```
/// use cftcg_model::expr::{ExprEnv, MapEnv};
/// use cftcg_model::Value;
/// let mut env = MapEnv::new();
/// env.set("x", Value::F64(2.0));
/// assert_eq!(env.get("x"), Some(Value::F64(2.0)));
/// assert_eq!(env.get("y"), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapEnv {
    vars: HashMap<String, Value>,
}

impl MapEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over the defined variables in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl ExprEnv for MapEnv {
    fn get(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }

    fn set(&mut self, name: &str, value: Value) {
        self.vars.insert(name.to_string(), value);
    }
}

/// Error produced when an expression cannot be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalExprError {
    /// A referenced variable is not defined in the environment.
    UnknownVariable(String),
    /// A called function is not a known builtin.
    UnknownFunction(String),
    /// A builtin was called with the wrong number of arguments.
    BadArity {
        /// Function name.
        function: String,
        /// Number of arguments expected.
        expected: usize,
        /// Number of arguments given.
        found: usize,
    },
}

impl fmt::Display for EvalExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalExprError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            EvalExprError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EvalExprError::BadArity { function, expected, found } => {
                write!(f, "function `{function}` expects {expected} argument(s), found {found}")
            }
        }
    }
}

impl Error for EvalExprError {}

/// Builtin math functions available in expressions.
///
/// `(name, arity)` pairs; semantics are the usual `f64` ones.
pub const BUILTINS: &[(&str, usize)] = &[
    ("abs", 1),
    ("sqrt", 1),
    ("floor", 1),
    ("ceil", 1),
    ("round", 1),
    ("exp", 1),
    ("ln", 1),
    ("log10", 1),
    ("sin", 1),
    ("cos", 1),
    ("tan", 1),
    ("sign", 1),
    ("min", 2),
    ("max", 2),
    ("pow", 2),
    ("atan2", 2),
    ("clamp", 3),
];

/// Applies a builtin by name. Returns `None` for unknown names or wrong
/// arity.
///
/// Exposed so the compiled execution path (`cftcg-codegen`) dispatches to
/// the *same* numeric definitions the interpreter uses.
pub fn apply_builtin(name: &str, args: &[f64]) -> Option<f64> {
    Some(match (name, args) {
        ("abs", [x]) => x.abs(),
        ("sqrt", [x]) => x.sqrt(),
        ("floor", [x]) => x.floor(),
        ("ceil", [x]) => x.ceil(),
        ("round", [x]) => round_half_away(*x),
        ("exp", [x]) => x.exp(),
        ("ln", [x]) => x.ln(),
        ("log10", [x]) => x.log10(),
        ("sin", [x]) => x.sin(),
        ("cos", [x]) => x.cos(),
        ("tan", [x]) => x.tan(),
        ("sign", [x]) => {
            if *x > 0.0 {
                1.0
            } else if *x < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        ("min", [a, b]) => a.min(*b),
        ("max", [a, b]) => a.max(*b),
        ("pow", [a, b]) => a.powf(*b),
        ("atan2", [a, b]) => a.atan2(*b),
        ("clamp", [x, lo, hi]) => x.clamp(*lo, *hi),
        _ => return None,
    })
}

/// Rounds half away from zero (Simulink's `round`), unlike Rust's
/// banker-ish `f64::round` which already rounds half away — kept as a named
/// function so every engine shares one definition.
pub(crate) fn round_half_away(x: f64) -> f64 {
    x.round()
}

impl Expr {
    /// Evaluates the expression against `env`.
    ///
    /// Arithmetic is carried out in `f64`; comparisons and logical
    /// connectives produce `Bool`. Logical `&&`/`||` short-circuit, matching
    /// the generated C.
    ///
    /// # Errors
    ///
    /// Returns [`EvalExprError`] for unknown variables or functions.
    pub fn eval<E: DynEnv + ?Sized>(&self, env: &E) -> Result<Value, EvalExprError> {
        match self {
            Expr::Literal(v) => Ok(*v),
            Expr::Var(name) => {
                env.get_var(name).ok_or_else(|| EvalExprError::UnknownVariable(name.clone()))
            }
            Expr::Unary(op, inner) => {
                let v = inner.eval(env)?;
                Ok(match op {
                    UnaryOp::Neg => Value::F64(-v.as_f64()),
                    UnaryOp::Not => Value::Bool(!v.is_truthy()),
                })
            }
            Expr::Binary(op, lhs, rhs) => {
                match op {
                    BinOp::And => {
                        let l = lhs.eval(env)?.is_truthy();
                        if !l {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(rhs.eval(env)?.is_truthy()));
                    }
                    BinOp::Or => {
                        let l = lhs.eval(env)?.is_truthy();
                        if l {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(rhs.eval(env)?.is_truthy()));
                    }
                    _ => {}
                }
                let l = lhs.eval(env)?.as_f64();
                let r = rhs.eval(env)?.as_f64();
                Ok(match op {
                    BinOp::Add => Value::F64(l + r),
                    BinOp::Sub => Value::F64(l - r),
                    BinOp::Mul => Value::F64(l * r),
                    BinOp::Div => Value::F64(l / r),
                    BinOp::Rem => Value::F64(l % r),
                    BinOp::Lt => Value::Bool(l < r),
                    BinOp::Le => Value::Bool(l <= r),
                    BinOp::Gt => Value::Bool(l > r),
                    BinOp::Ge => Value::Bool(l >= r),
                    BinOp::Eq => Value::Bool(l == r),
                    BinOp::Ne => Value::Bool(l != r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
            Expr::Call(name, args) => {
                let expected = BUILTINS
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, arity)| *arity)
                    .ok_or_else(|| EvalExprError::UnknownFunction(name.clone()))?;
                if args.len() != expected {
                    return Err(EvalExprError::BadArity {
                        function: name.clone(),
                        expected,
                        found: args.len(),
                    });
                }
                let mut xs = Vec::with_capacity(args.len());
                for arg in args {
                    xs.push(arg.eval(env)?.as_f64());
                }
                let y = apply_builtin(name, &xs).expect("arity checked against BUILTINS");
                Ok(Value::F64(y))
            }
        }
    }
}

/// Object-safe read view of an environment, so `Expr::eval` can take either
/// a `&MapEnv` or any custom environment without generics.
pub trait DynEnv {
    /// Reads a variable, or `None` if it is not defined.
    fn get_var(&self, name: &str) -> Option<Value>;
}

impl<T: ExprEnv + ?Sized> DynEnv for T {
    fn get_var(&self, name: &str) -> Option<Value> {
        self.get(name)
    }
}

/// Executes a statement list against a mutable environment.
///
/// Assigned variables keep the data type they already have in `env` (the
/// value is cast), or default to `double` when newly introduced — matching
/// how typed output/local variables behave in the generated code.
///
/// # Errors
///
/// Returns [`EvalExprError`] for unknown variables or functions in any
/// evaluated expression.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_model::expr::{exec_stmts, parse_stmts, ExprEnv, MapEnv};
/// use cftcg_model::Value;
///
/// let body = parse_stmts("if (u > 3) { y = u * 2; } else { y = 0; }")?;
/// let mut env = MapEnv::new();
/// env.set("u", Value::F64(5.0));
/// exec_stmts(&body, &mut env)?;
/// assert_eq!(env.get("y"), Some(Value::F64(10.0)));
/// # Ok(())
/// # }
/// ```
pub fn exec_stmts(stmts: &[Stmt], env: &mut dyn ExprEnv) -> Result<(), EvalExprError> {
    for stmt in stmts {
        exec_stmt(stmt, env)?;
    }
    Ok(())
}

fn exec_stmt(stmt: &Stmt, env: &mut dyn ExprEnv) -> Result<(), EvalExprError> {
    match stmt {
        Stmt::Assign(name, value) => {
            let v = value.eval(&*env)?;
            let ty = env.get(name).map_or(DataType::F64, |old| old.data_type());
            env.set(name, v.cast(ty));
            Ok(())
        }
        Stmt::If { cond, then_body, else_body } => {
            if cond.eval(&*env)?.is_truthy() {
                exec_stmts(then_body, env)
            } else {
                exec_stmts(else_body, env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{parse_expr, parse_stmts};

    fn eval(src: &str, vars: &[(&str, Value)]) -> Value {
        let mut env = MapEnv::new();
        for (k, v) in vars {
            env.set(k, *v);
        }
        parse_expr(src).unwrap().eval(&env).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3", &[]), Value::F64(7.0));
        assert_eq!(eval("(1 + 2) * 3", &[]), Value::F64(9.0));
        assert_eq!(eval("7 % 3", &[]), Value::F64(1.0));
        assert_eq!(eval("-7 % 3", &[]), Value::F64(-1.0)); // C fmod sign
        assert_eq!(eval("10 / 4", &[]), Value::F64(2.5));
    }

    #[test]
    fn division_by_zero_is_infinite_not_error() {
        assert_eq!(eval("1 / 0", &[]), Value::F64(f64::INFINITY));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval("3 > 2 && 1 <= 1", &[]), Value::Bool(true));
        assert_eq!(eval("3 == 3 || false", &[]), Value::Bool(true));
        assert_eq!(eval("!(2 != 2)", &[]), Value::Bool(true));
        assert_eq!(eval("1 && 0", &[]), Value::Bool(false));
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // `y` is undefined, but the rhs must not be evaluated.
        assert_eq!(eval("false && y > 0", &[]), Value::Bool(false));
        assert_eq!(eval("true || y > 0", &[]), Value::Bool(true));
        // Without short circuit it errors:
        let e = parse_expr("true && y > 0").unwrap();
        assert_eq!(e.eval(&MapEnv::new()).unwrap_err(), EvalExprError::UnknownVariable("y".into()));
    }

    #[test]
    fn variables_of_any_type_promote() {
        assert_eq!(eval("u + 1", &[("u", Value::I8(-3))]), Value::F64(-2.0));
        assert_eq!(eval("b && true", &[("b", Value::U16(7))]), Value::Bool(true));
    }

    #[test]
    fn builtins() {
        assert_eq!(eval("abs(-3)", &[]), Value::F64(3.0));
        assert_eq!(eval("min(2, 5)", &[]), Value::F64(2.0));
        assert_eq!(eval("max(2, 5)", &[]), Value::F64(5.0));
        assert_eq!(eval("clamp(10, 0, 4)", &[]), Value::F64(4.0));
        assert_eq!(eval("pow(2, 10)", &[]), Value::F64(1024.0));
        assert_eq!(eval("sign(-0.5)", &[]), Value::F64(-1.0));
        assert_eq!(eval("floor(2.9) + ceil(2.1)", &[]), Value::F64(5.0));
        assert_eq!(eval("round(2.5)", &[]), Value::F64(3.0));
        assert_eq!(eval("round(-2.5)", &[]), Value::F64(-3.0));
    }

    #[test]
    fn unknown_function_and_arity_errors() {
        let env = MapEnv::new();
        assert_eq!(
            parse_expr("mystery(1)").unwrap().eval(&env).unwrap_err(),
            EvalExprError::UnknownFunction("mystery".into())
        );
        let err = parse_expr("min(1)").unwrap().eval(&env).unwrap_err();
        assert_eq!(err, EvalExprError::BadArity { function: "min".into(), expected: 2, found: 1 });
        assert!(err.to_string().contains("min"));
    }

    #[test]
    fn stmt_execution_with_branching() {
        let body = parse_stmts(
            "if (mode == 1) { out = x + 1; } else if (mode == 2) { out = x * 2; } else { out = 0; }",
        )
        .unwrap();
        for (mode, x, expected) in [(1.0, 10.0, 11.0), (2.0, 10.0, 20.0), (9.0, 10.0, 0.0)] {
            let mut env = MapEnv::new();
            env.set("mode", Value::F64(mode));
            env.set("x", Value::F64(x));
            exec_stmts(&body, &mut env).unwrap();
            assert_eq!(env.get("out"), Some(Value::F64(expected)));
        }
    }

    #[test]
    fn assignment_preserves_declared_type() {
        let body = parse_stmts("y = 300.7;").unwrap();
        let mut env = MapEnv::new();
        env.set("y", Value::U8(0)); // pre-declared as uint8
        exec_stmts(&body, &mut env).unwrap();
        assert_eq!(env.get("y"), Some(Value::U8(255))); // saturating cast

        let mut env = MapEnv::new(); // undeclared → double
        exec_stmts(&body, &mut env).unwrap();
        assert_eq!(env.get("y"), Some(Value::F64(300.7)));
    }

    #[test]
    fn builtins_table_matches_apply() {
        for (name, arity) in BUILTINS {
            let args = vec![0.5; *arity];
            assert!(
                apply_builtin(name, &args).is_some(),
                "builtin `{name}` missing from apply_builtin"
            );
        }
        assert!(apply_builtin("nope", &[1.0]).is_none());
    }
}
