//! The model graph: blocks wired by connections, plus the structural
//! analyses every engine needs — validation, deterministic scheduling
//! (the paper's "Schedule Convert" front half), and signal type resolution.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::fmt;

use crate::block::BlockKind;
use crate::DataType;

/// Identifier of a block within its owning [`Model`].
///
/// Ids are dense indices assigned in insertion order; they are stable across
/// save/load because persistence preserves block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(u32);

impl BlockId {
    /// The dense index of the block.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("more than u32::MAX blocks"))
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A reference to one port of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The block.
    pub block: BlockId,
    /// The port index on that block.
    pub port: usize,
}

impl PortRef {
    /// Creates a port reference.
    pub fn new(block: BlockId, port: usize) -> Self {
        PortRef { block, port }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.port)
    }
}

/// A directed wire from an output port to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// The driving output port.
    pub src: PortRef,
    /// The driven input port.
    pub dst: PortRef,
}

/// A block instance: a unique name plus its [`BlockKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    id: BlockId,
    name: String,
    kind: BlockKind,
}

impl Block {
    /// The block's id within its model.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The block's name (unique within its model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block's kind and parameters.
    pub fn kind(&self) -> &BlockKind {
        &self.kind
    }
}

/// A block-diagram model.
///
/// Build one with [`crate::ModelBuilder`], load one from XML with
/// [`crate::load_model`], then validate and analyze:
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};
///
/// let mut b = ModelBuilder::new("double_it");
/// let u = b.inport("u", DataType::F64);
/// let g = b.add("g", BlockKind::Gain { gain: 2.0 });
/// let y = b.outport("y");
/// b.connect(u, 0, g, 0);
/// b.connect(g, 0, y, 0);
/// let model = b.finish()?;
/// assert_eq!(model.num_inports(), 1);
/// assert_eq!(model.execution_order()?.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    blocks: Vec<Block>,
    connections: Vec<Connection>,
}

impl Model {
    pub(crate) fn from_parts(
        name: String,
        blocks: Vec<(String, BlockKind)>,
        connections: Vec<Connection>,
    ) -> Self {
        let blocks = blocks
            .into_iter()
            .enumerate()
            .map(|(i, (name, kind))| Block { id: BlockId::from_index(i), name, kind })
            .collect();
        Model { name, blocks, connections }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All blocks, in id order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// All connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Finds a block by name.
    pub fn block_by_name(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Number of top-level input ports ([`BlockKind::Inport`] blocks).
    pub fn num_inports(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.kind, BlockKind::Inport { .. })).count()
    }

    /// Number of top-level output ports ([`BlockKind::Outport`] blocks).
    pub fn num_outports(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b.kind, BlockKind::Outport { .. })).count()
    }

    /// The inport blocks sorted by port index, as `(block, index, type)`.
    pub fn inports(&self) -> Vec<(BlockId, usize, DataType)> {
        let mut out: Vec<_> = self
            .blocks
            .iter()
            .filter_map(|b| match b.kind {
                BlockKind::Inport { index, dtype } => Some((b.id, index, dtype)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(_, index, _)| index);
        out
    }

    /// The outport blocks sorted by port index, as `(block, index)`.
    pub fn outports(&self) -> Vec<(BlockId, usize)> {
        let mut out: Vec<_> = self
            .blocks
            .iter()
            .filter_map(|b| match b.kind {
                BlockKind::Outport { index } => Some((b.id, index)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(_, index)| index);
        out
    }

    /// The output port driving `dst`, if any connection exists.
    pub fn source_of(&self, dst: PortRef) -> Option<PortRef> {
        self.connections.iter().find(|c| c.dst == dst).map(|c| c.src)
    }

    /// All input ports driven by output port `src`.
    pub fn sinks_of(&self, src: PortRef) -> impl Iterator<Item = PortRef> + '_ {
        self.connections.iter().filter(move |c| c.src == src).map(|c| c.dst)
    }

    /// `true` when this model (or any nested subsystem) contains a stateful
    /// block.
    pub fn has_state(&self) -> bool {
        self.blocks.iter().any(|b| b.kind.is_stateful())
    }

    /// Total number of blocks including blocks of nested subsystems — the
    /// `#Block` column of the paper's Table 2.
    pub fn total_block_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| 1 + b.kind.inner_model().map_or(0, Model::total_block_count))
            .sum()
    }

    /// A deterministic execution order: every block appears after the
    /// producers of its inputs, except that loop-breaking blocks
    /// ([`BlockKind::breaks_algebraic_loops`]) impose no ordering on their
    /// consumers (their output is state from the previous step). Among
    /// ready blocks, the lowest id runs first.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::AlgebraicLoop`] naming a block on the cycle
    /// when the graph has a loop not broken by a delay-class block.
    pub fn execution_order(&self) -> Result<Vec<BlockId>, ModelError> {
        let n = self.blocks.len();
        let mut in_degree = vec![0usize; n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for c in &self.connections {
            let src = c.src.block.index();
            let dst = c.dst.block.index();
            if self.blocks[src].kind.breaks_algebraic_loops() {
                continue;
            }
            out_edges[src].push(dst);
            in_degree[dst] += 1;
        }
        let mut heap: BinaryHeap<Reverse<usize>> =
            (0..n).filter(|&i| in_degree[i] == 0).map(Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(Reverse(i)) = heap.pop() {
            order.push(BlockId::from_index(i));
            for &j in &out_edges[i] {
                in_degree[j] -= 1;
                if in_degree[j] == 0 {
                    heap.push(Reverse(j));
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| in_degree[i] > 0)
                .expect("some block must remain when order is incomplete");
            return Err(ModelError::AlgebraicLoop { block: self.blocks[stuck].name.clone() });
        }
        Ok(order)
    }

    /// Resolves every output port's signal type.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::AlgebraicLoop`] from scheduling and reports
    /// unconnected inputs encountered during propagation.
    pub fn resolve_types(&self) -> Result<TypeMap, ModelError> {
        let order = self.execution_order()?;
        let mut map: Vec<Vec<DataType>> =
            self.blocks.iter().map(|b| vec![DataType::F64; b.kind.num_outputs()]).collect();
        // Loop-breaker outputs may be consumed before the block is visited
        // in `order` (their consumers have no edge to them); resolve them
        // first from their initial-value/parameter types.
        for block in &self.blocks {
            match &block.kind {
                BlockKind::UnitDelay { initial }
                | BlockKind::Delay { initial, .. }
                | BlockKind::Memory { initial } => {
                    map[block.id.index()][0] = initial.data_type();
                }
                BlockKind::DiscreteIntegrator { .. } => {
                    map[block.id.index()][0] = DataType::F64;
                }
                _ => {}
            }
        }
        for id in order {
            let block = &self.blocks[id.index()];
            let num_inputs = block.kind.num_inputs();
            let mut input_types = Vec::with_capacity(num_inputs);
            for port in 0..num_inputs {
                let src = self.source_of(PortRef::new(id, port)).ok_or_else(|| {
                    ModelError::UnconnectedInput { block: block.name.clone(), port }
                })?;
                input_types.push(map[src.block.index()][src.port]);
            }
            match &block.kind {
                // Delay-class blocks keep the type set above (their output
                // is prior state); the input type is checked by validate().
                BlockKind::UnitDelay { .. }
                | BlockKind::Delay { .. }
                | BlockKind::Memory { .. }
                | BlockKind::DiscreteIntegrator { .. } => {}
                BlockKind::ActionSubsystem { model }
                | BlockKind::EnabledSubsystem { model }
                | BlockKind::TriggeredSubsystem { model, .. }
                | BlockKind::Subsystem { model } => {
                    let inner = model.resolve_types()?;
                    for (port, ty) in inner.outport_types(model)?.into_iter().enumerate() {
                        map[id.index()][port] = ty;
                    }
                }
                kind => {
                    for (port, slot) in
                        map[id.index()].iter_mut().enumerate().take(kind.num_outputs())
                    {
                        *slot = kind.output_type(&input_types, port);
                    }
                }
            }
        }
        Ok(TypeMap { map })
    }

    /// Validates the model end to end. See [`ModelError`] for the checked
    /// conditions. Nested subsystem models are validated recursively.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.validate_names()?;
        self.validate_ports()?;
        self.validate_wiring()?;
        self.validate_params()?;
        // Scheduling + type resolution catch loops and unconnected inputs.
        let types = self.resolve_types()?;
        self.validate_typed_wiring(&types)?;
        // Recurse into subsystems.
        for block in &self.blocks {
            if let Some(inner) = block.kind.inner_model() {
                inner.validate()?;
            }
        }
        Ok(())
    }

    fn validate_names(&self) -> Result<(), ModelError> {
        let mut seen = BTreeSet::new();
        for block in &self.blocks {
            if block.name.is_empty() {
                return Err(ModelError::EmptyBlockName { id: block.id });
            }
            if !seen.insert(block.name.as_str()) {
                return Err(ModelError::DuplicateBlockName { name: block.name.clone() });
            }
        }
        Ok(())
    }

    fn validate_ports(&self) -> Result<(), ModelError> {
        for (role, indices) in [
            ("inport", self.inports().iter().map(|&(_, i, _)| i).collect::<Vec<_>>()),
            ("outport", self.outports().iter().map(|&(_, i)| i).collect()),
        ] {
            for (expected, &actual) in indices.iter().enumerate() {
                if actual != expected {
                    return Err(ModelError::BadPortIndices {
                        role,
                        detail: format!(
                            "expected contiguous indices 0..{}, found {:?}",
                            indices.len(),
                            indices
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn validate_wiring(&self) -> Result<(), ModelError> {
        let mut driven: HashMap<PortRef, PortRef> = HashMap::new();
        for c in &self.connections {
            let src_block = self
                .blocks
                .get(c.src.block.index())
                .ok_or(ModelError::DanglingConnection { port: c.src })?;
            if c.src.port >= src_block.kind.num_outputs() {
                return Err(ModelError::DanglingConnection { port: c.src });
            }
            let dst_block = self
                .blocks
                .get(c.dst.block.index())
                .ok_or(ModelError::DanglingConnection { port: c.dst })?;
            if c.dst.port >= dst_block.kind.num_inputs() {
                return Err(ModelError::DanglingConnection { port: c.dst });
            }
            if let Some(prev) = driven.insert(c.dst, c.src) {
                if prev != c.src {
                    return Err(ModelError::MultipleDrivers { port: c.dst });
                }
            }
        }
        // Action outputs must drive exactly the action port of an action
        // subsystem; action subsystems must be driven by an If/SwitchCase.
        for block in &self.blocks {
            match &block.kind {
                BlockKind::If { .. } | BlockKind::SwitchCase { .. } => {
                    for port in 0..block.kind.num_outputs() {
                        let src = PortRef::new(block.id, port);
                        for dst in self.sinks_of(src) {
                            let sink = self.block(dst.block);
                            let ok = matches!(sink.kind, BlockKind::ActionSubsystem { .. })
                                && dst.port == 0;
                            if !ok {
                                return Err(ModelError::BadActionWiring {
                                    detail: format!(
                                        "action output {src} of `{}` must drive port 0 of an \
                                         ActionSubsystem, found {dst} on `{}`",
                                        block.name, sink.name
                                    ),
                                });
                            }
                        }
                    }
                }
                BlockKind::ActionSubsystem { .. } => {
                    let action = PortRef::new(block.id, 0);
                    if let Some(src) = self.source_of(action) {
                        let driver = self.block(src.block);
                        if !matches!(
                            driver.kind,
                            BlockKind::If { .. } | BlockKind::SwitchCase { .. }
                        ) {
                            return Err(ModelError::BadActionWiring {
                                detail: format!(
                                    "action port of `{}` must be driven by an If or SwitchCase \
                                     block, found `{}`",
                                    block.name, driver.name
                                ),
                            });
                        }
                    }
                }
                BlockKind::Merge { inputs } => {
                    for port in 0..*inputs {
                        if let Some(src) = self.source_of(PortRef::new(block.id, port)) {
                            let driver = self.block(src.block);
                            if !driver.kind.is_conditional_subsystem() {
                                return Err(ModelError::BadActionWiring {
                                    detail: format!(
                                        "Merge `{}` input {port} must be driven by a \
                                         conditionally-executed subsystem, found `{}`",
                                        block.name, driver.name
                                    ),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn validate_params(&self) -> Result<(), ModelError> {
        for block in &self.blocks {
            let bad =
                |detail: String| ModelError::BadParameter { block: block.name.clone(), detail };
            match &block.kind {
                BlockKind::Sum { signs } if signs.is_empty() => {
                    return Err(bad("Sum needs at least one input".into()));
                }
                BlockKind::Product { ops } if ops.is_empty() => {
                    return Err(bad("Product needs at least one input".into()));
                }
                BlockKind::MinMax { inputs, .. } if *inputs < 2 => {
                    return Err(bad("MinMax needs at least two inputs".into()));
                }
                BlockKind::Logic { op, inputs }
                    if *op != crate::block::LogicOp::Not && *inputs < 2 =>
                {
                    return Err(bad(format!("{} needs at least two inputs", op.name())));
                }
                BlockKind::Saturation { lower, upper } if lower > upper => {
                    return Err(bad(format!("lower {lower} exceeds upper {upper}")));
                }
                BlockKind::DeadZone { start, end } if start > end => {
                    return Err(bad(format!("start {start} exceeds end {end}")));
                }
                BlockKind::Relay { on_threshold, off_threshold, .. }
                    if on_threshold < off_threshold =>
                {
                    return Err(bad("on threshold below off threshold".into()));
                }
                BlockKind::Quantizer { interval } if *interval <= 0.0 => {
                    return Err(bad("quantization interval must be positive".into()));
                }
                BlockKind::RateLimiter { rising, falling } if *rising < 0.0 || *falling < 0.0 => {
                    return Err(bad("rate limits must be non-negative".into()));
                }
                BlockKind::Backlash { width, .. } if *width < 0.0 => {
                    return Err(bad("backlash width must be non-negative".into()));
                }
                BlockKind::Delay { steps, .. } if *steps == 0 => {
                    return Err(bad("delay must be at least one step".into()));
                }
                BlockKind::DiscreteIntegrator { lower: Some(lo), upper: Some(hi), .. }
                    if lo > hi =>
                {
                    return Err(bad("integrator lower limit exceeds upper".into()));
                }
                BlockKind::CounterFreeRunning { bits } if !matches!(bits, 1..=32) => {
                    return Err(bad("counter width must be 1..=32 bits".into()));
                }
                BlockKind::MultiportSwitch { cases } if *cases == 0 => {
                    return Err(bad("MultiportSwitch needs at least one case".into()));
                }
                BlockKind::Merge { inputs } if *inputs < 2 => {
                    return Err(bad("Merge needs at least two inputs".into()));
                }
                BlockKind::Lookup1D { breakpoints, values } => {
                    if breakpoints.len() != values.len() || breakpoints.len() < 2 {
                        return Err(bad("lookup table needs >= 2 matching points".into()));
                    }
                    if !strictly_increasing(breakpoints) {
                        return Err(bad("breakpoints must be strictly increasing".into()));
                    }
                }
                BlockKind::Lookup2D { row_breaks, col_breaks, values } => {
                    if row_breaks.len() < 2 || col_breaks.len() < 2 {
                        return Err(bad("2-D lookup needs >= 2 breakpoints per axis".into()));
                    }
                    if !strictly_increasing(row_breaks) || !strictly_increasing(col_breaks) {
                        return Err(bad("breakpoints must be strictly increasing".into()));
                    }
                    if values.len() != row_breaks.len()
                        || values.iter().any(|row| row.len() != col_breaks.len())
                    {
                        return Err(bad("2-D lookup table shape mismatch".into()));
                    }
                }
                BlockKind::If { num_inputs, conditions, has_else } => {
                    if conditions.is_empty() {
                        return Err(bad("If block needs at least one condition".into()));
                    }
                    if conditions.is_empty() && !has_else {
                        return Err(bad("If block needs an output".into()));
                    }
                    let allowed: BTreeSet<String> =
                        (1..=*num_inputs).map(|i| format!("u{i}")).collect();
                    for cond in conditions {
                        for var in cond.free_vars() {
                            if !allowed.contains(&var) {
                                return Err(bad(format!(
                                    "condition references `{var}`, expected u1..u{num_inputs}"
                                )));
                            }
                        }
                    }
                }
                BlockKind::SwitchCase { cases, .. } if cases.is_empty() => {
                    return Err(bad("SwitchCase needs at least one case".into()));
                }
                BlockKind::MatlabFunction { function } => {
                    function.validate().map_err(|e| bad(e.to_string()))?;
                }
                BlockKind::Chart { chart } => {
                    chart.validate().map_err(|e| bad(e.to_string()))?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Checks type agreement where it is load-bearing: subsystem boundary
    /// types must match the inner inport declarations.
    fn validate_typed_wiring(&self, types: &TypeMap) -> Result<(), ModelError> {
        for block in &self.blocks {
            if let Some(inner) = block.kind.inner_model() {
                let data_base = if block.kind.is_conditional_subsystem() { 1 } else { 0 };
                for (slot, (_, _, want)) in inner.inports().into_iter().enumerate() {
                    let dst = PortRef::new(block.id, data_base + slot);
                    if let Some(src) = self.source_of(dst) {
                        let got = types.output_type(src);
                        if got != want {
                            return Err(ModelError::TypeMismatch {
                                block: block.name.clone(),
                                detail: format!(
                                    "subsystem data input {slot} is {got} but inner inport \
                                     declares {want}"
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

fn strictly_increasing(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[0] < w[1])
}

/// Resolved signal types for every output port of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeMap {
    map: Vec<Vec<DataType>>,
}

impl TypeMap {
    /// The type of the signal produced at `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not refer to a valid output port of the model
    /// this map was resolved for.
    pub fn output_type(&self, src: PortRef) -> DataType {
        self.map[src.block.index()][src.port]
    }

    /// The types flowing into the model's outports, in port order.
    fn outport_types(&self, model: &Model) -> Result<Vec<DataType>, ModelError> {
        model
            .outports()
            .into_iter()
            .map(|(id, _)| {
                let dst = PortRef::new(id, 0);
                let src = model.source_of(dst).ok_or_else(|| ModelError::UnconnectedInput {
                    block: model.block(id).name().to_string(),
                    port: 0,
                })?;
                Ok(self.output_type(src))
            })
            .collect()
    }
}

/// Errors reported by model validation and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A block has an empty name.
    EmptyBlockName {
        /// The offending block.
        id: BlockId,
    },
    /// Two blocks share a name.
    DuplicateBlockName {
        /// The shared name.
        name: String,
    },
    /// Inport/outport indices are not contiguous from zero.
    BadPortIndices {
        /// `"inport"` or `"outport"`.
        role: &'static str,
        /// Explanation.
        detail: String,
    },
    /// A connection references a nonexistent block or port.
    DanglingConnection {
        /// The bad endpoint.
        port: PortRef,
    },
    /// An input port has more than one driver.
    MultipleDrivers {
        /// The over-driven input.
        port: PortRef,
    },
    /// An input port has no driver.
    UnconnectedInput {
        /// Block name.
        block: String,
        /// Input port index.
        port: usize,
    },
    /// If/SwitchCase action signals are wired to something other than an
    /// action subsystem's action port (or vice versa), or a Merge input is
    /// not fed by a conditional subsystem.
    BadActionWiring {
        /// Explanation.
        detail: String,
    },
    /// A feedback loop has no delay-class block on it.
    AlgebraicLoop {
        /// A block on the cycle.
        block: String,
    },
    /// A block parameter is out of range or inconsistent.
    BadParameter {
        /// Block name.
        block: String,
        /// Explanation.
        detail: String,
    },
    /// Signal types disagree across a subsystem boundary.
    TypeMismatch {
        /// Block name.
        block: String,
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyBlockName { id } => write!(f, "block {id} has an empty name"),
            ModelError::DuplicateBlockName { name } => {
                write!(f, "duplicate block name `{name}`")
            }
            ModelError::BadPortIndices { role, detail } => {
                write!(f, "bad {role} indices: {detail}")
            }
            ModelError::DanglingConnection { port } => {
                write!(f, "connection references nonexistent port {port}")
            }
            ModelError::MultipleDrivers { port } => {
                write!(f, "input port {port} has multiple drivers")
            }
            ModelError::UnconnectedInput { block, port } => {
                write!(f, "input port {port} of `{block}` is unconnected")
            }
            ModelError::BadActionWiring { detail } => write!(f, "bad action wiring: {detail}"),
            ModelError::AlgebraicLoop { block } => {
                write!(f, "algebraic loop through `{block}` (no delay on cycle)")
            }
            ModelError::BadParameter { block, detail } => {
                write!(f, "bad parameter on `{block}`: {detail}")
            }
            ModelError::TypeMismatch { block, detail } => {
                write!(f, "type mismatch at `{block}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{LogicOp, SwitchCriterion};
    use crate::{ModelBuilder, Value};

    fn simple_model() -> Model {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let g = b.add("g", BlockKind::Gain { gain: 2.0 });
        let y = b.outport("y");
        b.connect(u, 0, g, 0);
        b.connect(g, 0, y, 0);
        b.finish().unwrap()
    }

    #[test]
    fn accessors() {
        let m = simple_model();
        assert_eq!(m.name(), "m");
        assert_eq!(m.blocks().len(), 3);
        assert_eq!(m.num_inports(), 1);
        assert_eq!(m.num_outports(), 1);
        assert!(m.block_by_name("g").is_some());
        assert!(m.block_by_name("zzz").is_none());
        assert_eq!(m.total_block_count(), 3);
        assert!(!m.has_state());
    }

    #[test]
    fn execution_order_respects_dataflow() {
        let m = simple_model();
        let order = m.execution_order().unwrap();
        let pos: HashMap<BlockId, usize> = order.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let u = m.block_by_name("u").unwrap().id();
        let g = m.block_by_name("g").unwrap().id();
        let y = m.block_by_name("y").unwrap().id();
        assert!(pos[&u] < pos[&g]);
        assert!(pos[&g] < pos[&y]);
    }

    #[test]
    fn delay_breaks_feedback_loop() {
        // u -> sum -> delay -> (back to sum)
        let mut b = ModelBuilder::new("acc");
        let u = b.inport("u", DataType::F64);
        let sum = b.add("sum", BlockKind::Sum { signs: vec![crate::block::InputSign::Plus; 2] });
        let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
        let y = b.outport("y");
        b.connect(u, 0, sum, 0);
        b.connect(dly, 0, sum, 1);
        b.connect(sum, 0, dly, 0);
        b.connect(sum, 0, y, 0);
        let m = b.finish().unwrap();
        m.execution_order().unwrap();
    }

    #[test]
    fn undelayed_loop_is_rejected() {
        let mut b = ModelBuilder::new("loop");
        let u = b.inport("u", DataType::F64);
        let s1 = b.add("s1", BlockKind::Sum { signs: vec![crate::block::InputSign::Plus; 2] });
        let g = b.add("g", BlockKind::Gain { gain: 0.5 });
        let y = b.outport("y");
        b.connect(u, 0, s1, 0);
        b.connect(g, 0, s1, 1);
        b.connect(s1, 0, g, 0);
        b.connect(s1, 0, y, 0);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, ModelError::AlgebraicLoop { .. }), "{err}");
    }

    #[test]
    fn type_resolution_propagates() {
        let mut b = ModelBuilder::new("t");
        let u = b.inport_at("u", 0, DataType::I16);
        let g = b.add("g", BlockKind::Gain { gain: 3.0 });
        let cmp = b.add("c", BlockKind::Compare { op: crate::block::RelOp::Gt, constant: 5.0 });
        let y = b.outport("y");
        b.connect(u, 0, g, 0);
        b.connect(g, 0, cmp, 0);
        b.connect(cmp, 0, y, 0);
        let m = b.finish().unwrap();
        let types = m.resolve_types().unwrap();
        assert_eq!(types.output_type(PortRef::new(g, 0)), DataType::I16);
        assert_eq!(types.output_type(PortRef::new(cmp, 0)), DataType::Bool);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("x", DataType::F64);
        let t = b.add("x", BlockKind::Terminator);
        b.connect(u, 0, t, 0);
        assert!(matches!(b.finish(), Err(ModelError::DuplicateBlockName { .. })));
    }

    #[test]
    fn noncontiguous_inports_rejected() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport_at("u", 1, DataType::F64); // index 1 without 0
        let t = b.add("t", BlockKind::Terminator);
        b.connect(u, 0, t, 0);
        assert!(matches!(b.finish(), Err(ModelError::BadPortIndices { .. })));
    }

    #[test]
    fn unconnected_input_rejected() {
        let mut b = ModelBuilder::new("m");
        b.inport("u", DataType::F64);
        b.add("g", BlockKind::Gain { gain: 1.0 }); // input never wired
        let err = b.finish().unwrap_err();
        assert!(matches!(err, ModelError::UnconnectedInput { .. }), "{err}");
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let v = b.inport_at("v", 1, DataType::F64);
        let t = b.add("t", BlockKind::Terminator);
        b.connect(u, 0, t, 0);
        b.connect(v, 0, t, 0);
        assert!(matches!(b.finish(), Err(ModelError::MultipleDrivers { .. })));
    }

    #[test]
    fn dangling_connection_rejected() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let t = b.add("t", BlockKind::Terminator);
        b.connect(u, 5, t, 0); // inport has only output 0
        assert!(matches!(b.finish(), Err(ModelError::DanglingConnection { .. })));
    }

    #[test]
    fn bad_parameters_rejected() {
        let cases: Vec<BlockKind> = vec![
            BlockKind::Saturation { lower: 2.0, upper: 1.0 },
            BlockKind::Quantizer { interval: 0.0 },
            BlockKind::Delay { steps: 0, initial: Value::F64(0.0) },
            BlockKind::Lookup1D { breakpoints: vec![0.0, 0.0], values: vec![1.0, 2.0] },
            BlockKind::Logic { op: LogicOp::And, inputs: 1 },
            BlockKind::MinMax { op: crate::block::MinMaxOp::Min, inputs: 1 },
        ];
        for kind in cases {
            let mut b = ModelBuilder::new("m");
            let tag = kind.tag();
            let n_in = kind.num_inputs();
            let blk = b.add("blk", kind);
            for port in 0..n_in {
                let name = format!("u{port}");
                let u = b.inport_at(&name, port, DataType::F64);
                b.connect(u, 0, blk, port);
            }
            let t = b.add("t", BlockKind::Terminator);
            b.connect(blk, 0, t, 0);
            let err = b.finish().unwrap_err();
            assert!(
                matches!(err, ModelError::BadParameter { .. }),
                "{tag}: expected BadParameter, got {err}"
            );
        }
    }

    #[test]
    fn action_wiring_must_target_action_subsystems() {
        use crate::expr::parse_expr;
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let iff = b.add(
            "if",
            BlockKind::If {
                num_inputs: 1,
                conditions: vec![parse_expr("u1 > 0").unwrap()],
                has_else: false,
            },
        );
        let t = b.add("t", BlockKind::Terminator);
        b.connect(u, 0, iff, 0);
        b.connect(iff, 0, t, 0); // action into a Terminator: invalid
        let err = b.finish().unwrap_err();
        assert!(matches!(err, ModelError::BadActionWiring { .. }), "{err}");
    }

    #[test]
    fn switch_type_is_first_data_input() {
        let mut b = ModelBuilder::new("m");
        let a = b.inport_at("a", 0, DataType::I32);
        let c = b.inport_at("c", 1, DataType::Bool);
        let d = b.inport_at("d", 2, DataType::I32);
        let sw = b.add("sw", BlockKind::Switch { criterion: SwitchCriterion::NotZero });
        let y = b.outport("y");
        b.connect(a, 0, sw, 0);
        b.connect(c, 0, sw, 1);
        b.connect(d, 0, sw, 2);
        b.connect(sw, 0, y, 0);
        let m = b.finish().unwrap();
        let types = m.resolve_types().unwrap();
        assert_eq!(types.output_type(PortRef::new(sw, 0)), DataType::I32);
    }

    #[test]
    fn error_display_is_informative() {
        let err = ModelError::AlgebraicLoop { block: "sum".into() };
        assert!(err.to_string().contains("sum"));
        let err = ModelError::UnconnectedInput { block: "g".into(), port: 2 };
        assert!(err.to_string().contains("port 2"));
    }
}
