//! Ergonomic construction of [`Model`]s.

use crate::block::BlockKind;
use crate::model::{BlockId, Connection, Model, ModelError, PortRef};
use crate::{DataType, Value};

/// Builds a [`Model`] block by block, then validates it.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};
///
/// let mut b = ModelBuilder::new("clip");
/// let u = b.inport("u", DataType::F64);
/// let sat = b.add("sat", BlockKind::Saturation { lower: -1.0, upper: 1.0 });
/// let y = b.outport("y");
/// b.connect(u, 0, sat, 0);
/// b.connect(sat, 0, y, 0);
/// let model = b.finish()?;
/// assert_eq!(model.name(), "clip");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelBuilder {
    name: String,
    blocks: Vec<(String, BlockKind)>,
    connections: Vec<Connection>,
    next_inport: usize,
    next_outport: usize,
}

impl ModelBuilder {
    /// Starts a new model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            blocks: Vec::new(),
            connections: Vec::new(),
            next_inport: 0,
            next_outport: 0,
        }
    }

    /// Adds a block and returns its id.
    pub fn add(&mut self, name: impl Into<String>, kind: BlockKind) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push((name.into(), kind));
        id
    }

    /// Adds the next inport (indices assigned in call order).
    pub fn inport(&mut self, name: impl Into<String>, dtype: DataType) -> BlockId {
        let index = self.next_inport;
        self.next_inport += 1;
        self.add(name, BlockKind::Inport { index, dtype })
    }

    /// Adds an inport with an explicit index.
    pub fn inport_at(&mut self, name: impl Into<String>, index: usize, dtype: DataType) -> BlockId {
        self.next_inport = self.next_inport.max(index + 1);
        self.add(name, BlockKind::Inport { index, dtype })
    }

    /// Adds the next outport (indices assigned in call order).
    pub fn outport(&mut self, name: impl Into<String>) -> BlockId {
        let index = self.next_outport;
        self.next_outport += 1;
        self.add(name, BlockKind::Outport { index })
    }

    /// Adds an outport with an explicit index.
    pub fn outport_at(&mut self, name: impl Into<String>, index: usize) -> BlockId {
        self.next_outport = self.next_outport.max(index + 1);
        self.add(name, BlockKind::Outport { index })
    }

    /// Adds a constant block.
    pub fn constant(&mut self, name: impl Into<String>, value: impl Into<Value>) -> BlockId {
        self.add(name, BlockKind::Constant { value: value.into() })
    }

    /// Wires output `src_port` of `src` to input `dst_port` of `dst`.
    pub fn connect(&mut self, src: BlockId, src_port: usize, dst: BlockId, dst_port: usize) {
        self.connections.push(Connection {
            src: PortRef::new(src, src_port),
            dst: PortRef::new(dst, dst_port),
        });
    }

    /// Wires output 0 of `src` to input 0 of `dst` — the common case.
    pub fn wire(&mut self, src: BlockId, dst: BlockId) {
        self.connect(src, 0, dst, 0);
    }

    /// Wires output 0 of `src` to input `dst_port` of `dst`.
    pub fn feed(&mut self, src: BlockId, dst: BlockId, dst_port: usize) {
        self.connect(src, 0, dst, dst_port);
    }

    /// Finishes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found by [`Model::validate`].
    pub fn finish(self) -> Result<Model, ModelError> {
        let model = self.finish_unchecked();
        model.validate()?;
        Ok(model)
    }

    /// Finishes without validation (for tests that need an invalid model).
    pub fn finish_unchecked(self) -> Model {
        Model::from_parts(self.name, self.blocks, self.connections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inport_indices_assigned_in_order() {
        let mut b = ModelBuilder::new("m");
        let u0 = b.inport("a", DataType::F64);
        let u1 = b.inport("b", DataType::I8);
        let t0 = b.add("t0", BlockKind::Terminator);
        let t1 = b.add("t1", BlockKind::Terminator);
        b.wire(u0, t0);
        b.wire(u1, t1);
        let m = b.finish().unwrap();
        let ports = m.inports();
        assert_eq!(ports[0].1, 0);
        assert_eq!(ports[1].1, 1);
        assert_eq!(ports[1].2, DataType::I8);
    }

    #[test]
    fn explicit_indices_interleave_with_automatic() {
        let mut b = ModelBuilder::new("m");
        let a = b.inport_at("a", 1, DataType::F64);
        let c = b.inport_at("c", 0, DataType::F64);
        let d = b.inport("d", DataType::F64); // gets index 2
        for (i, u) in [a, c, d].into_iter().enumerate() {
            let t = b.add(format!("t{i}"), BlockKind::Terminator);
            b.wire(u, t);
        }
        let m = b.finish().unwrap();
        assert_eq!(m.num_inports(), 3);
        assert_eq!(m.inports()[2].0, d);
    }

    #[test]
    fn constant_helper() {
        let mut b = ModelBuilder::new("m");
        let c = b.constant("c", 3.5);
        let y = b.outport("y");
        b.wire(c, y);
        let m = b.finish().unwrap();
        assert!(matches!(
            m.block(c).kind(),
            BlockKind::Constant { value: Value::F64(x) } if *x == 3.5
        ));
    }

    #[test]
    fn finish_unchecked_skips_validation() {
        let mut b = ModelBuilder::new("m");
        b.add("floating_gain", BlockKind::Gain { gain: 1.0 });
        let m = b.finish_unchecked(); // unconnected input, but no error
        assert_eq!(m.blocks().len(), 1);
        assert!(m.validate().is_err());
    }
}
