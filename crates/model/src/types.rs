//! Scalar signal data types and runtime values.
//!
//! CFTCG models carry scalar signals of the Simulink built-in types. The
//! fuzz driver decodes raw bytes into these types ([`Value::from_le_bytes`])
//! and the mutation engine mutates fields knowing their width and class
//! ([`DataType::size`], [`DataType::is_float`]).

use std::fmt;
use std::str::FromStr;

/// Scalar signal data type, mirroring Simulink's built-in types.
///
/// ```
/// use cftcg_model::DataType;
/// assert_eq!(DataType::I32.size(), 4);
/// assert!(DataType::F64.is_float());
/// assert_eq!("uint8".parse::<DataType>().unwrap(), DataType::U8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// `boolean`
    Bool,
    /// `int8`
    I8,
    /// `uint8`
    U8,
    /// `int16`
    I16,
    /// `uint16`
    U16,
    /// `int32`
    I32,
    /// `uint32`
    U32,
    /// `single`
    F32,
    /// `double`
    F64,
}

impl DataType {
    /// All supported data types, in ascending width order.
    pub const ALL: [DataType; 9] = [
        DataType::Bool,
        DataType::I8,
        DataType::U8,
        DataType::I16,
        DataType::U16,
        DataType::I32,
        DataType::U32,
        DataType::F32,
        DataType::F64,
    ];

    /// Width of the type in bytes, as used by the fuzz-driver tuple layout.
    pub const fn size(self) -> usize {
        match self {
            DataType::Bool | DataType::I8 | DataType::U8 => 1,
            DataType::I16 | DataType::U16 => 2,
            DataType::I32 | DataType::U32 | DataType::F32 => 4,
            DataType::F64 => 8,
        }
    }

    /// `true` for `single` and `double`.
    pub const fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// `true` for the signed and unsigned integer types (not `boolean`).
    pub const fn is_integer(self) -> bool {
        !self.is_float() && !matches!(self, DataType::Bool)
    }

    /// `true` for signed integer types.
    pub const fn is_signed(self) -> bool {
        matches!(self, DataType::I8 | DataType::I16 | DataType::I32)
    }

    /// The Simulink-style name: `boolean`, `int8`, ..., `double`.
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Bool => "boolean",
            DataType::I8 => "int8",
            DataType::U8 => "uint8",
            DataType::I16 => "int16",
            DataType::U16 => "uint16",
            DataType::I32 => "int32",
            DataType::U32 => "uint32",
            DataType::F32 => "single",
            DataType::F64 => "double",
        }
    }

    /// The C type name used by the emitted fuzz code (`int8_t`, `double`, ...).
    pub const fn c_name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::I8 => "int8_t",
            DataType::U8 => "uint8_t",
            DataType::I16 => "int16_t",
            DataType::U16 => "uint16_t",
            DataType::I32 => "int32_t",
            DataType::U32 => "uint32_t",
            DataType::F32 => "float",
            DataType::F64 => "double",
        }
    }

    /// The zero value of this type.
    pub const fn zero(self) -> Value {
        match self {
            DataType::Bool => Value::Bool(false),
            DataType::I8 => Value::I8(0),
            DataType::U8 => Value::U8(0),
            DataType::I16 => Value::I16(0),
            DataType::U16 => Value::U16(0),
            DataType::I32 => Value::I32(0),
            DataType::U32 => Value::U32(0),
            DataType::F32 => Value::F32(0.0),
            DataType::F64 => Value::F64(0.0),
        }
    }

    /// Smallest representable value, as `f64` (used by saturating casts).
    pub fn min_f64(self) -> f64 {
        match self {
            DataType::Bool => 0.0,
            DataType::I8 => i8::MIN as f64,
            DataType::U8 => 0.0,
            DataType::I16 => i16::MIN as f64,
            DataType::U16 => 0.0,
            DataType::I32 => i32::MIN as f64,
            DataType::U32 => 0.0,
            DataType::F32 => f64::from(f32::MIN),
            DataType::F64 => f64::MIN,
        }
    }

    /// Largest representable value, as `f64` (used by saturating casts).
    pub fn max_f64(self) -> f64 {
        match self {
            DataType::Bool => 1.0,
            DataType::I8 => i8::MAX as f64,
            DataType::U8 => u8::MAX as f64,
            DataType::I16 => i16::MAX as f64,
            DataType::U16 => u16::MAX as f64,
            DataType::I32 => i32::MAX as f64,
            DataType::U32 => u32::MAX as f64,
            DataType::F32 => f64::from(f32::MAX),
            DataType::F64 => f64::MAX,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a data type name is not recognized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDataTypeError(String);

impl fmt::Display for ParseDataTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown data type `{}`", self.0)
    }
}

impl std::error::Error for ParseDataTypeError {}

impl FromStr for DataType {
    type Err = ParseDataTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "boolean" | "bool" => DataType::Bool,
            "int8" => DataType::I8,
            "uint8" => DataType::U8,
            "int16" => DataType::I16,
            "uint16" => DataType::U16,
            "int32" => DataType::I32,
            "uint32" => DataType::U32,
            "single" | "float" => DataType::F32,
            "double" => DataType::F64,
            other => return Err(ParseDataTypeError(other.to_string())),
        })
    }
}

/// A runtime scalar value carried on a signal.
///
/// Arithmetic in the engines promotes to `f64` and casts back to the signal's
/// declared type with saturation ([`Value::cast`]), approximating Simulink's
/// default saturating fixed-point behaviour.
///
/// ```
/// use cftcg_model::{DataType, Value};
/// let v = Value::F64(300.7);
/// assert_eq!(v.cast(DataType::U8), Value::U8(255)); // saturates
/// assert_eq!(Value::F64(-2.5).cast(DataType::I32), Value::I32(-3)); // rounds half away
/// assert!(Value::I8(-1).is_truthy());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `boolean`
    Bool(bool),
    /// `int8`
    I8(i8),
    /// `uint8`
    U8(u8),
    /// `int16`
    I16(i16),
    /// `uint16`
    U16(u16),
    /// `int32`
    I32(i32),
    /// `uint32`
    U32(u32),
    /// `single`
    F32(f32),
    /// `double`
    F64(f64),
}

impl Value {
    /// The data type of this value.
    pub const fn data_type(self) -> DataType {
        match self {
            Value::Bool(_) => DataType::Bool,
            Value::I8(_) => DataType::I8,
            Value::U8(_) => DataType::U8,
            Value::I16(_) => DataType::I16,
            Value::U16(_) => DataType::U16,
            Value::I32(_) => DataType::I32,
            Value::U32(_) => DataType::U32,
            Value::F32(_) => DataType::F32,
            Value::F64(_) => DataType::F64,
        }
    }

    /// Numeric view of the value (`true` → 1.0).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::I8(v) => f64::from(v),
            Value::U8(v) => f64::from(v),
            Value::I16(v) => f64::from(v),
            Value::U16(v) => f64::from(v),
            Value::I32(v) => f64::from(v),
            Value::U32(v) => f64::from(v),
            Value::F32(v) => f64::from(v),
            Value::F64(v) => v,
        }
    }

    /// Simulink truthiness: nonzero is true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            other => other.as_f64() != 0.0,
        }
    }

    /// Casts to `to` with Simulink-style saturation.
    ///
    /// Floats converting to integers round half away from zero, then
    /// saturate to the target range. NaN converts to zero.
    pub fn cast(self, to: DataType) -> Value {
        if self.data_type() == to {
            return self;
        }
        let x = self.as_f64();
        Value::from_f64(x, to)
    }

    /// Builds a value of type `ty` from an `f64`, rounding half away from
    /// zero and saturating integers; NaN becomes zero for integer targets.
    pub fn from_f64(x: f64, ty: DataType) -> Value {
        match ty {
            DataType::F64 => Value::F64(x),
            DataType::F32 => Value::F32(x as f32),
            DataType::Bool => Value::Bool(x != 0.0 && !x.is_nan()),
            _ => {
                let r = if x.is_nan() { 0.0 } else { x.round() };
                let clamped = r.clamp(ty.min_f64(), ty.max_f64());
                match ty {
                    DataType::I8 => Value::I8(clamped as i8),
                    DataType::U8 => Value::U8(clamped as u8),
                    DataType::I16 => Value::I16(clamped as i16),
                    DataType::U16 => Value::U16(clamped as u16),
                    DataType::I32 => Value::I32(clamped as i32),
                    DataType::U32 => Value::U32(clamped as u32),
                    _ => unreachable!("float and bool handled above"),
                }
            }
        }
    }

    /// Decodes a value of type `ty` from little-endian bytes.
    ///
    /// This is the data-segmentation step of the generated fuzz driver
    /// (`memcpy(&inport_var, data + offset, size)` in the paper's Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() < ty.size()`.
    pub fn from_le_bytes(bytes: &[u8], ty: DataType) -> Value {
        match ty {
            DataType::Bool => Value::Bool(bytes[0] & 1 != 0),
            DataType::I8 => Value::I8(bytes[0] as i8),
            DataType::U8 => Value::U8(bytes[0]),
            DataType::I16 => Value::I16(i16::from_le_bytes([bytes[0], bytes[1]])),
            DataType::U16 => Value::U16(u16::from_le_bytes([bytes[0], bytes[1]])),
            DataType::I32 => {
                Value::I32(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            DataType::U32 => {
                Value::U32(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            DataType::F32 => {
                Value::F32(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
            }
            DataType::F64 => Value::F64(f64::from_le_bytes([
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
            ])),
        }
    }

    /// Encodes the value as little-endian bytes (inverse of
    /// [`Value::from_le_bytes`], except `Bool` which normalizes to 0/1).
    pub fn to_le_bytes(self) -> Vec<u8> {
        match self {
            Value::Bool(b) => vec![u8::from(b)],
            Value::I8(v) => v.to_le_bytes().to_vec(),
            Value::U8(v) => v.to_le_bytes().to_vec(),
            Value::I16(v) => v.to_le_bytes().to_vec(),
            Value::U16(v) => v.to_le_bytes().to_vec(),
            Value::I32(v) => v.to_le_bytes().to_vec(),
            Value::U32(v) => v.to_le_bytes().to_vec(),
            Value::F32(v) => v.to_le_bytes().to_vec(),
            Value::F64(v) => v.to_le_bytes().to_vec(),
        }
    }

    /// Parses a literal of the given type from its display form.
    ///
    /// # Errors
    ///
    /// Returns an error when the text is not a literal of type `ty`.
    pub fn parse_typed(text: &str, ty: DataType) -> Result<Value, ParseValueError> {
        let bad = || ParseValueError { text: text.to_string(), ty };
        Ok(match ty {
            DataType::Bool => match text {
                "true" | "1" => Value::Bool(true),
                "false" | "0" => Value::Bool(false),
                _ => return Err(bad()),
            },
            DataType::I8 => Value::I8(text.parse().map_err(|_| bad())?),
            DataType::U8 => Value::U8(text.parse().map_err(|_| bad())?),
            DataType::I16 => Value::I16(text.parse().map_err(|_| bad())?),
            DataType::U16 => Value::U16(text.parse().map_err(|_| bad())?),
            DataType::I32 => Value::I32(text.parse().map_err(|_| bad())?),
            DataType::U32 => Value::U32(text.parse().map_err(|_| bad())?),
            DataType::F32 => Value::F32(text.parse().map_err(|_| bad())?),
            DataType::F64 => Value::F64(text.parse().map_err(|_| bad())?),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::I8(v) => write!(f, "{v}"),
            Value::U8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

/// Error returned when a value literal cannot be parsed as the given type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    text: String,
    ty: DataType,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` is not a valid {} literal", self.text, self.ty)
    }
}

impl std::error::Error for ParseValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_layout() {
        assert_eq!(DataType::Bool.size(), 1);
        assert_eq!(DataType::I8.size(), 1);
        assert_eq!(DataType::I16.size(), 2);
        assert_eq!(DataType::U32.size(), 4);
        assert_eq!(DataType::F32.size(), 4);
        assert_eq!(DataType::F64.size(), 8);
    }

    #[test]
    fn classification() {
        assert!(DataType::F32.is_float());
        assert!(!DataType::I32.is_float());
        assert!(DataType::I16.is_integer());
        assert!(!DataType::Bool.is_integer());
        assert!(DataType::I8.is_signed());
        assert!(!DataType::U8.is_signed());
    }

    #[test]
    fn parse_and_display_names_roundtrip() {
        for ty in DataType::ALL {
            assert_eq!(ty.name().parse::<DataType>().unwrap(), ty);
        }
        assert!("int64".parse::<DataType>().is_err());
    }

    #[test]
    fn zero_has_matching_type() {
        for ty in DataType::ALL {
            assert_eq!(ty.zero().data_type(), ty);
            assert_eq!(ty.zero().as_f64(), 0.0);
        }
    }

    #[test]
    fn cast_saturates_integers() {
        assert_eq!(Value::F64(1e9).cast(DataType::I16), Value::I16(i16::MAX));
        assert_eq!(Value::F64(-1e9).cast(DataType::U8), Value::U8(0));
        assert_eq!(Value::I32(-5).cast(DataType::U32), Value::U32(0));
        assert_eq!(Value::F64(127.4).cast(DataType::I8), Value::I8(127));
    }

    #[test]
    fn cast_rounds_half_away_from_zero() {
        assert_eq!(Value::F64(2.5).cast(DataType::I32), Value::I32(3));
        assert_eq!(Value::F64(-2.5).cast(DataType::I32), Value::I32(-3));
        assert_eq!(Value::F64(2.4).cast(DataType::I32), Value::I32(2));
    }

    #[test]
    fn cast_nan_to_integer_is_zero() {
        assert_eq!(Value::F64(f64::NAN).cast(DataType::I32), Value::I32(0));
        assert_eq!(Value::F64(f64::NAN).cast(DataType::Bool), Value::Bool(false));
    }

    #[test]
    fn cast_to_bool_is_truthiness() {
        assert_eq!(Value::I32(2).cast(DataType::Bool), Value::Bool(true));
        assert_eq!(Value::F64(0.0).cast(DataType::Bool), Value::Bool(false));
        assert_eq!(Value::F64(-0.5).cast(DataType::Bool), Value::Bool(true));
    }

    #[test]
    fn cast_same_type_is_identity() {
        let v = Value::F32(1.25);
        assert_eq!(v.cast(DataType::F32), v);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::I8(-1).is_truthy());
        assert!(!Value::U32(0).is_truthy());
        assert!(Value::F64(0.001).is_truthy());
    }

    #[test]
    fn le_bytes_roundtrip_all_types() {
        let samples = [
            Value::Bool(true),
            Value::I8(-5),
            Value::U8(200),
            Value::I16(-1234),
            Value::U16(65000),
            Value::I32(-100_000),
            Value::U32(4_000_000_000),
            Value::F32(3.5),
            Value::F64(-2.25e10),
        ];
        for v in samples {
            let bytes = v.to_le_bytes();
            assert_eq!(bytes.len(), v.data_type().size());
            assert_eq!(Value::from_le_bytes(&bytes, v.data_type()), v);
        }
    }

    #[test]
    fn bool_from_bytes_uses_low_bit() {
        assert_eq!(Value::from_le_bytes(&[2], DataType::Bool), Value::Bool(false));
        assert_eq!(Value::from_le_bytes(&[3], DataType::Bool), Value::Bool(true));
    }

    #[test]
    fn parse_typed_literals() {
        assert_eq!(Value::parse_typed("true", DataType::Bool).unwrap(), Value::Bool(true));
        assert_eq!(Value::parse_typed("-42", DataType::I16).unwrap(), Value::I16(-42));
        assert_eq!(Value::parse_typed("2.5", DataType::F64).unwrap(), Value::F64(2.5));
        assert!(Value::parse_typed("2.5", DataType::I32).is_err());
        assert!(Value::parse_typed("maybe", DataType::Bool).is_err());
        let err = Value::parse_typed("x", DataType::U8).unwrap_err();
        assert!(err.to_string().contains("uint8"));
    }

    #[test]
    fn display_roundtrips_through_parse_typed() {
        let samples = [Value::I32(-7), Value::U16(9), Value::F64(1.5), Value::Bool(false)];
        for v in samples {
            let text = v.to_string();
            assert_eq!(Value::parse_typed(&text, v.data_type()).unwrap(), v);
        }
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3), Value::I32(3));
        assert_eq!(Value::from(1.5), Value::F64(1.5));
    }

    #[test]
    fn c_names() {
        assert_eq!(DataType::I8.c_name(), "int8_t");
        assert_eq!(DataType::F64.c_name(), "double");
    }
}
