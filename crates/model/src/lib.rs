#![warn(missing_docs)]

//! Block-diagram model IR for CFTCG.
//!
//! This crate is the reproduction's stand-in for Simulink's model layer: it
//! defines the signal [`DataType`]s and [`Value`]s, a catalog of 45+
//! [`BlockKind`]s (70+ templates counting operator sub-variants), an
//! embedded expression/statement language ([`expr`]), MATLAB-Function and
//! Stateflow-style blocks ([`FunctionDef`], [`Chart`]), hierarchical
//! subsystems, structural validation, deterministic scheduling, signal type
//! resolution, and an XML on-disk format (`.mdlx`) loaded with the
//! from-scratch [`cftcg_slimxml`] parser — mirroring the paper's
//! "Unzip and TinyXML" model loading path.
//!
//! Downstream crates build on this IR:
//!
//! * `cftcg-sim` interprets it (the slow, Simulink-like reference engine),
//! * `cftcg-codegen` compiles it with model-level branch instrumentation
//!   (the paper's "Fuzzing Code Generation"),
//! * `cftcg-fuzz` mutates its input tuples and fuzzes the compiled form.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_model::{load_model, save_model, BlockKind, DataType, ModelBuilder};
//!
//! let mut b = ModelBuilder::new("thermostat");
//! let temp = b.inport("temp", DataType::F64);
//! let too_hot = b.add("too_hot", BlockKind::Compare {
//!     op: cftcg_model::RelOp::Gt,
//!     constant: 30.0,
//! });
//! let fan = b.outport("fan");
//! b.wire(temp, too_hot);
//! b.wire(too_hot, fan);
//! let model = b.finish()?;
//!
//! let xml = save_model(&model);
//! let reloaded = load_model(&xml)?;
//! assert_eq!(reloaded, model);
//! # Ok(())
//! # }
//! ```

mod block;
mod builder;
mod chart;
pub mod expr;
mod function;
pub mod interp;
mod model;
mod types;
mod xml;

pub use block::{
    BlockKind, EdgeKind, InputSign, LogicOp, MathFunc, MinMaxOp, ProductOp, RelOp, SwitchCriterion,
};
pub use builder::ModelBuilder;
pub use chart::{Chart, State, Transition, ValidateChartError};
pub use function::{FunctionDef, ValidateFunctionError};
pub use model::{Block, BlockId, Connection, Model, ModelError, PortRef, TypeMap};
pub use types::{DataType, ParseDataTypeError, ParseValueError, Value};
pub use xml::{load_model, save_model, LoadModelError};
