//! XML persistence for models — the `.mdlx` format.
//!
//! A `.mdlx` file is an XML document with a `<model>` root listing
//! `<block>` and `<connection>` elements. Connections reference blocks by
//! name (`from="gain1:0" to="sum:1"`), so files diff cleanly. Nested
//! subsystems embed a child `<model>`; charts and MATLAB functions embed
//! structured child elements with statement bodies stored as source text.
//!
//! This module is the reproduction's "Model Parser" stage (the paper loads
//! `.slx` archives with Unzip + TinyXML; we load `.mdlx` with
//! [`cftcg_slimxml`]).

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use cftcg_slimxml::{parse, Document, Element};

use crate::block::{
    BlockKind, EdgeKind, InputSign, LogicOp, MathFunc, MinMaxOp, ProductOp, RelOp, SwitchCriterion,
};
use crate::chart::{Chart, State, Transition};
use crate::expr::{format_stmts, parse_expr, parse_stmts};
use crate::function::FunctionDef;
use crate::model::{Connection, Model, PortRef};
use crate::{DataType, Value};

/// Error produced when a `.mdlx` document cannot be loaded.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadModelError {
    message: String,
}

impl LoadModelError {
    fn new(message: impl Into<String>) -> Self {
        LoadModelError { message: message.into() }
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot load model: {}", self.message)
    }
}

impl Error for LoadModelError {}

impl From<cftcg_slimxml::ParseXmlError> for LoadModelError {
    fn from(e: cftcg_slimxml::ParseXmlError) -> Self {
        LoadModelError::new(e.to_string())
    }
}

impl From<crate::expr::ParseExprError> for LoadModelError {
    fn from(e: crate::expr::ParseExprError) -> Self {
        LoadModelError::new(e.to_string())
    }
}

/// Serializes a model to `.mdlx` XML text.
///
/// The output round-trips through [`load_model`] to an equal [`Model`].
pub fn save_model(model: &Model) -> String {
    Document::new(model_to_element(model)).to_xml()
}

/// Parses a model from `.mdlx` XML text.
///
/// Note that this performs *structural* loading only; call
/// [`Model::validate`] afterwards if the file is untrusted.
///
/// # Errors
///
/// Returns [`LoadModelError`] when the XML is malformed, a block kind or
/// parameter is unknown, or a connection references a missing block.
pub fn load_model(xml: &str) -> Result<Model, LoadModelError> {
    let doc = parse(xml)?;
    if doc.root.name != "model" {
        return Err(LoadModelError::new(format!(
            "expected <model> root, found <{}>",
            doc.root.name
        )));
    }
    model_from_element(&doc.root)
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn model_to_element(model: &Model) -> Element {
    let mut root = Element::new("model").with_attr("name", model.name());
    for block in model.blocks() {
        let mut e = Element::new("block")
            .with_attr("name", block.name())
            .with_attr("kind", block.kind().tag());
        write_kind(&mut e, block.kind());
        root.children.push(cftcg_slimxml::Node::Element(e));
    }
    for c in model.connections() {
        let from = format!("{}:{}", model.block(c.src.block).name(), c.src.port);
        let to = format!("{}:{}", model.block(c.dst.block).name(), c.dst.port);
        root.children.push(cftcg_slimxml::Node::Element(
            Element::new("connection").with_attr("from", from).with_attr("to", to),
        ));
    }
    root
}

fn param(e: &mut Element, name: &str, value: impl fmt::Display) {
    e.children.push(cftcg_slimxml::Node::Element(
        Element::new("param").with_attr("name", name).with_text(value.to_string()),
    ));
}

fn typed_value_params(e: &mut Element, value: Value) {
    param(e, "dtype", value.data_type());
    param(e, "value", value);
}

fn csv(xs: &[f64]) -> String {
    xs.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
}

fn write_kind(e: &mut Element, kind: &BlockKind) {
    match kind {
        BlockKind::Inport { index, dtype } => {
            param(e, "index", index);
            param(e, "dtype", dtype);
        }
        BlockKind::Outport { index } => param(e, "index", index),
        BlockKind::Constant { value } => typed_value_params(e, *value),
        BlockKind::Ground { dtype } => param(e, "dtype", dtype),
        BlockKind::Terminator
        | BlockKind::Assertion
        | BlockKind::Abs
        | BlockKind::UnaryMinus
        | BlockKind::Signum
        | BlockKind::ZeroOrderHold => {}
        BlockKind::Sum { signs } => {
            let text: String = signs
                .iter()
                .map(|s| match s {
                    InputSign::Plus => '+',
                    InputSign::Minus => '-',
                })
                .collect();
            param(e, "signs", text);
        }
        BlockKind::Product { ops } => {
            let text: String = ops
                .iter()
                .map(|o| match o {
                    ProductOp::Mul => '*',
                    ProductOp::Div => '/',
                })
                .collect();
            param(e, "ops", text);
        }
        BlockKind::Gain { gain } => param(e, "gain", gain),
        BlockKind::Bias { bias } => param(e, "bias", bias),
        BlockKind::MinMax { op, inputs } => {
            param(
                e,
                "op",
                match op {
                    MinMaxOp::Min => "min",
                    MinMaxOp::Max => "max",
                },
            );
            param(e, "inputs", inputs);
        }
        BlockKind::Math { func } => param(e, "func", func.name()),
        BlockKind::Saturation { lower, upper } => {
            param(e, "lower", lower);
            param(e, "upper", upper);
        }
        BlockKind::DeadZone { start, end } => {
            param(e, "start", start);
            param(e, "end", end);
        }
        BlockKind::Relay { on_threshold, off_threshold, on_output, off_output } => {
            param(e, "on_threshold", on_threshold);
            param(e, "off_threshold", off_threshold);
            param(e, "on_output", on_output);
            param(e, "off_output", off_output);
        }
        BlockKind::Quantizer { interval } => param(e, "interval", interval),
        BlockKind::RateLimiter { rising, falling } => {
            param(e, "rising", rising);
            param(e, "falling", falling);
        }
        BlockKind::Backlash { width, initial } => {
            param(e, "width", width);
            param(e, "initial", initial);
        }
        BlockKind::CoulombFriction { offset, gain } => {
            param(e, "offset", offset);
            param(e, "gain", gain);
        }
        BlockKind::Logic { op, inputs } => {
            param(e, "op", op.name());
            param(e, "inputs", inputs);
        }
        BlockKind::Relational { op } => param(e, "op", op.symbol()),
        BlockKind::Compare { op, constant } => {
            param(e, "op", op.symbol());
            param(e, "constant", constant);
        }
        BlockKind::Switch { criterion } => match criterion {
            SwitchCriterion::GreaterEqual(t) => {
                param(e, "criterion", "ge");
                param(e, "threshold", t);
            }
            SwitchCriterion::Greater(t) => {
                param(e, "criterion", "gt");
                param(e, "threshold", t);
            }
            SwitchCriterion::NotZero => param(e, "criterion", "nz"),
        },
        BlockKind::MultiportSwitch { cases } => param(e, "cases", cases),
        BlockKind::Merge { inputs } => param(e, "inputs", inputs),
        BlockKind::DataTypeConversion { to } => param(e, "to", to),
        BlockKind::UnitDelay { initial } | BlockKind::Memory { initial } => {
            typed_value_params(e, *initial);
        }
        BlockKind::Delay { steps, initial } => {
            param(e, "steps", steps);
            typed_value_params(e, *initial);
        }
        BlockKind::DiscreteIntegrator { gain, initial, lower, upper } => {
            param(e, "gain", gain);
            param(e, "initial", initial);
            if let Some(lo) = lower {
                param(e, "lower", lo);
            }
            if let Some(hi) = upper {
                param(e, "upper", hi);
            }
        }
        BlockKind::CounterLimited { limit } => param(e, "limit", limit),
        BlockKind::CounterFreeRunning { bits } => param(e, "bits", bits),
        BlockKind::EdgeDetect { kind } => param(e, "edge", edge_name(*kind)),
        BlockKind::Lookup1D { breakpoints, values } => {
            param(e, "breakpoints", csv(breakpoints));
            param(e, "values", csv(values));
        }
        BlockKind::Lookup2D { row_breaks, col_breaks, values } => {
            param(e, "row_breaks", csv(row_breaks));
            param(e, "col_breaks", csv(col_breaks));
            let rows: Vec<String> = values.iter().map(|r| csv(r)).collect();
            param(e, "values", rows.join(";"));
        }
        BlockKind::If { num_inputs, conditions, has_else } => {
            param(e, "num_inputs", num_inputs);
            param(e, "has_else", has_else);
            for cond in conditions {
                e.children.push(cftcg_slimxml::Node::Element(
                    Element::new("condition").with_text(cond.to_string()),
                ));
            }
        }
        BlockKind::SwitchCase { cases, has_default } => {
            param(e, "has_default", has_default);
            for case in cases {
                let labels = case.iter().map(i64::to_string).collect::<Vec<_>>().join(",");
                e.children
                    .push(cftcg_slimxml::Node::Element(Element::new("case").with_text(labels)));
            }
        }
        BlockKind::ActionSubsystem { model }
        | BlockKind::EnabledSubsystem { model }
        | BlockKind::Subsystem { model } => {
            e.children.push(cftcg_slimxml::Node::Element(model_to_element(model)));
        }
        BlockKind::TriggeredSubsystem { model, edge } => {
            param(e, "edge", edge_name(*edge));
            e.children.push(cftcg_slimxml::Node::Element(model_to_element(model)));
        }
        BlockKind::MatlabFunction { function } => {
            let mut fe = Element::new("function");
            for (name, ty) in function.inputs() {
                fe.children.push(cftcg_slimxml::Node::Element(
                    Element::new("input").with_attr("name", name).with_attr("dtype", ty.name()),
                ));
            }
            for (name, ty) in function.outputs() {
                fe.children.push(cftcg_slimxml::Node::Element(
                    Element::new("output").with_attr("name", name).with_attr("dtype", ty.name()),
                ));
            }
            fe.children.push(cftcg_slimxml::Node::Element(
                Element::new("body").with_text(function.body_text()),
            ));
            e.children.push(cftcg_slimxml::Node::Element(fe));
        }
        BlockKind::Chart { chart } => {
            e.children.push(cftcg_slimxml::Node::Element(chart_to_element(chart)));
        }
    }
}

fn edge_name(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Rising => "rising",
        EdgeKind::Falling => "falling",
        EdgeKind::Either => "either",
    }
}

fn chart_to_element(chart: &Chart) -> Element {
    let mut ce = Element::new("chart").with_attr("initial", chart.initial.to_string());
    for (name, ty) in &chart.inputs {
        ce.children.push(cftcg_slimxml::Node::Element(
            Element::new("input").with_attr("name", name).with_attr("dtype", ty.name()),
        ));
    }
    for (name, ty) in &chart.outputs {
        ce.children.push(cftcg_slimxml::Node::Element(
            Element::new("output").with_attr("name", name).with_attr("dtype", ty.name()),
        ));
    }
    for (name, ty, init) in &chart.variables {
        ce.children.push(cftcg_slimxml::Node::Element(
            Element::new("variable")
                .with_attr("name", name)
                .with_attr("dtype", ty.name())
                .with_attr("init", init.to_string()),
        ));
    }
    for state in &chart.states {
        let mut se = Element::new("state").with_attr("name", &state.name);
        if !state.entry.is_empty() {
            se.children.push(cftcg_slimxml::Node::Element(
                Element::new("entry").with_text(format_stmts(&state.entry)),
            ));
        }
        if !state.during.is_empty() {
            se.children.push(cftcg_slimxml::Node::Element(
                Element::new("during").with_text(format_stmts(&state.during)),
            ));
        }
        ce.children.push(cftcg_slimxml::Node::Element(se));
    }
    for t in &chart.transitions {
        let mut te = Element::new("transition")
            .with_attr("from", t.from.to_string())
            .with_attr("to", t.to.to_string());
        if let Some(guard) = &t.guard {
            te.set_attr("guard", guard.to_string());
        }
        if !t.action.is_empty() {
            te = te.with_text(format_stmts(&t.action));
        }
        ce.children.push(cftcg_slimxml::Node::Element(te));
    }
    ce
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

struct Params<'a> {
    element: &'a Element,
    block: &'a str,
}

impl<'a> Params<'a> {
    fn text(&self, name: &str) -> Result<String, LoadModelError> {
        self.element
            .children_named("param")
            .find(|p| p.attr("name") == Some(name))
            .map(|p| p.text())
            .ok_or_else(|| {
                LoadModelError::new(format!("block `{}` is missing parameter `{name}`", self.block))
            })
    }

    fn opt_text(&self, name: &str) -> Option<String> {
        self.element
            .children_named("param")
            .find(|p| p.attr("name") == Some(name))
            .map(|p| p.text())
    }

    fn parse<T: FromStr>(&self, name: &str) -> Result<T, LoadModelError>
    where
        T::Err: fmt::Display,
    {
        let text = self.text(name)?;
        text.parse().map_err(|e| {
            LoadModelError::new(format!(
                "block `{}` parameter `{name}`: {e} (got `{text}`)",
                self.block
            ))
        })
    }

    fn opt_parse<T: FromStr>(&self, name: &str) -> Result<Option<T>, LoadModelError>
    where
        T::Err: fmt::Display,
    {
        match self.opt_text(name) {
            None => Ok(None),
            Some(text) => text.parse().map(Some).map_err(|e| {
                LoadModelError::new(format!(
                    "block `{}` parameter `{name}`: {e} (got `{text}`)",
                    self.block
                ))
            }),
        }
    }

    fn typed_value(&self) -> Result<Value, LoadModelError> {
        let ty: DataType = self.parse("dtype")?;
        let text = self.text("value")?;
        Value::parse_typed(&text, ty)
            .map_err(|e| LoadModelError::new(format!("block `{}`: {e}", self.block)))
    }

    fn csv(&self, name: &str) -> Result<Vec<f64>, LoadModelError> {
        parse_csv(&self.text(name)?).map_err(|e| {
            LoadModelError::new(format!("block `{}` parameter `{name}`: {e}", self.block))
        })
    }
}

fn parse_csv(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f64>().map_err(|_| format!("bad number `{s}`")))
        .collect()
}

fn model_from_element(root: &Element) -> Result<Model, LoadModelError> {
    let name = root
        .attr("name")
        .ok_or_else(|| LoadModelError::new("<model> is missing a name"))?
        .to_string();
    let mut blocks = Vec::new();
    for be in root.children_named("block") {
        let block_name = be
            .attr("name")
            .ok_or_else(|| LoadModelError::new("<block> is missing a name"))?
            .to_string();
        let kind = read_kind(be, &block_name)?;
        blocks.push((block_name, kind));
    }
    let mut connections = Vec::new();
    let find = |endpoint: &str| -> Result<PortRef, LoadModelError> {
        let (bname, port) = endpoint
            .rsplit_once(':')
            .ok_or_else(|| LoadModelError::new(format!("bad connection endpoint `{endpoint}`")))?;
        let index = blocks.iter().position(|(n, _)| n == bname).ok_or_else(|| {
            LoadModelError::new(format!("connection references unknown block `{bname}`"))
        })?;
        let port: usize = port.parse().map_err(|_| {
            LoadModelError::new(format!("bad port in connection endpoint `{endpoint}`"))
        })?;
        Ok(PortRef::new(crate::model::BlockId::from_index(index), port))
    };
    for ce in root.children_named("connection") {
        let from =
            ce.attr("from").ok_or_else(|| LoadModelError::new("<connection> missing `from`"))?;
        let to = ce.attr("to").ok_or_else(|| LoadModelError::new("<connection> missing `to`"))?;
        connections.push(Connection { src: find(from)?, dst: find(to)? });
    }
    Ok(Model::from_parts(name, blocks, connections))
}

fn read_kind(e: &Element, block: &str) -> Result<BlockKind, LoadModelError> {
    let tag = e
        .attr("kind")
        .ok_or_else(|| LoadModelError::new(format!("block `{block}` is missing a kind")))?;
    let p = Params { element: e, block };
    let inner_model = || -> Result<Box<Model>, LoadModelError> {
        let me = e.child("model").ok_or_else(|| {
            LoadModelError::new(format!("subsystem `{block}` is missing its <model>"))
        })?;
        Ok(Box::new(model_from_element(me)?))
    };
    Ok(match tag {
        "Inport" => BlockKind::Inport { index: p.parse("index")?, dtype: p.parse("dtype")? },
        "Outport" => BlockKind::Outport { index: p.parse("index")? },
        "Constant" => BlockKind::Constant { value: p.typed_value()? },
        "Ground" => BlockKind::Ground { dtype: p.parse("dtype")? },
        "Terminator" => BlockKind::Terminator,
        "Assertion" => BlockKind::Assertion,
        "Abs" => BlockKind::Abs,
        "UnaryMinus" => BlockKind::UnaryMinus,
        "Signum" => BlockKind::Signum,
        "ZeroOrderHold" => BlockKind::ZeroOrderHold,
        "Sum" => {
            let signs = p
                .text("signs")?
                .chars()
                .map(|c| match c {
                    '+' => Ok(InputSign::Plus),
                    '-' => Ok(InputSign::Minus),
                    other => {
                        Err(LoadModelError::new(format!("block `{block}`: bad sign `{other}`")))
                    }
                })
                .collect::<Result<_, _>>()?;
            BlockKind::Sum { signs }
        }
        "Product" => {
            let ops = p
                .text("ops")?
                .chars()
                .map(|c| match c {
                    '*' => Ok(ProductOp::Mul),
                    '/' => Ok(ProductOp::Div),
                    other => Err(LoadModelError::new(format!("block `{block}`: bad op `{other}`"))),
                })
                .collect::<Result<_, _>>()?;
            BlockKind::Product { ops }
        }
        "Gain" => BlockKind::Gain { gain: p.parse("gain")? },
        "Bias" => BlockKind::Bias { bias: p.parse("bias")? },
        "MinMax" => BlockKind::MinMax {
            op: match p.text("op")?.as_str() {
                "min" => MinMaxOp::Min,
                "max" => MinMaxOp::Max,
                other => {
                    return Err(LoadModelError::new(format!(
                        "block `{block}`: bad minmax op `{other}`"
                    )))
                }
            },
            inputs: p.parse("inputs")?,
        },
        "Math" => {
            let name = p.text("func")?;
            let func = [
                MathFunc::Sqrt,
                MathFunc::Exp,
                MathFunc::Ln,
                MathFunc::Log10,
                MathFunc::Sin,
                MathFunc::Cos,
                MathFunc::Tan,
                MathFunc::Square,
                MathFunc::Reciprocal,
                MathFunc::Floor,
                MathFunc::Ceil,
                MathFunc::Round,
                MathFunc::Mod,
                MathFunc::Rem,
                MathFunc::Pow,
                MathFunc::Atan2,
                MathFunc::Hypot,
            ]
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| {
                LoadModelError::new(format!("block `{block}`: unknown math func `{name}`"))
            })?;
            BlockKind::Math { func }
        }
        "Saturation" => {
            BlockKind::Saturation { lower: p.parse("lower")?, upper: p.parse("upper")? }
        }
        "DeadZone" => BlockKind::DeadZone { start: p.parse("start")?, end: p.parse("end")? },
        "Relay" => BlockKind::Relay {
            on_threshold: p.parse("on_threshold")?,
            off_threshold: p.parse("off_threshold")?,
            on_output: p.parse("on_output")?,
            off_output: p.parse("off_output")?,
        },
        "Quantizer" => BlockKind::Quantizer { interval: p.parse("interval")? },
        "RateLimiter" => {
            BlockKind::RateLimiter { rising: p.parse("rising")?, falling: p.parse("falling")? }
        }
        "Backlash" => {
            BlockKind::Backlash { width: p.parse("width")?, initial: p.parse("initial")? }
        }
        "CoulombFriction" => {
            BlockKind::CoulombFriction { offset: p.parse("offset")?, gain: p.parse("gain")? }
        }
        "Logic" => {
            let name = p.text("op")?;
            let op = [
                LogicOp::And,
                LogicOp::Or,
                LogicOp::Nand,
                LogicOp::Nor,
                LogicOp::Xor,
                LogicOp::Not,
            ]
            .into_iter()
            .find(|o| o.name() == name)
            .ok_or_else(|| {
                LoadModelError::new(format!("block `{block}`: unknown logic op `{name}`"))
            })?;
            BlockKind::Logic { op, inputs: p.parse("inputs")? }
        }
        "Relational" => BlockKind::Relational { op: rel_op(&p.text("op")?, block)? },
        "Compare" => BlockKind::Compare {
            op: rel_op(&p.text("op")?, block)?,
            constant: p.parse("constant")?,
        },
        "Switch" => {
            let criterion = match p.text("criterion")?.as_str() {
                "ge" => SwitchCriterion::GreaterEqual(p.parse("threshold")?),
                "gt" => SwitchCriterion::Greater(p.parse("threshold")?),
                "nz" => SwitchCriterion::NotZero,
                other => {
                    return Err(LoadModelError::new(format!(
                        "block `{block}`: unknown switch criterion `{other}`"
                    )))
                }
            };
            BlockKind::Switch { criterion }
        }
        "MultiportSwitch" => BlockKind::MultiportSwitch { cases: p.parse("cases")? },
        "Merge" => BlockKind::Merge { inputs: p.parse("inputs")? },
        "DataTypeConversion" => BlockKind::DataTypeConversion { to: p.parse("to")? },
        "UnitDelay" => BlockKind::UnitDelay { initial: p.typed_value()? },
        "Memory" => BlockKind::Memory { initial: p.typed_value()? },
        "Delay" => BlockKind::Delay { steps: p.parse("steps")?, initial: p.typed_value()? },
        "DiscreteIntegrator" => BlockKind::DiscreteIntegrator {
            gain: p.parse("gain")?,
            initial: p.parse("initial")?,
            lower: p.opt_parse("lower")?,
            upper: p.opt_parse("upper")?,
        },
        "CounterLimited" => BlockKind::CounterLimited { limit: p.parse("limit")? },
        "CounterFreeRunning" => BlockKind::CounterFreeRunning { bits: p.parse("bits")? },
        "EdgeDetect" => BlockKind::EdgeDetect { kind: edge_kind(&p.text("edge")?, block)? },
        "Lookup1D" => {
            BlockKind::Lookup1D { breakpoints: p.csv("breakpoints")?, values: p.csv("values")? }
        }
        "Lookup2D" => {
            let rows = p.text("values")?;
            let values = rows
                .split(';')
                .map(parse_csv)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|err| LoadModelError::new(format!("block `{block}`: {err}")))?;
            BlockKind::Lookup2D {
                row_breaks: p.csv("row_breaks")?,
                col_breaks: p.csv("col_breaks")?,
                values,
            }
        }
        "If" => {
            let conditions = e
                .children_named("condition")
                .map(|c| parse_expr(&c.text()))
                .collect::<Result<Vec<_>, _>>()?;
            BlockKind::If {
                num_inputs: p.parse("num_inputs")?,
                conditions,
                has_else: p.parse("has_else")?,
            }
        }
        "SwitchCase" => {
            let cases = e
                .children_named("case")
                .map(|c| {
                    c.text()
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            s.parse::<i64>().map_err(|_| {
                                LoadModelError::new(format!(
                                    "block `{block}`: bad case label `{s}`"
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()
                })
                .collect::<Result<Vec<_>, _>>()?;
            BlockKind::SwitchCase { cases, has_default: p.parse("has_default")? }
        }
        "ActionSubsystem" => BlockKind::ActionSubsystem { model: inner_model()? },
        "EnabledSubsystem" => BlockKind::EnabledSubsystem { model: inner_model()? },
        "TriggeredSubsystem" => BlockKind::TriggeredSubsystem {
            model: inner_model()?,
            edge: edge_kind(&p.text("edge")?, block)?,
        },
        "Subsystem" => BlockKind::Subsystem { model: inner_model()? },
        "MatlabFunction" => {
            let fe = e.child("function").ok_or_else(|| {
                LoadModelError::new(format!("block `{block}` is missing its <function>"))
            })?;
            let ports = |tag: &str| -> Result<Vec<(String, DataType)>, LoadModelError> {
                fe.children_named(tag)
                    .map(|pe| {
                        let name = pe
                            .attr("name")
                            .ok_or_else(|| LoadModelError::new("port missing name"))?;
                        let ty: DataType = pe
                            .attr("dtype")
                            .ok_or_else(|| LoadModelError::new("port missing dtype"))?
                            .parse()
                            .map_err(|err| LoadModelError::new(format!("{err}")))?;
                        Ok((name.to_string(), ty))
                    })
                    .collect()
            };
            let body_text = fe.child("body").map(|b| b.text()).unwrap_or_default();
            BlockKind::MatlabFunction {
                function: FunctionDef::new(
                    ports("input")?,
                    ports("output")?,
                    parse_stmts(&body_text)?,
                ),
            }
        }
        "Chart" => {
            let ce = e.child("chart").ok_or_else(|| {
                LoadModelError::new(format!("block `{block}` is missing its <chart>"))
            })?;
            BlockKind::Chart { chart: chart_from_element(ce, block)? }
        }
        other => {
            return Err(LoadModelError::new(format!("block `{block}` has unknown kind `{other}`")))
        }
    })
}

fn rel_op(symbol: &str, block: &str) -> Result<RelOp, LoadModelError> {
    [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge]
        .into_iter()
        .find(|o| o.symbol() == symbol)
        .ok_or_else(|| {
            LoadModelError::new(format!("block `{block}`: unknown relational op `{symbol}`"))
        })
}

fn edge_kind(name: &str, block: &str) -> Result<EdgeKind, LoadModelError> {
    match name {
        "rising" => Ok(EdgeKind::Rising),
        "falling" => Ok(EdgeKind::Falling),
        "either" => Ok(EdgeKind::Either),
        other => Err(LoadModelError::new(format!("block `{block}`: unknown edge kind `{other}`"))),
    }
}

fn chart_from_element(ce: &Element, block: &str) -> Result<Chart, LoadModelError> {
    let mut chart = Chart::new();
    chart.initial = ce
        .attr("initial")
        .unwrap_or("0")
        .parse()
        .map_err(|_| LoadModelError::new(format!("chart `{block}`: bad initial index")))?;
    let typed = |pe: &Element| -> Result<(String, DataType), LoadModelError> {
        let name = pe
            .attr("name")
            .ok_or_else(|| LoadModelError::new(format!("chart `{block}`: port missing name")))?;
        let ty: DataType = pe
            .attr("dtype")
            .ok_or_else(|| LoadModelError::new(format!("chart `{block}`: port missing dtype")))?
            .parse()
            .map_err(|err| LoadModelError::new(format!("chart `{block}`: {err}")))?;
        Ok((name.to_string(), ty))
    };
    for pe in ce.children_named("input") {
        chart.inputs.push(typed(pe)?);
    }
    for pe in ce.children_named("output") {
        chart.outputs.push(typed(pe)?);
    }
    for pe in ce.children_named("variable") {
        let (name, ty) = typed(pe)?;
        let init_text = pe.attr("init").unwrap_or("0");
        let init = Value::parse_typed(init_text, ty)
            .map_err(|err| LoadModelError::new(format!("chart `{block}`: {err}")))?;
        chart.variables.push((name, ty, init));
    }
    for se in ce.children_named("state") {
        let name = se
            .attr("name")
            .ok_or_else(|| LoadModelError::new(format!("chart `{block}`: state missing name")))?;
        let entry = match se.child("entry") {
            Some(ee) => parse_stmts(&ee.text())?,
            None => Vec::new(),
        };
        let during = match se.child("during") {
            Some(de) => parse_stmts(&de.text())?,
            None => Vec::new(),
        };
        chart.states.push(State { name: name.to_string(), entry, during });
    }
    for te in ce.children_named("transition") {
        let parse_idx = |attr: &str| -> Result<usize, LoadModelError> {
            te.attr(attr)
                .ok_or_else(|| {
                    LoadModelError::new(format!("chart `{block}`: transition missing `{attr}`"))
                })?
                .parse()
                .map_err(|_| {
                    LoadModelError::new(format!("chart `{block}`: bad transition `{attr}`"))
                })
        };
        let guard = match te.attr("guard") {
            Some(text) => Some(parse_expr(text)?),
            None => None,
        };
        let action_text = te.text();
        let action = if action_text.is_empty() { Vec::new() } else { parse_stmts(&action_text)? };
        chart.transitions.push(Transition {
            from: parse_idx("from")?,
            to: parse_idx("to")?,
            guard,
            action,
        });
    }
    Ok(chart)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::chart::{State, Transition};

    fn roundtrip(model: &Model) {
        let xml = save_model(model);
        let loaded = load_model(&xml).unwrap_or_else(|e| panic!("reload failed: {e}\n{xml}"));
        assert_eq!(&loaded, model, "roundtrip mismatch for `{}`", model.name());
    }

    #[test]
    fn simple_model_roundtrips() {
        let mut b = ModelBuilder::new("simple");
        let u = b.inport("u", DataType::I16);
        let g = b.add("g", BlockKind::Gain { gain: -2.5 });
        let y = b.outport("y");
        b.wire(u, g);
        b.wire(g, y);
        roundtrip(&b.finish().unwrap());
    }

    #[test]
    fn every_scalar_kind_roundtrips() {
        use crate::block::*;
        let kinds: Vec<BlockKind> = vec![
            BlockKind::Constant { value: Value::I8(-3) },
            BlockKind::Constant { value: Value::F64(2.5) },
            BlockKind::Ground { dtype: DataType::U16 },
            BlockKind::Terminator,
            BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus] },
            BlockKind::Product { ops: vec![ProductOp::Mul, ProductOp::Div] },
            BlockKind::Gain { gain: 0.125 },
            BlockKind::Bias { bias: -7.0 },
            BlockKind::Abs,
            BlockKind::UnaryMinus,
            BlockKind::Signum,
            BlockKind::MinMax { op: MinMaxOp::Max, inputs: 3 },
            BlockKind::Math { func: MathFunc::Atan2 },
            BlockKind::Saturation { lower: -1.5, upper: 1.5 },
            BlockKind::DeadZone { start: -0.1, end: 0.1 },
            BlockKind::Relay {
                on_threshold: 1.0,
                off_threshold: -1.0,
                on_output: 5.0,
                off_output: 0.0,
            },
            BlockKind::Quantizer { interval: 0.25 },
            BlockKind::RateLimiter { rising: 2.0, falling: 3.0 },
            BlockKind::Backlash { width: 1.0, initial: 0.5 },
            BlockKind::CoulombFriction { offset: 0.2, gain: 1.1 },
            BlockKind::Logic { op: LogicOp::Nand, inputs: 3 },
            BlockKind::Relational { op: RelOp::Le },
            BlockKind::Compare { op: RelOp::Ne, constant: 4.0 },
            BlockKind::Switch { criterion: SwitchCriterion::GreaterEqual(0.5) },
            BlockKind::Switch { criterion: SwitchCriterion::NotZero },
            BlockKind::MultiportSwitch { cases: 3 },
            BlockKind::DataTypeConversion { to: DataType::U8 },
            BlockKind::ZeroOrderHold,
            BlockKind::UnitDelay { initial: Value::I32(7) },
            BlockKind::Delay { steps: 3, initial: Value::F32(1.5) },
            BlockKind::Memory { initial: Value::Bool(true) },
            BlockKind::DiscreteIntegrator {
                gain: 0.1,
                initial: 0.0,
                lower: Some(-10.0),
                upper: None,
            },
            BlockKind::CounterLimited { limit: 9 },
            BlockKind::CounterFreeRunning { bits: 16 },
            BlockKind::EdgeDetect { kind: EdgeKind::Falling },
            BlockKind::Lookup1D { breakpoints: vec![0.0, 1.0, 2.0], values: vec![0.0, 10.0, 15.0] },
            BlockKind::Lookup2D {
                row_breaks: vec![0.0, 1.0],
                col_breaks: vec![0.0, 1.0, 2.0],
                values: vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            },
        ];
        // Build one (unvalidated) model containing them all; persistence
        // does not require validity.
        let mut b = ModelBuilder::new("catalog");
        for (i, kind) in kinds.into_iter().enumerate() {
            b.add(format!("blk{i}"), kind);
        }
        roundtrip(&b.finish_unchecked());
    }

    #[test]
    fn if_and_switch_case_roundtrip() {
        let mut b = ModelBuilder::new("control");
        b.add(
            "iff",
            BlockKind::If {
                num_inputs: 2,
                conditions: vec![
                    parse_expr("u1 > 0 && u2 < 5").unwrap(),
                    parse_expr("u1 == -1").unwrap(),
                ],
                has_else: true,
            },
        );
        b.add("sc", BlockKind::SwitchCase { cases: vec![vec![1, 2], vec![3]], has_default: false });
        roundtrip(&b.finish_unchecked());
    }

    #[test]
    fn matlab_function_roundtrips() {
        let function = FunctionDef::parse(
            &[("u", DataType::F64), ("limit", DataType::I32)],
            &[("y", DataType::F64)],
            "if (u > limit) { y = limit; } else { y = u; }",
        )
        .unwrap();
        let mut b = ModelBuilder::new("mf");
        b.add("f", BlockKind::MatlabFunction { function });
        roundtrip(&b.finish_unchecked());
    }

    #[test]
    fn chart_roundtrips() {
        let mut chart = Chart::new();
        chart.inputs.push(("go".into(), DataType::Bool));
        chart.outputs.push(("level".into(), DataType::I32));
        chart.variables.push(("ticks".into(), DataType::I32, Value::I32(0)));
        let idle =
            chart.add_state(State::new("Idle").with_entry(parse_stmts("level = 0;").unwrap()));
        let run = chart.add_state(
            State::new("Run")
                .with_entry(parse_stmts("level = 1;").unwrap())
                .with_during(parse_stmts("ticks = ticks + 1;").unwrap()),
        );
        chart.initial = idle;
        chart.add_transition(Transition::new(idle, run, parse_expr("go").unwrap()));
        chart.add_transition(
            Transition::new(run, idle, parse_expr("!go || ticks > 9").unwrap())
                .with_action(parse_stmts("ticks = 0;").unwrap()),
        );
        let mut b = ModelBuilder::new("chart_model");
        b.add("ctl", BlockKind::Chart { chart });
        roundtrip(&b.finish_unchecked());
    }

    #[test]
    fn nested_subsystems_roundtrip() {
        let mut inner = ModelBuilder::new("inner");
        let u = inner.inport("u", DataType::F64);
        let g = inner.add("g", BlockKind::Gain { gain: 3.0 });
        let y = inner.outport("y");
        inner.wire(u, g);
        inner.wire(g, y);
        let inner = inner.finish().unwrap();

        let mut b = ModelBuilder::new("outer");
        let u = b.inport("u", DataType::F64);
        let sub = b.add("sub", BlockKind::Subsystem { model: Box::new(inner) });
        let y = b.outport("y");
        b.wire(u, sub);
        b.wire(sub, y);
        roundtrip(&b.finish().unwrap());
    }

    #[test]
    fn load_rejects_malformed_documents() {
        assert!(load_model("<nope/>").is_err());
        assert!(load_model("<model/>").is_err()); // missing name
        assert!(load_model("not xml").is_err());
        let err =
            load_model("<model name=\"m\"><block name=\"b\" kind=\"Alien\"/></model>").unwrap_err();
        assert!(err.message().contains("Alien"));
    }

    #[test]
    fn load_rejects_bad_connections() {
        let err =
            load_model("<model name=\"m\"><connection from=\"ghost:0\" to=\"ghost:1\"/></model>")
                .unwrap_err();
        assert!(err.message().contains("ghost"));
        let err = load_model(
            "<model name=\"m\"><block name=\"b\" kind=\"Terminator\"/>\
             <connection from=\"b\" to=\"b:0\"/></model>",
        )
        .unwrap_err();
        assert!(err.to_string().contains("endpoint"));
    }

    #[test]
    fn load_reports_missing_parameters() {
        let err =
            load_model("<model name=\"m\"><block name=\"g\" kind=\"Gain\"/></model>").unwrap_err();
        assert!(err.message().contains("gain"));
    }

    #[test]
    fn block_names_with_special_chars_roundtrip() {
        let mut b = ModelBuilder::new("m<&>");
        b.add("a & b", BlockKind::Terminator);
        let c = b.constant("\"quoted\"", 1.0);
        let t2 = b.add("t", BlockKind::Terminator);
        b.wire(c, t2);
        roundtrip(&b.finish_unchecked());
    }
}
