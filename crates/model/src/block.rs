//! The block catalog: every block kind CFTCG's code generator has a template
//! for (the paper: "block templates for over fifty commonly used blocks").
//!
//! A [`BlockKind`] carries the block's parameters; port counts and output
//! types are derived from it. Blocks fall into the paper's four
//! instrumentation classes (Figure 4):
//!
//! * **(a)** boolean blocks ([`BlockKind::Logic`]) — inputs probed for
//!   true/false,
//! * **(b)** data switch blocks ([`BlockKind::Switch`],
//!   [`BlockKind::MultiportSwitch`]) — one probe per selection branch,
//! * **(c)** branch blocks ([`BlockKind::If`], [`BlockKind::SwitchCase`] and
//!   their action subsystems) — one probe per action branch,
//! * **(d)** blocks with internal conditionals ([`BlockKind::Saturation`],
//!   [`BlockKind::MatlabFunction`], [`BlockKind::Chart`], ...) — probes on
//!   every internal conditional including implicit `else`.

use crate::chart::Chart;
use crate::function::FunctionDef;
use crate::model::Model;
use crate::{DataType, Value};

/// Logical operator for [`BlockKind::Logic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicOp {
    /// All inputs true.
    And,
    /// Any input true.
    Or,
    /// Not all inputs true.
    Nand,
    /// No input true.
    Nor,
    /// An odd number of inputs true.
    Xor,
    /// Single-input negation.
    Not,
}

impl LogicOp {
    /// The operator's model-file name.
    pub const fn name(self) -> &'static str {
        match self {
            LogicOp::And => "AND",
            LogicOp::Or => "OR",
            LogicOp::Nand => "NAND",
            LogicOp::Nor => "NOR",
            LogicOp::Xor => "XOR",
            LogicOp::Not => "NOT",
        }
    }
}

/// Relational operator for [`BlockKind::Relational`] and [`BlockKind::Compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// The operator's source/model-file symbol.
    pub const fn symbol(self) -> &'static str {
        match self {
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        }
    }

    /// Applies the comparison to two numeric operands.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            RelOp::Eq => lhs == rhs,
            RelOp::Ne => lhs != rhs,
            RelOp::Lt => lhs < rhs,
            RelOp::Le => lhs <= rhs,
            RelOp::Gt => lhs > rhs,
            RelOp::Ge => lhs >= rhs,
        }
    }
}

/// Min-or-max selector for [`BlockKind::MinMax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinMaxOp {
    /// Smallest input.
    Min,
    /// Largest input.
    Max,
}

/// Elementary math function for [`BlockKind::Math`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFunc {
    /// `sqrt(u)`
    Sqrt,
    /// `exp(u)`
    Exp,
    /// `ln(u)`
    Ln,
    /// `log10(u)`
    Log10,
    /// `sin(u)`
    Sin,
    /// `cos(u)`
    Cos,
    /// `tan(u)`
    Tan,
    /// `u * u`
    Square,
    /// `1 / u`
    Reciprocal,
    /// `floor(u)`
    Floor,
    /// `ceil(u)`
    Ceil,
    /// `round(u)` (half away from zero)
    Round,
    /// MATLAB `mod(u1, u2)` (result takes the divisor's sign)
    Mod,
    /// C `fmod(u1, u2)` (result takes the dividend's sign)
    Rem,
    /// `pow(u1, u2)`
    Pow,
    /// `atan2(u1, u2)`
    Atan2,
    /// `hypot(u1, u2)`
    Hypot,
}

impl MathFunc {
    /// Number of input ports the function consumes.
    pub const fn arity(self) -> usize {
        match self {
            MathFunc::Mod | MathFunc::Rem | MathFunc::Pow | MathFunc::Atan2 | MathFunc::Hypot => 2,
            _ => 1,
        }
    }

    /// The function's model-file name.
    pub const fn name(self) -> &'static str {
        match self {
            MathFunc::Sqrt => "sqrt",
            MathFunc::Exp => "exp",
            MathFunc::Ln => "ln",
            MathFunc::Log10 => "log10",
            MathFunc::Sin => "sin",
            MathFunc::Cos => "cos",
            MathFunc::Tan => "tan",
            MathFunc::Square => "square",
            MathFunc::Reciprocal => "reciprocal",
            MathFunc::Floor => "floor",
            MathFunc::Ceil => "ceil",
            MathFunc::Round => "round",
            MathFunc::Mod => "mod",
            MathFunc::Rem => "rem",
            MathFunc::Pow => "pow",
            MathFunc::Atan2 => "atan2",
            MathFunc::Hypot => "hypot",
        }
    }

    /// Applies the function.
    pub fn apply(self, args: &[f64]) -> f64 {
        match (self, args) {
            (MathFunc::Sqrt, [u]) => u.sqrt(),
            (MathFunc::Exp, [u]) => u.exp(),
            (MathFunc::Ln, [u]) => u.ln(),
            (MathFunc::Log10, [u]) => u.log10(),
            (MathFunc::Sin, [u]) => u.sin(),
            (MathFunc::Cos, [u]) => u.cos(),
            (MathFunc::Tan, [u]) => u.tan(),
            (MathFunc::Square, [u]) => u * u,
            (MathFunc::Reciprocal, [u]) => 1.0 / u,
            (MathFunc::Floor, [u]) => u.floor(),
            (MathFunc::Ceil, [u]) => u.ceil(),
            (MathFunc::Round, [u]) => u.round(),
            (MathFunc::Mod, [a, b]) => {
                if *b == 0.0 {
                    *a
                } else {
                    a - b * (a / b).floor()
                }
            }
            (MathFunc::Rem, [a, b]) => a % b,
            (MathFunc::Pow, [a, b]) => a.powf(*b),
            (MathFunc::Atan2, [a, b]) => a.atan2(*b),
            (MathFunc::Hypot, [a, b]) => a.hypot(*b),
            _ => panic!("MathFunc::{self:?} applied with {} args", args.len()),
        }
    }
}

/// Criterion for the control input of a [`BlockKind::Switch`] block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwitchCriterion {
    /// Pass first input when `u2 >= threshold`.
    GreaterEqual(f64),
    /// Pass first input when `u2 > threshold`.
    Greater(f64),
    /// Pass first input when `u2 != 0`.
    NotZero,
}

impl SwitchCriterion {
    /// Evaluates the criterion on the control value.
    pub fn passes_first(self, control: f64) -> bool {
        match self {
            SwitchCriterion::GreaterEqual(t) => control >= t,
            SwitchCriterion::Greater(t) => control > t,
            SwitchCriterion::NotZero => control != 0.0,
        }
    }
}

/// Edge polarity for [`BlockKind::EdgeDetect`] and
/// [`BlockKind::TriggeredSubsystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// False → true.
    Rising,
    /// True → false.
    Falling,
    /// Any change of truthiness.
    Either,
}

impl EdgeKind {
    /// `true` if a transition from `prev` to `curr` (truthiness) matches.
    pub fn detect(self, prev: bool, curr: bool) -> bool {
        match self {
            EdgeKind::Rising => !prev && curr,
            EdgeKind::Falling => prev && !curr,
            EdgeKind::Either => prev != curr,
        }
    }
}

/// Per-input sign for a [`BlockKind::Sum`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSign {
    /// Added.
    Plus,
    /// Subtracted.
    Minus,
}

/// Per-input operation for a [`BlockKind::Product`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductOp {
    /// Multiplied.
    Mul,
    /// Divided.
    Div,
}

/// A block's kind together with its parameters.
///
/// Input ports are numbered `0..num_inputs()`; output ports
/// `0..num_outputs()`. Conditionally-executed subsystems reserve input
/// port 0 for their action/enable/trigger signal; their data inputs start at
/// port 1 and map to the inner model's inports in order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BlockKind {
    // ---- sources and sinks ---------------------------------------------
    /// Top-level or subsystem input port.
    Inport {
        /// Zero-based port index within the owning model.
        index: usize,
        /// Declared signal type.
        dtype: DataType,
    },
    /// Top-level or subsystem output port. One input, no outputs.
    Outport {
        /// Zero-based port index within the owning model.
        index: usize,
    },
    /// Constant source.
    Constant {
        /// The emitted value (also fixes the output type).
        value: Value,
    },
    /// Zero source of a given type.
    Ground {
        /// Output type.
        dtype: DataType,
    },
    /// Signal sink; consumes one input.
    Terminator,
    /// Run-time assertion: records a violation whenever its input is falsy
    /// during execution (Simulink's Assertion block in warn-and-continue
    /// mode). One input, no outputs; instrumented as a pass/fail decision.
    Assertion,

    // ---- math ------------------------------------------------------------
    /// Signed sum of the inputs.
    Sum {
        /// One sign per input port.
        signs: Vec<InputSign>,
    },
    /// Product/quotient chain over the inputs.
    Product {
        /// One operation per input port.
        ops: Vec<ProductOp>,
    },
    /// `y = gain * u`.
    Gain {
        /// Multiplier.
        gain: f64,
    },
    /// `y = u + bias`.
    Bias {
        /// Offset.
        bias: f64,
    },
    /// `y = |u|`.
    Abs,
    /// `y = -u`.
    UnaryMinus,
    /// `y = sign(u)` ∈ {-1, 0, 1}; internally conditional (mode d).
    Signum,
    /// Smallest or largest input.
    MinMax {
        /// Min or max.
        op: MinMaxOp,
        /// Number of inputs (≥ 2).
        inputs: usize,
    },
    /// Elementary math function.
    Math {
        /// The function; fixes the arity.
        func: MathFunc,
    },

    // ---- discontinuities (internal conditionals, mode d) ------------------
    /// Clamps to `[lower, upper]`.
    Saturation {
        /// Lower limit.
        lower: f64,
        /// Upper limit.
        upper: f64,
    },
    /// Zero output inside `[start, end]`, offset outside.
    DeadZone {
        /// Dead zone start.
        start: f64,
        /// Dead zone end.
        end: f64,
    },
    /// Hysteresis relay (stateful).
    Relay {
        /// Input level that switches the relay on.
        on_threshold: f64,
        /// Input level that switches the relay off.
        off_threshold: f64,
        /// Output while on.
        on_output: f64,
        /// Output while off.
        off_output: f64,
    },
    /// Rounds the input to multiples of `interval`.
    Quantizer {
        /// Quantization interval (> 0).
        interval: f64,
    },
    /// Limits the per-step change of the signal (stateful).
    RateLimiter {
        /// Maximum increase per step (≥ 0).
        rising: f64,
        /// Maximum decrease per step (≥ 0, applied as negative).
        falling: f64,
    },
    /// Mechanical play: output follows input only outside a dead band
    /// (stateful).
    Backlash {
        /// Width of the dead band.
        width: f64,
        /// Initial output.
        initial: f64,
    },
    /// Coulomb & viscous friction: `y = sign(u) * (gain * |u| + offset)`.
    CoulombFriction {
        /// Static friction offset.
        offset: f64,
        /// Viscous gain.
        gain: f64,
    },

    // ---- logic and comparisons (modes a) -----------------------------------
    /// Boolean combinational block; inputs probed per Figure 4(a).
    Logic {
        /// The operator.
        op: LogicOp,
        /// Number of inputs (1 for NOT).
        inputs: usize,
    },
    /// `y = (u1 <op> u2)`.
    Relational {
        /// The comparison.
        op: RelOp,
    },
    /// `y = (u <op> constant)`.
    Compare {
        /// The comparison.
        op: RelOp,
        /// The constant right-hand side.
        constant: f64,
    },

    // ---- selection (mode b) -----------------------------------------------
    /// Three-port switch: passes input 0 or input 2 depending on input 1.
    Switch {
        /// Criterion applied to the control input.
        criterion: SwitchCriterion,
    },
    /// Selector-driven switch: input 0 (1-based) picks one of the `cases`
    /// data inputs; out-of-range selects the last.
    MultiportSwitch {
        /// Number of data inputs.
        cases: usize,
    },
    /// Combines the outputs of conditionally-executed subsystems: the input
    /// written during the current step wins; otherwise holds (stateful).
    Merge {
        /// Number of inputs.
        inputs: usize,
    },

    // ---- signal attributes -------------------------------------------------
    /// Casts to another data type.
    DataTypeConversion {
        /// Target type.
        to: DataType,
    },
    /// Single-rate zero-order hold (identity in this discrete-time IR).
    ZeroOrderHold,

    // ---- discrete-time state ------------------------------------------------
    /// One-step delay; breaks algebraic loops.
    UnitDelay {
        /// Output on the first step.
        initial: Value,
    },
    /// `steps`-step delay; breaks algebraic loops.
    Delay {
        /// Number of steps (≥ 1).
        steps: usize,
        /// Output for the first `steps` steps.
        initial: Value,
    },
    /// Previous-step memory; identical timing to [`BlockKind::UnitDelay`].
    Memory {
        /// Output on the first step.
        initial: Value,
    },
    /// Forward-Euler discrete integrator with optional output limits
    /// (limits add internal conditionals, mode d); breaks algebraic loops.
    DiscreteIntegrator {
        /// Integration gain per step.
        gain: f64,
        /// Initial accumulator value.
        initial: f64,
        /// Optional lower output limit.
        lower: Option<f64>,
        /// Optional upper output limit.
        upper: Option<f64>,
    },
    /// Counts steps up to `limit` then wraps to zero (stateful).
    CounterLimited {
        /// Inclusive upper count.
        limit: u32,
    },
    /// Free-running counter that wraps at `2^bits` (stateful).
    CounterFreeRunning {
        /// Word width: 8, 16, or 32.
        bits: u8,
    },
    /// Boolean edge detector (stateful, output Bool).
    EdgeDetect {
        /// Edge polarity.
        kind: EdgeKind,
    },

    // ---- lookup tables --------------------------------------------------------
    /// 1-D linear interpolation with end clipping.
    Lookup1D {
        /// Strictly increasing breakpoints.
        breakpoints: Vec<f64>,
        /// Table values, same length as `breakpoints`.
        values: Vec<f64>,
    },
    /// 2-D bilinear interpolation with end clipping.
    Lookup2D {
        /// Strictly increasing row breakpoints (input 0).
        row_breaks: Vec<f64>,
        /// Strictly increasing column breakpoints (input 1).
        col_breaks: Vec<f64>,
        /// `values[r][c]` table, `row_breaks.len()` × `col_breaks.len()`.
        values: Vec<Vec<f64>>,
    },

    // ---- control flow (mode c) ---------------------------------------------
    /// `If` block: evaluates `conditions` over inputs `u1..un` and raises
    /// exactly one action output (plus an optional `else` output).
    If {
        /// Number of data inputs, referenced as `u1..u<n>` by conditions.
        num_inputs: usize,
        /// Branch conditions, in priority order.
        conditions: Vec<crate::expr::Expr>,
        /// Whether an `else` action output exists after the conditions.
        has_else: bool,
    },
    /// `SwitchCase` block: compares input 0 against the case label lists and
    /// raises the matching action output (plus an optional default).
    SwitchCase {
        /// Case label lists, in priority order.
        cases: Vec<Vec<i64>>,
        /// Whether a default action output exists after the cases.
        has_default: bool,
    },
    /// Subsystem executed when its action input (port 0) is raised by an
    /// [`BlockKind::If`] or [`BlockKind::SwitchCase`] block. Outputs hold
    /// their previous value on inactive steps.
    ActionSubsystem {
        /// The inner model.
        model: Box<Model>,
    },
    /// Subsystem executed while its enable input (port 0) is truthy.
    /// Outputs hold on disabled steps.
    EnabledSubsystem {
        /// The inner model.
        model: Box<Model>,
    },
    /// Subsystem executed on an edge of its trigger input (port 0).
    /// Outputs hold between triggers.
    TriggeredSubsystem {
        /// The inner model.
        model: Box<Model>,
        /// Trigger polarity.
        edge: EdgeKind,
    },
    /// Virtual grouping subsystem, inlined during flattening.
    Subsystem {
        /// The inner model.
        model: Box<Model>,
    },

    // ---- embedded code (mode d) -------------------------------------------
    /// MATLAB Function block.
    MatlabFunction {
        /// The function definition.
        function: FunctionDef,
    },
    /// Stateflow-style chart block.
    Chart {
        /// The chart definition.
        chart: Chart,
    },
}

impl BlockKind {
    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        match self {
            BlockKind::Inport { .. }
            | BlockKind::Constant { .. }
            | BlockKind::Ground { .. }
            | BlockKind::CounterLimited { .. }
            | BlockKind::CounterFreeRunning { .. } => 0,
            BlockKind::Outport { .. }
            | BlockKind::Terminator
            | BlockKind::Assertion
            | BlockKind::Gain { .. }
            | BlockKind::Bias { .. }
            | BlockKind::Abs
            | BlockKind::UnaryMinus
            | BlockKind::Signum
            | BlockKind::Saturation { .. }
            | BlockKind::DeadZone { .. }
            | BlockKind::Relay { .. }
            | BlockKind::Quantizer { .. }
            | BlockKind::RateLimiter { .. }
            | BlockKind::Backlash { .. }
            | BlockKind::CoulombFriction { .. }
            | BlockKind::Compare { .. }
            | BlockKind::DataTypeConversion { .. }
            | BlockKind::ZeroOrderHold
            | BlockKind::UnitDelay { .. }
            | BlockKind::Delay { .. }
            | BlockKind::Memory { .. }
            | BlockKind::DiscreteIntegrator { .. }
            | BlockKind::EdgeDetect { .. }
            | BlockKind::Lookup1D { .. }
            | BlockKind::SwitchCase { .. } => 1,
            BlockKind::Relational { .. } | BlockKind::Lookup2D { .. } => 2,
            BlockKind::Switch { .. } => 3,
            BlockKind::Sum { signs } => signs.len(),
            BlockKind::Product { ops } => ops.len(),
            BlockKind::MinMax { inputs, .. } => *inputs,
            BlockKind::Math { func } => func.arity(),
            BlockKind::Logic { op, inputs } => {
                if *op == LogicOp::Not {
                    1
                } else {
                    *inputs
                }
            }
            BlockKind::MultiportSwitch { cases } => 1 + cases,
            BlockKind::Merge { inputs } => *inputs,
            BlockKind::If { num_inputs, .. } => *num_inputs,
            BlockKind::ActionSubsystem { model }
            | BlockKind::EnabledSubsystem { model }
            | BlockKind::TriggeredSubsystem { model, .. } => 1 + model.num_inports(),
            BlockKind::Subsystem { model } => model.num_inports(),
            BlockKind::MatlabFunction { function } => function.inputs().len(),
            BlockKind::Chart { chart } => chart.inputs.len(),
        }
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        match self {
            BlockKind::Outport { .. } | BlockKind::Terminator | BlockKind::Assertion => 0,
            BlockKind::If { conditions, has_else, .. } => conditions.len() + usize::from(*has_else),
            BlockKind::SwitchCase { cases, has_default } => cases.len() + usize::from(*has_default),
            BlockKind::ActionSubsystem { model }
            | BlockKind::EnabledSubsystem { model }
            | BlockKind::TriggeredSubsystem { model, .. }
            | BlockKind::Subsystem { model } => model.num_outports(),
            BlockKind::MatlabFunction { function } => function.outputs().len(),
            BlockKind::Chart { chart } => chart.outputs.len(),
            _ => 1,
        }
    }

    /// `true` when the block's output at step *k* depends only on state
    /// written at steps `< k`, so a feedback loop through it is well-formed.
    pub fn breaks_algebraic_loops(&self) -> bool {
        matches!(
            self,
            BlockKind::UnitDelay { .. }
                | BlockKind::Delay { .. }
                | BlockKind::Memory { .. }
                | BlockKind::DiscreteIntegrator { .. }
        )
    }

    /// `true` when the block carries state across steps.
    pub fn is_stateful(&self) -> bool {
        match self {
            BlockKind::UnitDelay { .. }
            | BlockKind::Delay { .. }
            | BlockKind::Memory { .. }
            | BlockKind::DiscreteIntegrator { .. }
            | BlockKind::Relay { .. }
            | BlockKind::RateLimiter { .. }
            | BlockKind::Backlash { .. }
            | BlockKind::CounterLimited { .. }
            | BlockKind::CounterFreeRunning { .. }
            | BlockKind::EdgeDetect { .. }
            | BlockKind::Merge { .. }
            | BlockKind::Chart { .. } => true,
            BlockKind::ActionSubsystem { model }
            | BlockKind::EnabledSubsystem { model }
            | BlockKind::TriggeredSubsystem { model, .. } => {
                // Held outputs are state; so is any inner state.
                model.num_outports() > 0 || model.has_state()
            }
            BlockKind::Subsystem { model } => model.has_state(),
            _ => false,
        }
    }

    /// The kind's model-file tag (used by XML persistence and display).
    pub fn tag(&self) -> &'static str {
        match self {
            BlockKind::Inport { .. } => "Inport",
            BlockKind::Outport { .. } => "Outport",
            BlockKind::Constant { .. } => "Constant",
            BlockKind::Ground { .. } => "Ground",
            BlockKind::Terminator => "Terminator",
            BlockKind::Assertion => "Assertion",
            BlockKind::Sum { .. } => "Sum",
            BlockKind::Product { .. } => "Product",
            BlockKind::Gain { .. } => "Gain",
            BlockKind::Bias { .. } => "Bias",
            BlockKind::Abs => "Abs",
            BlockKind::UnaryMinus => "UnaryMinus",
            BlockKind::Signum => "Signum",
            BlockKind::MinMax { .. } => "MinMax",
            BlockKind::Math { .. } => "Math",
            BlockKind::Saturation { .. } => "Saturation",
            BlockKind::DeadZone { .. } => "DeadZone",
            BlockKind::Relay { .. } => "Relay",
            BlockKind::Quantizer { .. } => "Quantizer",
            BlockKind::RateLimiter { .. } => "RateLimiter",
            BlockKind::Backlash { .. } => "Backlash",
            BlockKind::CoulombFriction { .. } => "CoulombFriction",
            BlockKind::Logic { .. } => "Logic",
            BlockKind::Relational { .. } => "Relational",
            BlockKind::Compare { .. } => "Compare",
            BlockKind::Switch { .. } => "Switch",
            BlockKind::MultiportSwitch { .. } => "MultiportSwitch",
            BlockKind::Merge { .. } => "Merge",
            BlockKind::DataTypeConversion { .. } => "DataTypeConversion",
            BlockKind::ZeroOrderHold => "ZeroOrderHold",
            BlockKind::UnitDelay { .. } => "UnitDelay",
            BlockKind::Delay { .. } => "Delay",
            BlockKind::Memory { .. } => "Memory",
            BlockKind::DiscreteIntegrator { .. } => "DiscreteIntegrator",
            BlockKind::CounterLimited { .. } => "CounterLimited",
            BlockKind::CounterFreeRunning { .. } => "CounterFreeRunning",
            BlockKind::EdgeDetect { .. } => "EdgeDetect",
            BlockKind::Lookup1D { .. } => "Lookup1D",
            BlockKind::Lookup2D { .. } => "Lookup2D",
            BlockKind::If { .. } => "If",
            BlockKind::SwitchCase { .. } => "SwitchCase",
            BlockKind::ActionSubsystem { .. } => "ActionSubsystem",
            BlockKind::EnabledSubsystem { .. } => "EnabledSubsystem",
            BlockKind::TriggeredSubsystem { .. } => "TriggeredSubsystem",
            BlockKind::Subsystem { .. } => "Subsystem",
            BlockKind::MatlabFunction { .. } => "MatlabFunction",
            BlockKind::Chart { .. } => "Chart",
        }
    }

    /// Output type of `port` given the resolved types of the data inputs.
    ///
    /// Subsystem kinds are resolved by the model-level type resolution pass
    /// (they need the inner model's outport types) and must not be queried
    /// here.
    ///
    /// # Panics
    ///
    /// Panics when called on a subsystem kind, or with an out-of-range port.
    pub fn output_type(&self, input_types: &[DataType], port: usize) -> DataType {
        assert!(port < self.num_outputs(), "port {port} out of range for {}", self.tag());
        let first_input =
            || *input_types.first().unwrap_or_else(|| panic!("{} needs an input type", self.tag()));
        match self {
            BlockKind::Inport { dtype, .. } => *dtype,
            BlockKind::Constant { value } => value.data_type(),
            BlockKind::Ground { dtype } => *dtype,
            BlockKind::Sum { .. }
            | BlockKind::Product { .. }
            | BlockKind::Gain { .. }
            | BlockKind::Bias { .. }
            | BlockKind::Abs
            | BlockKind::UnaryMinus
            | BlockKind::MinMax { .. }
            | BlockKind::Saturation { .. }
            | BlockKind::DeadZone { .. }
            | BlockKind::Quantizer { .. }
            | BlockKind::RateLimiter { .. }
            | BlockKind::Backlash { .. }
            | BlockKind::CoulombFriction { .. }
            | BlockKind::ZeroOrderHold
            | BlockKind::UnitDelay { .. }
            | BlockKind::Delay { .. }
            | BlockKind::Memory { .. }
            | BlockKind::Switch { .. }
            | BlockKind::Merge { .. } => first_input(),
            BlockKind::Signum => first_input(),
            BlockKind::MultiportSwitch { .. } => {
                *input_types.get(1).expect("multiport switch needs a data input")
            }
            BlockKind::Math { .. }
            | BlockKind::Relay { .. }
            | BlockKind::DiscreteIntegrator { .. }
            | BlockKind::Lookup1D { .. }
            | BlockKind::Lookup2D { .. } => DataType::F64,
            BlockKind::Logic { .. }
            | BlockKind::Relational { .. }
            | BlockKind::Compare { .. }
            | BlockKind::EdgeDetect { .. }
            | BlockKind::If { .. }
            | BlockKind::SwitchCase { .. } => DataType::Bool,
            BlockKind::DataTypeConversion { to } => *to,
            BlockKind::CounterLimited { .. } => DataType::U32,
            BlockKind::CounterFreeRunning { bits } => match bits {
                0..=8 => DataType::U8,
                9..=16 => DataType::U16,
                _ => DataType::U32,
            },
            BlockKind::MatlabFunction { function } => function.outputs()[port].1,
            BlockKind::Chart { chart } => chart.outputs[port].1,
            BlockKind::ActionSubsystem { .. }
            | BlockKind::EnabledSubsystem { .. }
            | BlockKind::TriggeredSubsystem { .. }
            | BlockKind::Subsystem { .. } => {
                panic!("subsystem output types are resolved at the model level")
            }
            BlockKind::Outport { .. } | BlockKind::Terminator | BlockKind::Assertion => {
                unreachable!("sinks have no outputs")
            }
        }
    }

    /// The inner model of a subsystem kind, if any.
    pub fn inner_model(&self) -> Option<&Model> {
        match self {
            BlockKind::ActionSubsystem { model }
            | BlockKind::EnabledSubsystem { model }
            | BlockKind::TriggeredSubsystem { model, .. }
            | BlockKind::Subsystem { model } => Some(model),
            _ => None,
        }
    }

    /// `true` for the conditionally-executed subsystem kinds (action input
    /// at port 0).
    pub fn is_conditional_subsystem(&self) -> bool {
        matches!(
            self,
            BlockKind::ActionSubsystem { .. }
                | BlockKind::EnabledSubsystem { .. }
                | BlockKind::TriggeredSubsystem { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_expr;

    #[test]
    fn port_counts() {
        assert_eq!(BlockKind::Constant { value: Value::F64(1.0) }.num_inputs(), 0);
        assert_eq!(BlockKind::Constant { value: Value::F64(1.0) }.num_outputs(), 1);
        assert_eq!(BlockKind::Terminator.num_outputs(), 0);
        assert_eq!(
            BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus, InputSign::Plus] }
                .num_inputs(),
            3
        );
        assert_eq!(BlockKind::Switch { criterion: SwitchCriterion::NotZero }.num_inputs(), 3);
        assert_eq!(BlockKind::MultiportSwitch { cases: 4 }.num_inputs(), 5);
        assert_eq!(BlockKind::Logic { op: LogicOp::Not, inputs: 99 }.num_inputs(), 1);
        assert_eq!(BlockKind::Math { func: MathFunc::Pow }.num_inputs(), 2);
        assert_eq!(BlockKind::Math { func: MathFunc::Sqrt }.num_inputs(), 1);
    }

    #[test]
    fn if_block_ports() {
        let kind = BlockKind::If {
            num_inputs: 2,
            conditions: vec![parse_expr("u1 > 0").unwrap(), parse_expr("u2 > 0").unwrap()],
            has_else: true,
        };
        assert_eq!(kind.num_inputs(), 2);
        assert_eq!(kind.num_outputs(), 3);
        assert_eq!(kind.output_type(&[DataType::F64, DataType::F64], 2), DataType::Bool);
    }

    #[test]
    fn switch_case_ports() {
        let kind = BlockKind::SwitchCase { cases: vec![vec![1], vec![2, 3]], has_default: false };
        assert_eq!(kind.num_inputs(), 1);
        assert_eq!(kind.num_outputs(), 2);
    }

    #[test]
    fn loop_breakers() {
        assert!(BlockKind::UnitDelay { initial: Value::F64(0.0) }.breaks_algebraic_loops());
        assert!(BlockKind::Memory { initial: Value::F64(0.0) }.breaks_algebraic_loops());
        assert!(!BlockKind::Gain { gain: 2.0 }.breaks_algebraic_loops());
        assert!(!BlockKind::Relay {
            on_threshold: 1.0,
            off_threshold: 0.0,
            on_output: 1.0,
            off_output: 0.0
        }
        .breaks_algebraic_loops());
    }

    #[test]
    fn statefulness() {
        assert!(BlockKind::EdgeDetect { kind: EdgeKind::Rising }.is_stateful());
        assert!(BlockKind::CounterLimited { limit: 5 }.is_stateful());
        assert!(!BlockKind::Abs.is_stateful());
        assert!(!BlockKind::Logic { op: LogicOp::And, inputs: 2 }.is_stateful());
    }

    #[test]
    fn output_types_propagate_or_fix() {
        let sat = BlockKind::Saturation { lower: 0.0, upper: 1.0 };
        assert_eq!(sat.output_type(&[DataType::I16], 0), DataType::I16);
        let rel = BlockKind::Relational { op: RelOp::Lt };
        assert_eq!(rel.output_type(&[DataType::F64, DataType::F64], 0), DataType::Bool);
        let dtc = BlockKind::DataTypeConversion { to: DataType::U8 };
        assert_eq!(dtc.output_type(&[DataType::F64], 0), DataType::U8);
        let mps = BlockKind::MultiportSwitch { cases: 2 };
        assert_eq!(
            mps.output_type(&[DataType::I32, DataType::F32, DataType::F32], 0),
            DataType::F32
        );
        let counter = BlockKind::CounterFreeRunning { bits: 8 };
        assert_eq!(counter.output_type(&[], 0), DataType::U8);
        let counter = BlockKind::CounterFreeRunning { bits: 12 };
        assert_eq!(counter.output_type(&[], 0), DataType::U16);
    }

    #[test]
    fn rel_and_math_semantics() {
        assert!(RelOp::Le.apply(2.0, 2.0));
        assert!(!RelOp::Lt.apply(2.0, 2.0));
        assert!(RelOp::Ne.apply(1.0, 2.0));
        assert_eq!(MathFunc::Mod.apply(&[-7.0, 3.0]), 2.0); // MATLAB mod
        assert_eq!(MathFunc::Rem.apply(&[-7.0, 3.0]), -1.0); // C fmod
        assert_eq!(MathFunc::Mod.apply(&[5.0, 0.0]), 5.0); // mod(x,0) = x
        assert_eq!(MathFunc::Square.apply(&[3.0]), 9.0);
    }

    #[test]
    fn switch_criteria() {
        assert!(SwitchCriterion::GreaterEqual(2.0).passes_first(2.0));
        assert!(!SwitchCriterion::Greater(2.0).passes_first(2.0));
        assert!(SwitchCriterion::NotZero.passes_first(-0.5));
        assert!(!SwitchCriterion::NotZero.passes_first(0.0));
    }

    #[test]
    fn edge_detection() {
        assert!(EdgeKind::Rising.detect(false, true));
        assert!(!EdgeKind::Rising.detect(true, true));
        assert!(EdgeKind::Falling.detect(true, false));
        assert!(EdgeKind::Either.detect(true, false));
        assert!(!EdgeKind::Either.detect(false, false));
    }

    #[test]
    fn tags_are_distinct_for_catalog() {
        use std::collections::BTreeSet;
        let kinds: Vec<BlockKind> = vec![
            BlockKind::Abs,
            BlockKind::UnaryMinus,
            BlockKind::Signum,
            BlockKind::Terminator,
            BlockKind::ZeroOrderHold,
            BlockKind::Gain { gain: 1.0 },
            BlockKind::Bias { bias: 0.0 },
        ];
        let tags: BTreeSet<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }
}
