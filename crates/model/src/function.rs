//! MATLAB Function block definitions.
//!
//! A [`FunctionDef`] is a small imperative function over the block's typed
//! inputs producing typed outputs, written in the statement language of
//! [`crate::expr`]. Every `if` in the body is a coverage decision and gets
//! instrumented (Figure 4(d) of the CFTCG paper).

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::{parse_stmts, ParseExprError, Stmt};
use crate::DataType;

/// The body and signature of a MATLAB Function block.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_model::{DataType, FunctionDef};
///
/// let f = FunctionDef::parse(
///     &[("u", DataType::F64)],
///     &[("y", DataType::I32)],
///     "if (u > 100) { y = 100; } else { y = u; }",
/// )?;
/// assert_eq!(f.inputs().len(), 1);
/// f.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    inputs: Vec<(String, DataType)>,
    outputs: Vec<(String, DataType)>,
    body: Vec<Stmt>,
}

impl FunctionDef {
    /// Builds a function from an already-parsed body.
    pub fn new(
        inputs: Vec<(String, DataType)>,
        outputs: Vec<(String, DataType)>,
        body: Vec<Stmt>,
    ) -> Self {
        FunctionDef { inputs, outputs, body }
    }

    /// Parses the body text and builds the function.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] when the body does not parse.
    pub fn parse(
        inputs: &[(&str, DataType)],
        outputs: &[(&str, DataType)],
        body: &str,
    ) -> Result<Self, ParseExprError> {
        Ok(FunctionDef {
            inputs: inputs.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            outputs: outputs.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            body: parse_stmts(body)?,
        })
    }

    /// The typed input parameters, in port order.
    pub fn inputs(&self) -> &[(String, DataType)] {
        &self.inputs
    }

    /// The typed output values, in port order.
    pub fn outputs(&self) -> &[(String, DataType)] {
        &self.outputs
    }

    /// The statement body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Checks that every variable read has a definition (input, output, or
    /// a local assigned earlier at the top level) and every output is
    /// assigned on at least one path.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateFunctionError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ValidateFunctionError> {
        let mut defined: BTreeSet<String> =
            self.inputs.iter().chain(&self.outputs).map(|(n, _)| n.clone()).collect();
        let mut maybe_assigned = BTreeSet::new();
        check_definite_assignment(&self.body, &mut defined, &mut maybe_assigned)?;
        for (name, _) in &self.outputs {
            if !maybe_assigned.contains(name) {
                return Err(ValidateFunctionError::UnassignedOutput(name.clone()));
            }
        }
        Ok(())
    }

    /// Serializes the body back to parseable statement text.
    pub fn body_text(&self) -> String {
        crate::expr::format_stmts(&self.body)
    }
}

/// Definite-assignment flow analysis: a variable may only be read where it
/// is defined on *every* path (inputs and outputs are always defined —
/// outputs are zero-initialized by the engines). After an `if`, only
/// variables assigned in *both* arms become definitely assigned;
/// `maybe_assigned` takes the union (used for the output-assignment check).
fn check_definite_assignment(
    stmts: &[Stmt],
    defined: &mut BTreeSet<String>,
    maybe_assigned: &mut BTreeSet<String>,
) -> Result<(), ValidateFunctionError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign(name, value) => {
                for var in value.free_vars() {
                    if !defined.contains(&var) {
                        return Err(ValidateFunctionError::UndefinedVariable(var));
                    }
                }
                defined.insert(name.clone());
                maybe_assigned.insert(name.clone());
            }
            Stmt::If { cond, then_body, else_body } => {
                for var in cond.free_vars() {
                    if !defined.contains(&var) {
                        return Err(ValidateFunctionError::UndefinedVariable(var));
                    }
                }
                let mut then_defined = defined.clone();
                check_definite_assignment(then_body, &mut then_defined, maybe_assigned)?;
                let mut else_defined = defined.clone();
                check_definite_assignment(else_body, &mut else_defined, maybe_assigned)?;
                *defined = then_defined.intersection(&else_defined).cloned().collect();
            }
        }
    }
    Ok(())
}

/// Error reported by [`FunctionDef::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateFunctionError {
    /// A variable is read before any assignment and is not a parameter.
    UndefinedVariable(String),
    /// A declared output is never assigned.
    UnassignedOutput(String),
}

impl fmt::Display for ValidateFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateFunctionError::UndefinedVariable(name) => {
                write!(f, "variable `{name}` is read before being defined")
            }
            ValidateFunctionError::UnassignedOutput(name) => {
                write!(f, "output `{name}` is never assigned")
            }
        }
    }
}

impl std::error::Error for ValidateFunctionError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat() -> FunctionDef {
        FunctionDef::parse(
            &[("u", DataType::F64)],
            &[("y", DataType::F64)],
            "if (u > 10) { y = 10; } else if (u < -10) { y = -10; } else { y = u; }",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_accessors() {
        let f = sat();
        assert_eq!(f.inputs()[0].0, "u");
        assert_eq!(f.outputs()[0].1, DataType::F64);
        assert_eq!(f.body().len(), 1);
    }

    #[test]
    fn validate_accepts_well_formed() {
        sat().validate().unwrap();
    }

    #[test]
    fn validate_rejects_undefined_read() {
        let f = FunctionDef::parse(&[], &[("y", DataType::F64)], "y = ghost + 1;").unwrap();
        assert_eq!(
            f.validate().unwrap_err(),
            ValidateFunctionError::UndefinedVariable("ghost".into())
        );
    }

    #[test]
    fn validate_accepts_locals_assigned_before_use() {
        let f = FunctionDef::parse(
            &[("u", DataType::F64)],
            &[("y", DataType::F64)],
            "tmp = u * 2; y = tmp + 1;",
        )
        .unwrap();
        f.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unassigned_output() {
        let f = FunctionDef::parse(
            &[("u", DataType::F64)],
            &[("y", DataType::F64), ("z", DataType::F64)],
            "y = u;",
        )
        .unwrap();
        assert_eq!(f.validate().unwrap_err(), ValidateFunctionError::UnassignedOutput("z".into()));
    }

    #[test]
    fn body_text_reparses() {
        let f = sat();
        let text = f.body_text();
        let reparsed =
            FunctionDef::parse(&[("u", DataType::F64)], &[("y", DataType::F64)], &text).unwrap();
        assert_eq!(reparsed.body(), f.body());
    }

    #[test]
    fn error_display() {
        let e = ValidateFunctionError::UndefinedVariable("q".into());
        assert!(e.to_string().contains("`q`"));
    }
}
