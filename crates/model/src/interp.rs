//! Lookup-table interpolation, shared by every execution engine so the
//! interpreted and compiled paths cannot drift apart numerically.

/// 1-D linear interpolation over strictly increasing `breakpoints`, clipping
/// to the end values outside the table range.
///
/// ```
/// use cftcg_model::interp::lookup1d;
/// let breaks = [0.0, 1.0, 2.0];
/// let values = [0.0, 10.0, 30.0];
/// assert_eq!(lookup1d(&breaks, &values, 0.5), 5.0);
/// assert_eq!(lookup1d(&breaks, &values, -9.0), 0.0); // clipped low
/// assert_eq!(lookup1d(&breaks, &values, 9.0), 30.0); // clipped high
/// ```
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths (model validation
/// rejects such tables before execution).
pub fn lookup1d(breakpoints: &[f64], values: &[f64], x: f64) -> f64 {
    assert_eq!(breakpoints.len(), values.len(), "table shape mismatch");
    assert!(!breakpoints.is_empty(), "empty lookup table");
    let n = breakpoints.len();
    if x.is_nan() || x <= breakpoints[0] {
        return values[0];
    }
    if x >= breakpoints[n - 1] {
        return values[n - 1];
    }
    // Find the segment [i, i+1] containing x.
    let mut i = 0;
    while i + 2 < n && x >= breakpoints[i + 1] {
        i += 1;
    }
    let (x0, x1) = (breakpoints[i], breakpoints[i + 1]);
    let (y0, y1) = (values[i], values[i + 1]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// 2-D bilinear interpolation with end clipping on both axes.
///
/// `values[r][c]` corresponds to `row_breaks[r]` × `col_breaks[c]`.
///
/// ```
/// use cftcg_model::interp::lookup2d;
/// let rows = [0.0, 1.0];
/// let cols = [0.0, 1.0];
/// let table = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
/// assert_eq!(lookup2d(&rows, &cols, &table, 0.5, 0.5), 1.5);
/// ```
///
/// # Panics
///
/// Panics on shape mismatches (rejected earlier by model validation).
pub fn lookup2d(
    row_breaks: &[f64],
    col_breaks: &[f64],
    values: &[Vec<f64>],
    r: f64,
    c: f64,
) -> f64 {
    assert_eq!(values.len(), row_breaks.len(), "table shape mismatch");
    let (ri, rt) = locate(row_breaks, r);
    let (ci, ct) = locate(col_breaks, c);
    let v00 = values[ri][ci];
    let v01 = values[ri][ci + 1];
    let v10 = values[ri + 1][ci];
    let v11 = values[ri + 1][ci + 1];
    let top = v00 + (v01 - v00) * ct;
    let bottom = v10 + (v11 - v10) * ct;
    top + (bottom - top) * rt
}

/// Returns the lower segment index and the in-segment fraction in `[0, 1]`
/// for `x` over `breaks`, clipping outside the range.
fn locate(breaks: &[f64], x: f64) -> (usize, f64) {
    let n = breaks.len();
    assert!(n >= 2, "need at least two breakpoints");
    if x.is_nan() || x <= breaks[0] {
        return (0, 0.0);
    }
    if x >= breaks[n - 1] {
        return (n - 2, 1.0);
    }
    let mut i = 0;
    while i + 2 < n && x >= breaks[i + 1] {
        i += 1;
    }
    (i, (x - breaks[i]) / (breaks[i + 1] - breaks[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup1d_hits_breakpoints_exactly() {
        let b = [0.0, 1.0, 3.0];
        let v = [5.0, 7.0, -1.0];
        for i in 0..3 {
            assert_eq!(lookup1d(&b, &v, b[i]), v[i]);
        }
    }

    #[test]
    fn lookup1d_interpolates_in_every_segment() {
        let b = [0.0, 1.0, 3.0];
        let v = [0.0, 10.0, 30.0];
        assert_eq!(lookup1d(&b, &v, 0.25), 2.5);
        assert_eq!(lookup1d(&b, &v, 2.0), 20.0);
    }

    #[test]
    fn lookup1d_clips_and_handles_nan() {
        let b = [0.0, 1.0];
        let v = [2.0, 4.0];
        assert_eq!(lookup1d(&b, &v, -100.0), 2.0);
        assert_eq!(lookup1d(&b, &v, 100.0), 4.0);
        assert_eq!(lookup1d(&b, &v, f64::NAN), 2.0);
    }

    #[test]
    fn lookup2d_corners_and_center() {
        let rows = [0.0, 2.0];
        let cols = [0.0, 4.0];
        let table = vec![vec![1.0, 3.0], vec![5.0, 7.0]];
        assert_eq!(lookup2d(&rows, &cols, &table, 0.0, 0.0), 1.0);
        assert_eq!(lookup2d(&rows, &cols, &table, 2.0, 4.0), 7.0);
        assert_eq!(lookup2d(&rows, &cols, &table, 1.0, 2.0), 4.0);
    }

    #[test]
    fn lookup2d_clips_out_of_range() {
        let rows = [0.0, 1.0];
        let cols = [0.0, 1.0];
        let table = vec![vec![0.0, 1.0], vec![2.0, 3.0]];
        assert_eq!(lookup2d(&rows, &cols, &table, -5.0, -5.0), 0.0);
        assert_eq!(lookup2d(&rows, &cols, &table, 5.0, 5.0), 3.0);
    }

    #[test]
    fn lookup1d_monotone_between_neighbors() {
        let b: Vec<f64> = (0..10).map(f64::from).collect();
        let v: Vec<f64> = b.iter().map(|x| x * x).collect();
        let y = lookup1d(&b, &v, 4.5);
        assert!(y > 16.0 && y < 25.0);
    }
}
