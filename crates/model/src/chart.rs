//! Stateflow-style state charts.
//!
//! A [`Chart`] is a flat finite-state machine with typed inputs, outputs and
//! chart-local persistent variables. On every model step exactly one of the
//! following happens:
//!
//! 1. the outgoing transitions of the active state are tried in priority
//!    order; the first whose guard holds *fires*: its action runs, then the
//!    target state's `entry` action runs, and the target becomes active; or
//! 2. no guard holds, and the active state's `during` action runs.
//!
//! Every transition guard is a coverage decision, and each `if` inside
//! entry/during/transition actions is too — instrumentation mode (d) of the
//! CFTCG paper.

use std::collections::BTreeSet;
use std::fmt;

use crate::expr::{Expr, Stmt};
use crate::{DataType, Value};

/// A chart state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct State {
    /// State name, unique within the chart.
    pub name: String,
    /// Statements run when the state is entered by a firing transition.
    pub entry: Vec<Stmt>,
    /// Statements run on steps where the state stays active.
    pub during: Vec<Stmt>,
}

impl State {
    /// Creates a state with empty actions.
    pub fn new(name: impl Into<String>) -> Self {
        State { name: name.into(), entry: Vec::new(), during: Vec::new() }
    }

    /// Sets the entry action, builder style.
    pub fn with_entry(mut self, entry: Vec<Stmt>) -> Self {
        self.entry = entry;
        self
    }

    /// Sets the during action, builder style.
    pub fn with_during(mut self, during: Vec<Stmt>) -> Self {
        self.during = during;
        self
    }
}

/// A transition between chart states.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Index of the source state in [`Chart::states`].
    pub from: usize,
    /// Index of the target state in [`Chart::states`].
    pub to: usize,
    /// Guard expression; `None` is an unconditional transition.
    pub guard: Option<Expr>,
    /// Statements run when the transition fires, before the target's entry.
    pub action: Vec<Stmt>,
}

impl Transition {
    /// Creates a guarded transition with no action.
    pub fn new(from: usize, to: usize, guard: Expr) -> Self {
        Transition { from, to, guard: Some(guard), action: Vec::new() }
    }

    /// Creates an unconditional transition with no action.
    pub fn unconditional(from: usize, to: usize) -> Self {
        Transition { from, to, guard: None, action: Vec::new() }
    }

    /// Sets the transition action, builder style.
    pub fn with_action(mut self, action: Vec<Stmt>) -> Self {
        self.action = action;
        self
    }
}

/// A flat Stateflow-style chart.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chart {
    /// Typed input variables, bound to the block's input ports in order.
    pub inputs: Vec<(String, DataType)>,
    /// Typed output variables, bound to the block's output ports in order.
    /// Outputs hold their last written value across steps.
    pub outputs: Vec<(String, DataType)>,
    /// Chart-local persistent variables with initial values.
    pub variables: Vec<(String, DataType, Value)>,
    /// The states; must be non-empty.
    pub states: Vec<State>,
    /// Index of the initially active state.
    pub initial: usize,
    /// Transitions; priority is list order (global order, filtered by the
    /// active state at runtime).
    pub transitions: Vec<Transition>,
}

impl Chart {
    /// Creates an empty chart.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state and returns its index.
    pub fn add_state(&mut self, state: State) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Outgoing transitions of `state`, in priority order.
    pub fn transitions_from(&self, state: usize) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Checks structural well-formedness: non-empty states, in-range indices,
    /// unique state names, and all variables referenced by guards/actions
    /// declared (inputs, outputs, locals, or the builtin `t` step counter).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateChartError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), ValidateChartError> {
        if self.states.is_empty() {
            return Err(ValidateChartError::NoStates);
        }
        if self.initial >= self.states.len() {
            return Err(ValidateChartError::BadStateIndex(self.initial));
        }
        let mut names = BTreeSet::new();
        for state in &self.states {
            if !names.insert(state.name.as_str()) {
                return Err(ValidateChartError::DuplicateState(state.name.clone()));
            }
        }
        let declared: BTreeSet<&str> = self
            .inputs
            .iter()
            .map(|(n, _)| n.as_str())
            .chain(self.outputs.iter().map(|(n, _)| n.as_str()))
            .chain(self.variables.iter().map(|(n, _, _)| n.as_str()))
            .collect();
        let check_vars = |vars: BTreeSet<String>| -> Result<(), ValidateChartError> {
            for v in vars {
                if !declared.contains(v.as_str()) {
                    return Err(ValidateChartError::UndeclaredVariable(v));
                }
            }
            Ok(())
        };
        for t in &self.transitions {
            if t.from >= self.states.len() {
                return Err(ValidateChartError::BadStateIndex(t.from));
            }
            if t.to >= self.states.len() {
                return Err(ValidateChartError::BadStateIndex(t.to));
            }
            if let Some(guard) = &t.guard {
                check_vars(guard.free_vars())?;
            }
            for s in &t.action {
                check_vars(s.free_vars())?;
                check_assignable(&declared, s)?;
            }
        }
        for state in &self.states {
            for s in state.entry.iter().chain(&state.during) {
                check_vars(s.free_vars())?;
                check_assignable(&declared, s)?;
            }
        }
        Ok(())
    }

    /// Total number of coverage decisions contributed by this chart: one per
    /// guarded transition plus one per `if` statement in any action.
    pub fn decision_count(&self) -> usize {
        let mut n = self.transitions.iter().filter(|t| t.guard.is_some()).count();
        for state in &self.states {
            n += count_ifs(&state.entry) + count_ifs(&state.during);
        }
        for t in &self.transitions {
            n += count_ifs(&t.action);
        }
        n
    }
}

fn check_assignable(declared: &BTreeSet<&str>, stmt: &Stmt) -> Result<(), ValidateChartError> {
    for v in stmt.assigned_vars() {
        if !declared.contains(v.as_str()) {
            return Err(ValidateChartError::UndeclaredVariable(v));
        }
    }
    Ok(())
}

fn count_ifs(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(..) => 0,
            Stmt::If { then_body, else_body, .. } => {
                1 + count_ifs(then_body) + count_ifs(else_body)
            }
        })
        .sum()
}

/// Error reported by [`Chart::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateChartError {
    /// The chart has no states.
    NoStates,
    /// A state index (initial or transition endpoint) is out of range.
    BadStateIndex(usize),
    /// Two states share a name.
    DuplicateState(String),
    /// A guard or action references an undeclared variable.
    UndeclaredVariable(String),
}

impl fmt::Display for ValidateChartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateChartError::NoStates => f.write_str("chart has no states"),
            ValidateChartError::BadStateIndex(i) => write!(f, "state index {i} out of range"),
            ValidateChartError::DuplicateState(name) => {
                write!(f, "duplicate state name `{name}`")
            }
            ValidateChartError::UndeclaredVariable(name) => {
                write!(f, "chart references undeclared variable `{name}`")
            }
        }
    }
}

impl std::error::Error for ValidateChartError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{parse_expr, parse_stmts};

    fn toggle_chart() -> Chart {
        let mut chart = Chart::new();
        chart.inputs.push(("go".into(), DataType::Bool));
        chart.outputs.push(("on".into(), DataType::Bool));
        chart.variables.push(("count".into(), DataType::I32, Value::I32(0)));
        let off = chart.add_state(State::new("Off").with_entry(parse_stmts("on = 0;").unwrap()));
        let on = chart.add_state(
            State::new("On")
                .with_entry(parse_stmts("on = 1;").unwrap())
                .with_during(parse_stmts("count = count + 1;").unwrap()),
        );
        chart.initial = off;
        chart.add_transition(Transition::new(off, on, parse_expr("go").unwrap()));
        chart.add_transition(Transition::new(on, off, parse_expr("!go").unwrap()));
        chart
    }

    #[test]
    fn validates_well_formed_chart() {
        toggle_chart().validate().unwrap();
    }

    #[test]
    fn rejects_empty_chart() {
        assert_eq!(Chart::new().validate().unwrap_err(), ValidateChartError::NoStates);
    }

    #[test]
    fn rejects_bad_indices() {
        let mut chart = toggle_chart();
        chart.initial = 9;
        assert_eq!(chart.validate().unwrap_err(), ValidateChartError::BadStateIndex(9));

        let mut chart = toggle_chart();
        chart.add_transition(Transition::unconditional(0, 7));
        assert_eq!(chart.validate().unwrap_err(), ValidateChartError::BadStateIndex(7));
    }

    #[test]
    fn rejects_duplicate_state_names() {
        let mut chart = toggle_chart();
        chart.add_state(State::new("Off"));
        assert_eq!(chart.validate().unwrap_err(), ValidateChartError::DuplicateState("Off".into()));
    }

    #[test]
    fn rejects_undeclared_guard_variable() {
        let mut chart = toggle_chart();
        chart.add_transition(Transition::new(0, 1, parse_expr("phantom > 0").unwrap()));
        assert_eq!(
            chart.validate().unwrap_err(),
            ValidateChartError::UndeclaredVariable("phantom".into())
        );
    }

    #[test]
    fn rejects_undeclared_assignment_target() {
        let mut chart = toggle_chart();
        chart.states[0].during = parse_stmts("mystery = 1;").unwrap();
        assert_eq!(
            chart.validate().unwrap_err(),
            ValidateChartError::UndeclaredVariable("mystery".into())
        );
    }

    #[test]
    fn decision_count_counts_guards_and_ifs() {
        let mut chart = toggle_chart(); // 2 guarded transitions
        assert_eq!(chart.decision_count(), 2);
        chart.states[1].during =
            parse_stmts("if (count > 5) { count = 0; } else { count = count + 1; }").unwrap();
        assert_eq!(chart.decision_count(), 3);
    }

    #[test]
    fn transitions_from_filters_by_source() {
        let chart = toggle_chart();
        assert_eq!(chart.transitions_from(0).count(), 1);
        assert_eq!(chart.transitions_from(1).count(), 1);
        assert_eq!(chart.transitions_from(0).next().unwrap().to, 1);
    }
}
