#![warn(missing_docs)]

//! # CFTCG — code-based fuzzing test generation for Simulink-style models
//!
//! A from-scratch Rust reproduction of *"CFTCG: Test Case Generation for
//! Simulink Model through Code Based Fuzzing"* (DAC 2024): the complete
//! pipeline — model IR, interpretive simulator, instrumented code
//! generation, the model-oriented fuzzer — plus the paper's baselines and
//! benchmark models.
//!
//! This crate is the facade: it re-exports every subsystem under one roof.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `cftcg-model` | block-diagram IR, expression language, XML persistence |
//! | [`sim`] | `cftcg-sim` | interpretive simulator (the slow reference engine) |
//! | [`coverage`] | `cftcg-coverage` | branch probes, Decision/Condition/MCDC scoring |
//! | [`codegen`] | `cftcg-codegen` | schedule conversion, branch instrumentation, step-IR VM, C emission, fuzz driver |
//! | [`fuzz`] | `cftcg-fuzz` | tuple-aware mutation, iteration-difference feedback, the fuzzing loop |
//! | [`baselines`] | `cftcg-baselines` | SLDV-like, SimCoTest-like, and Fuzz-Only generators |
//! | [`benchmarks`] | `cftcg-benchmarks` | the eight Table 2 models |
//! | [`telemetry`] | `cftcg-telemetry` | metrics registry, JSONL event log, status line, Prometheus dump |
//! | [`observe`] | `cftcg-observe` | live campaign HTTP observatory: /metrics, /snapshot, dashboard |
//! | [`trace`] | `cftcg-trace` | signal probes, VCD/CSV waveforms, per-block profiling, sim↔VM divergence auditor |
//! | [`pipeline`] | `cftcg-core` | the end-to-end tool ([`Cftcg`]) |
//! | [`compare`] | `cftcg-compare` | campaign diffing, paired A/B harness, bench-history regression gate |
//! | [`slimxml`] | `cftcg-slimxml` | minimal XML parser (TinyXML substitute) |
//!
//! # Quickstart
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg::{Cftcg, model::{BlockKind, DataType, ModelBuilder}};
//! use std::time::Duration;
//!
//! // 1. Build (or load) a model.
//! let mut b = ModelBuilder::new("demo");
//! let u = b.inport("u", DataType::I16);
//! let sat = b.add("sat", BlockKind::Saturation { lower: -100.0, upper: 100.0 });
//! let y = b.outport("y");
//! b.wire(u, sat);
//! b.wire(sat, y);
//! let model = b.finish()?;
//!
//! // 2. Fuzzing code generation + the model-oriented fuzzing loop.
//! let tool = Cftcg::new(&model)?;
//! let tests = tool.generate(Duration::from_millis(200), 0);
//!
//! // 3. Score the suite with Decision / Condition / MCDC coverage.
//! let report = tool.score(&tests);
//! assert_eq!(report.decision.percent(), 100.0);
//! # Ok(())
//! # }
//! ```

pub use cftcg_baselines as baselines;
pub use cftcg_benchmarks as benchmarks;
pub use cftcg_codegen as codegen;
pub use cftcg_compare as compare;
pub use cftcg_core as pipeline;
pub use cftcg_coverage as coverage;
pub use cftcg_fuzz as fuzz;
pub use cftcg_model as model;
pub use cftcg_observe as observe;
pub use cftcg_sim as sim;
pub use cftcg_slimxml as slimxml;
pub use cftcg_telemetry as telemetry;
pub use cftcg_trace as trace;

pub use cftcg_core::Cftcg;
pub use cftcg_coverage::CoverageReport;
pub use cftcg_fuzz::Generation;
