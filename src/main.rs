//! `cftcg` — the command-line front end of the pipeline.
//!
//! ```text
//! cftcg stats  <model.mdlx>                         instrumentation statistics
//! cftcg codegen <model.mdlx> [--driver]             emit instrumented C / fuzz driver
//! cftcg fuzz   <model.mdlx> [--budget-ms N] [--seed N] [--out DIR]
//!                                                   run the fuzzing loop, write CSV cases
//! cftcg score  <model.mdlx> <case.csv>...           replay CSV test cases, print coverage
//! cftcg export-benchmarks <DIR>                     write the 8 Table-2 models as .mdlx
//! ```

use std::error::Error;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use cftcg::codegen::{
    compile, emit_c, emit_driver_c, replay_case, replay_suite, test_case_from_csv, test_case_to_csv,
};
use cftcg::coverage::{detailed_report, FullTracker};
use cftcg::model::{load_model, save_model, Model};
use cftcg::Cftcg;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "stats" => stats(&load(args.get(1))?),
        "codegen" => codegen(&load(args.get(1))?, args.contains(&"--driver".to_string())),
        "fuzz" => fuzz(&load(args.get(1))?, &args[2..]),
        "score" => score(&load(args.get(1))?, &args[2..]),
        "export-benchmarks" => {
            export_benchmarks(args.get(1).map(String::as_str).unwrap_or("models"))
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `cftcg help`)").into()),
    }
}

fn print_usage() {
    println!(
        "cftcg — test case generation for Simulink-style models through code-based fuzzing\n\n\
         USAGE:\n\
         \x20 cftcg stats  <model.mdlx>\n\
         \x20 cftcg codegen <model.mdlx> [--driver]\n\
         \x20 cftcg fuzz   <model.mdlx> [--budget-ms N] [--seed N] [--out DIR]\n\
         \x20 cftcg score  <model.mdlx> <case.csv>...\n\
         \x20 cftcg export-benchmarks [DIR]"
    );
}

fn load(path: Option<&String>) -> Result<Model, Box<dyn Error>> {
    let path = path.ok_or("missing <model.mdlx> argument")?;
    let xml = fs::read_to_string(path)?;
    let model = load_model(&xml)?;
    model.validate()?;
    Ok(model)
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn stats(model: &Model) -> Result<(), Box<dyn Error>> {
    let compiled = compile(model)?;
    println!("model     : {}", model.name());
    println!("blocks    : {} (including subsystems)", model.total_block_count());
    println!("branches  : {}", compiled.map().branch_count());
    println!("decisions : {}", compiled.map().decision_count());
    println!("conditions: {}", compiled.map().condition_count());
    println!("state     : {} slots", compiled.state_len());
    println!("driver    : {} bytes per iteration", compiled.layout().tuple_size());
    for field in compiled.layout().fields() {
        println!("  {:>12}  {:>8}  offset {}", field.name, field.dtype, field.offset);
    }
    Ok(())
}

fn codegen(model: &Model, driver: bool) -> Result<(), Box<dyn Error>> {
    let compiled = compile(model)?;
    if driver {
        print!("{}", emit_driver_c(&compiled));
    } else {
        print!("{}", emit_c(&compiled));
    }
    Ok(())
}

fn fuzz(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let budget_ms: u64 =
        flag_value(rest, "--budget-ms").map(str::parse).transpose()?.unwrap_or(5_000);
    let seed: u64 = flag_value(rest, "--seed").map(str::parse).transpose()?.unwrap_or(0);
    let out = flag_value(rest, "--out");
    let minimize = rest.contains(&"--minimize".to_string());

    let tool = Cftcg::new(model)?;
    let mut generation = tool.generate(Duration::from_millis(budget_ms), seed);
    if minimize {
        let before = generation.suite.len();
        generation.suite = tool.minimize(&generation.suite);
        println!("minimized suite: {before} -> {} cases", generation.suite.len());
    }
    let report = tool.score(&generation);
    println!(
        "executed {} inputs / {} model iterations in {:?} ({:.0} iterations/s)",
        generation.executions,
        generation.iterations,
        generation.elapsed,
        generation.iterations_per_second()
    );
    println!("emitted {} test cases", generation.suite.len());
    println!("coverage: {report}");
    if !generation.violations.is_empty() {
        println!("assertion violations found:");
        for (idx, case) in &generation.violations {
            println!(
                "  {} (witness: {} iterations)",
                tool.compiled().map().assertions()[*idx],
                case.iterations(tool.compiled().layout())
            );
        }
    }
    if let Some(dir) = out {
        fs::create_dir_all(dir)?;
        for (i, case) in generation.suite.iter().enumerate() {
            let csv = test_case_to_csv(tool.compiled().layout(), case);
            fs::write(Path::new(dir).join(format!("case_{i:04}.csv")), csv)?;
        }
        println!("wrote {} CSV test cases to {dir}/", generation.suite.len());
    }
    Ok(())
}

fn score(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let detailed = rest.contains(&"--detailed".to_string());
    let csv_paths: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
    if csv_paths.is_empty() {
        return Err("score needs at least one <case.csv>".into());
    }
    let compiled = compile(model)?;
    let mut suite = Vec::new();
    for path in csv_paths {
        let csv = fs::read_to_string(path)?;
        suite.push(test_case_from_csv(compiled.layout(), &csv)?);
    }
    if detailed {
        let mut tracker = FullTracker::new(compiled.map());
        for case in &suite {
            replay_case(&compiled, case, &mut tracker);
        }
        print!("{}", detailed_report(compiled.map(), &tracker));
    } else {
        let report = replay_suite(&compiled, &suite);
        println!("{} test cases: {report}", suite.len());
    }
    Ok(())
}

fn export_benchmarks(dir: &str) -> Result<(), Box<dyn Error>> {
    fs::create_dir_all(dir)?;
    for model in cftcg::benchmarks::all() {
        let path = Path::new(dir).join(format!("{}.mdlx", model.name().to_lowercase()));
        fs::write(&path, save_model(&model))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
