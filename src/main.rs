//! `cftcg` — the command-line front end of the pipeline.
//!
//! ```text
//! cftcg stats  <model.mdlx>                         instrumentation statistics
//! cftcg codegen <model.mdlx> [--driver]             emit instrumented C / fuzz driver
//! cftcg fuzz   <model.mdlx> [--budget-ms N] [--seed N] [--out DIR] [--workers N]
//!              [--stats-jsonl FILE] [--status-every SECS] [--prom FILE]
//!              [--serve ADDR] [--trace-events FILE]
//!              [--trace-dir DIR] [--trace-every N] [--plateau-window N]
//!                                                   run the fuzzing loop, write CSV cases
//!                                                   + campaign.json forensics; --serve
//!                                                   exposes /metrics, /snapshot and a live
//!                                                   dashboard while the campaign runs
//! cftcg diff   <model.mdlx> <a.json> <b.json>       differential campaign comparison:
//!              [--json F] [--html F]                goals gained/lost, first-hit shifts,
//!              [--allow-mismatch] [--no-frontier]   yield/span deltas, frontier migration
//! cftcg ab     <model.mdlx> --a SPEC --b SPEC       paired A/B harness: interleaved
//!              [--trials N] [--executions N]        seeded trials, median/IQR summary,
//!              [--budget-ms N] [--json F] [--html F] representative-pair diff
//! cftcg explain <model.mdlx> <campaign.json> [CASE] frontier analysis; with CASE (s0:12),
//!                                                   the case's mutation lineage
//! cftcg trace  <model.mdlx> <campaign.json> <CASE>  replay one case with signal probes,
//!              [--probe PAT]... [--all] [--out F]   export a VCD (and --csv F) waveform;
//!              [--csv F] [--profile]                --profile adds per-block timing
//! cftcg audit  <model.mdlx> [--campaign FILE]       lockstep interpreter<->VM divergence
//!              [--cases N] [--ticks N] [--seed N]   audit; non-zero exit on divergence
//! cftcg report <stats.jsonl>                        summarize a campaign event log
//! cftcg report --html OUT --model M --campaign C    render the HTML campaign explorer
//! cftcg score  <model.mdlx> <case.csv>...           replay CSV test cases, print coverage
//! cftcg export-benchmarks <DIR>                     write the 8 Table-2 models as .mdlx
//! ```

use std::error::Error;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cftcg::codegen::{
    compile, emit_c, emit_driver_c, replay_case, replay_suite, test_case_from_csv,
    test_case_to_csv, CompiledModel, TestCase,
};
use cftcg::compare::{
    ab_report, diff_html, diff_json, run_ab, terminal_report, AbBudget, ArtifactDiff,
    FrontierMigration, VariantSpec,
};
use cftcg::coverage::{detailed_report, frontier, CoverageReport, FullTracker};
use cftcg::fuzz::format_chain;
use cftcg::model::{load_model, save_model, Model};
use cftcg::pipeline::{
    campaign_explorer_html, parse_case_id, CampaignArtifact, HostMeta, SpanSummary,
};
use cftcg::telemetry::{json::Json, BlockCost, Event, OperatorReport, Telemetry};
use cftcg::trace::{profile_case, to_csv, to_vcd, trace_vm_case, Auditor, BlockProfile, ProbeMask};
use cftcg::Cftcg;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "stats" => stats(&load(args.get(1))?),
        "codegen" => codegen(&load(args.get(1))?, args.contains(&"--driver".to_string())),
        "fuzz" => fuzz(&load(args.get(1))?, &args[2..]),
        "diff" => diff_cmd(&load(args.get(1))?, &args[2..]),
        "ab" => ab_cmd(&load(args.get(1))?, &args[2..]),
        "explain" => explain(&load(args.get(1))?, &args[2..]),
        "trace" => trace_cmd(&load(args.get(1))?, &args[2..]),
        "audit" => audit_cmd(&load(args.get(1))?, &args[2..]),
        "report" => report(&args[1..]),
        "score" => score(&load(args.get(1))?, &args[2..]),
        "export-benchmarks" => {
            export_benchmarks(args.get(1).map(String::as_str).unwrap_or("models"))
        }
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `cftcg help`)").into()),
    }
}

fn print_usage() {
    println!(
        "cftcg — test case generation for Simulink-style models through code-based fuzzing\n\n\
         USAGE:\n\
         \x20 cftcg stats  <model.mdlx>\n\
         \x20 cftcg codegen <model.mdlx> [--driver]\n\
         \x20 cftcg fuzz   <model.mdlx> [--budget-ms N] [--seed N] [--out DIR] [--workers N]\n\
         \x20              [--batch N] [--stats-jsonl FILE] [--status-every SECS] [--prom FILE]\n\
         \x20              [--serve ADDR] [--trace-events FILE]\n\
         \x20              [--trace-dir DIR] [--trace-every N] [--plateau-window N]\n\
         \x20 cftcg diff   <model.mdlx> <a/campaign.json> <b/campaign.json>\n\
         \x20              [--json OUT.json] [--html OUT.html] [--allow-mismatch]\n\
         \x20              [--no-frontier]\n\
         \x20 cftcg ab     <model.mdlx> [--a SPEC] [--b SPEC] [--trials N] [--seed N]\n\
         \x20              [--executions N | --budget-ms N] [--json OUT.json]\n\
         \x20              [--html OUT.html]   (SPEC: engine=flat,workers=2,\n\
         \x20              field-aware=off,metric-corpus=off)\n\
         \x20 cftcg explain <model.mdlx> <campaign.json> [CASE]\n\
         \x20 cftcg trace  <model.mdlx> <campaign.json> <CASE> [--probe PAT]... [--all]\n\
         \x20              [--out FILE.vcd] [--csv FILE.csv] [--profile]\n\
         \x20 cftcg audit  <model.mdlx> [--campaign <campaign.json>] [--cases N] [--ticks N]\n\
         \x20              [--seed N]\n\
         \x20 cftcg report <stats.jsonl>\n\
         \x20 cftcg report --html OUT.html --model <model.mdlx> --campaign <campaign.json>\n\
         \x20 cftcg score  <model.mdlx> <case.csv>...\n\
         \x20 cftcg export-benchmarks [DIR]"
    );
}

fn load(path: Option<&String>) -> Result<Model, Box<dyn Error>> {
    load_path(path.ok_or("missing <model.mdlx> argument")?)
}

fn load_path(path: &str) -> Result<Model, Box<dyn Error>> {
    let xml = fs::read_to_string(path)?;
    let model = load_model(&xml)?;
    model.validate()?;
    Ok(model)
}

/// Rebuilds the replay-time observations of a persisted campaign by running
/// its embedded suite bytes through the compiled model — the evidence the
/// frontier analysis and the HTML explorer are derived from.
fn replay_tracker(compiled: &CompiledModel, artifact: &CampaignArtifact) -> FullTracker {
    let mut tracker = FullTracker::new(compiled.map());
    for case in &artifact.cases {
        replay_case(compiled, &TestCase::new(case.bytes.clone()), &mut tracker);
    }
    tracker
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Every value of a repeatable flag (`--probe a --probe b` → `["a", "b"]`).
fn flag_values(args: &[String], name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == name {
            out.push(args[i + 1].clone());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn stats(model: &Model) -> Result<(), Box<dyn Error>> {
    let compiled = compile(model)?;
    println!("model     : {}", model.name());
    println!("blocks    : {} (including subsystems)", model.total_block_count());
    println!("branches  : {}", compiled.map().branch_count());
    println!("decisions : {}", compiled.map().decision_count());
    println!("conditions: {}", compiled.map().condition_count());
    println!("state     : {} slots", compiled.state_len());
    println!("driver    : {} bytes per iteration", compiled.layout().tuple_size());
    for field in compiled.layout().fields() {
        println!("  {:>12}  {:>8}  offset {}", field.name, field.dtype, field.offset);
    }
    Ok(())
}

fn codegen(model: &Model, driver: bool) -> Result<(), Box<dyn Error>> {
    let compiled = compile(model)?;
    if driver {
        print!("{}", emit_driver_c(&compiled));
    } else {
        print!("{}", emit_c(&compiled));
    }
    Ok(())
}

fn fuzz(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let budget_ms: u64 =
        flag_value(rest, "--budget-ms").map(str::parse).transpose()?.unwrap_or(5_000);
    let seed: u64 = flag_value(rest, "--seed").map(str::parse).transpose()?.unwrap_or(0);
    let workers: usize = flag_value(rest, "--workers").map(str::parse).transpose()?.unwrap_or(1);
    let out = flag_value(rest, "--out");
    let minimize = rest.contains(&"--minimize".to_string());
    let stats_jsonl = flag_value(rest, "--stats-jsonl");
    let status_every: Option<f64> =
        flag_value(rest, "--status-every").map(str::parse).transpose()?;
    let prom = flag_value(rest, "--prom");
    let serve = flag_value(rest, "--serve");
    let trace_events = flag_value(rest, "--trace-events");
    let trace_dir = flag_value(rest, "--trace-dir").map(str::to_string);
    let trace_every: u64 =
        flag_value(rest, "--trace-every").map(str::parse).transpose()?.unwrap_or(1).max(1);
    let plateau_window: Option<u64> =
        flag_value(rest, "--plateau-window").map(str::parse).transpose()?;
    // `--batch N` selects the batched SoA tier at N lanes (0 = default
    // width); `CFTCG_ENGINE` still wins, like every engine preference.
    let batch: Option<usize> = flag_value(rest, "--batch").map(str::parse).transpose()?;

    // Build the telemetry registry only when a sink was requested; without
    // one the loop skips per-execution timing entirely. The observatory is
    // a sink too: it reads the registry live.
    let telemetry =
        if stats_jsonl.is_some() || status_every.is_some() || prom.is_some() || serve.is_some() {
            let mut t = Telemetry::new();
            if let Some(path) = stats_jsonl {
                t = t.with_jsonl(std::io::BufWriter::new(fs::File::create(path)?));
            }
            if let Some(secs) = status_every {
                t = t.with_status(Duration::from_secs_f64(secs.max(0.0)));
            }
            if let Some(path) = prom {
                // Rewritten on the status cadence while the campaign runs, so
                // a file-based scrape sees live numbers, not just the final.
                let every = Duration::from_secs_f64(status_every.unwrap_or(1.0).max(0.0));
                t = t.with_prom_file(path, every);
            }
            Some(Arc::new(t))
        } else {
            None
        };
    // The span-trace buffer samples individual phase occurrences for
    // Chrome-trace export (the histograms in the registry are unsampled).
    let span_trace = trace_events.map(|_| cftcg::telemetry::SpanTrace::new());

    let mut tool = Cftcg::new(model)?;
    if let Some(width) = batch {
        tool = tool.with_batch(width);
    }
    println!("engine: {} ({} workers)", tool.engine(), workers);
    if let Some(t) = &telemetry {
        tool = tool.with_telemetry(t.clone());
        t.emit(&Event::CampaignStart {
            model: model.name().to_string(),
            seed,
            workers,
            budget_ms: Some(budget_ms),
            branch_count: tool.compiled().map().branch_count(),
        });
    }
    if let Some(trace) = &span_trace {
        tool = tool.with_span_trace(trace.clone());
    }
    if let Some(window) = plateau_window {
        // Only observable through a telemetry sink; the fuzzing loop arms
        // the watcher only when a registry is attached.
        tool = tool.with_plateau_window(window);
    }
    let server = match (serve, &telemetry) {
        (Some(addr), Some(t)) => {
            let observatory = cftcg::observe::Observatory::new(t.clone(), model.name());
            let server = cftcg::observe::ObserveServer::bind(addr, observatory)
                .map_err(|e| format!("--serve {addr}: {e}"))?;
            println!("observatory: http://{}/ (also /metrics, /snapshot)", server.local_addr());
            Some(server)
        }
        _ => None,
    };

    // Sampled waveform capture of coverage-earning inputs: the hook fires
    // after each case is emitted (coordinator only), replays it on a private
    // executor, and writes the output waveform as a VCD file — pure
    // observation, so fuzzing outcomes stay byte-identical.
    let fired = Arc::new(std::sync::atomic::AtomicU64::new(0));
    if let Some(dir) = &trace_dir {
        fs::create_dir_all(dir)?;
        let compiled = tool.compiled().clone();
        let dir = dir.clone();
        let fired = fired.clone();
        tool = tool.with_trace_hook(cftcg::fuzz::TraceHook::new(move |bytes, case_id| {
            let n = fired.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if !n.is_multiple_of(trace_every) {
                return;
            }
            let mask = ProbeMask::outputs(&compiled);
            let trace = trace_vm_case(&compiled, &TestCase::new(bytes.to_vec()), &mask, 1 << 16);
            let name =
                format!("{}.vcd", cftcg::coverage::format_case_id(case_id).replace(':', "_"));
            if let Err(e) = fs::write(Path::new(&dir).join(&name), to_vcd(&trace, compiled.name()))
            {
                eprintln!("warning: failed to write trace {name}: {e}");
            }
        }));
    }

    let mut generation = if workers > 1 {
        tool.generate_parallel(Duration::from_millis(budget_ms), seed, workers)
    } else {
        tool.generate(Duration::from_millis(budget_ms), seed)
    };

    if let Some(t) = &telemetry {
        // Per-block cost attribution: replay the emitted suite (a few dozen
        // cases at most) on the observed interpreter so the "hottest blocks"
        // table and the Prometheus exposition carry per-kind timings.
        let mut profile = BlockProfile::new();
        for case in &generation.suite {
            profile_case(model, tool.compiled(), &case.bytes, &mut profile)?;
        }
        profile.merge_into(t);
        let report = tool.score(&generation);
        t.emit(&Event::CampaignEnd {
            executions: generation.executions,
            iterations: generation.iterations,
            covered: report.decision.covered,
            total: report.decision.total,
            violations: generation.violations.len(),
            elapsed_s: generation.elapsed.as_secs_f64(),
            iterations_per_second: generation.iterations_per_second(),
            operators: generation
                .operators
                .iter()
                .map(|op| OperatorReport {
                    name: op.name.to_string(),
                    executions: op.executions,
                    coverage_earning: op.coverage_earning,
                })
                .collect(),
            yields: generation.yield_reports(),
        });
        t.status_tick(true);
    }
    // JIT-tier gauges and the compile span: the cache is already warm (the
    // campaign ran on it), so reading the stats is free. Recorded before
    // the final flush so the last Prometheus rewrite carries them.
    if tool.engine() == cftcg::codegen::Engine::Jit && (telemetry.is_some() || span_trace.is_some())
    {
        if let Some(stats) = tool.compiled().jit_stats() {
            let code_bytes = (stats.probed_code_bytes + stats.noprobe_code_bytes) as u64;
            if let Some(t) = &telemetry {
                t.set_jit_stats(code_bytes, stats.compile_ns);
            }
            if let Some(trace) = &span_trace {
                // The lazy compile ran inside the engine at first
                // execution; book it at the trace epoch.
                trace.record_raw(
                    cftcg::telemetry::SpanKind::JitCompile,
                    cftcg::telemetry::COORDINATOR_TID,
                    0,
                    stats.compile_ns,
                );
            }
        }
    }
    if let Some(t) = &telemetry {
        t.flush();
    }
    // Capture forensics before minimization: the artifact describes the
    // campaign as it ran (lineage ids, first hits, emission metadata), while
    // minimization rewrites the suite for export.
    let mut artifact = out.map(|_| {
        CampaignArtifact::from_generation(
            model.name(),
            seed,
            workers,
            &generation,
            tool.compiled().map(),
        )
    });
    // Persist the registry's time series into the artifact so the offline
    // explorer can render sampled campaign progress. Attached only when
    // telemetry ran: from_generation stays deterministic on its own.
    if let (Some(artifact), Some(t)) = (&mut artifact, &telemetry) {
        artifact.series = t.series_points();
        // Span-profile summary: wall-clock attribution per engine phase,
        // available only when telemetry profiled the run.
        artifact.spans = t
            .snapshot()
            .totals
            .spans
            .reports()
            .iter()
            .map(|r| SpanSummary {
                name: r.name.to_string(),
                count: r.count,
                total_ns: r.total_ns,
                p50_ns: r.p50_ns,
                p99_ns: r.p99_ns,
            })
            .collect();
    }
    // Run-identity metadata for `cftcg diff`: which engine actually executed
    // the campaign and on what host. CLI-attached, like the series — the
    // constructor's output must stay byte-identical across engines.
    if let Some(artifact) = &mut artifact {
        artifact.engine = Some(tool.engine().name().to_string());
        artifact.host = Some(HostMeta {
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
            arch: std::env::consts::ARCH.to_string(),
        });
    }
    if minimize {
        let before = generation.suite.len();
        generation.suite = tool.minimize(&generation.suite);
        println!("minimized suite: {before} -> {} cases", generation.suite.len());
    }
    let report = tool.score(&generation);
    println!(
        "executed {} inputs / {} model iterations in {:?} ({:.0} iterations/s)",
        generation.executions,
        generation.iterations,
        generation.elapsed,
        generation.iterations_per_second()
    );
    println!("emitted {} test cases", generation.suite.len());
    println!("coverage: {report}");
    if !generation.operators.is_empty() {
        println!("mutation-operator attribution:");
        let rows: Vec<(String, u64, u64)> = generation
            .operators
            .iter()
            .map(|op| (op.name.to_string(), op.executions, op.coverage_earning))
            .collect();
        print!("{}", operator_table(&rows));
    }
    let yields = generation.yield_reports();
    if yields.iter().any(|y| y.executed > 0) {
        println!("mutation-yield matrix (per-operator outcomes):");
        print!("{}", yield_table(&yields));
    }
    if let Some(t) = &telemetry {
        let rows = t.block_costs();
        if !rows.is_empty() {
            println!("hottest blocks (interpreter replay of the emitted suite):");
            print!("{}", block_table(&rows));
        }
        let spans = t.snapshot().totals.spans;
        if !spans.is_empty() {
            println!("phase attribution (wall-clock share of profiled spans):");
            for row in spans.reports() {
                println!(
                    "  {:>16}  {:>10} spans  {:>12} ns total  p99 {:>10} ns",
                    row.name, row.count, row.total_ns, row.p99_ns
                );
            }
        }
    }
    if let Some(dir) = &trace_dir {
        let fired = fired.load(std::sync::atomic::Ordering::Relaxed);
        let written = fired.div_ceil(trace_every);
        println!("wrote {written} VCD waveforms of coverage-earning cases to {dir}/");
    }
    if !generation.violations.is_empty() {
        println!("assertion violations found:");
        for (idx, case) in &generation.violations {
            println!(
                "  {} (witness: {} iterations)",
                tool.compiled().map().assertions()[*idx],
                case.iterations(tool.compiled().layout())
            );
        }
    }
    if let Some(dir) = out {
        fs::create_dir_all(dir)?;
        for (i, case) in generation.suite.iter().enumerate() {
            let csv = test_case_to_csv(tool.compiled().layout(), case);
            fs::write(Path::new(dir).join(format!("case_{i:04}.csv")), csv)?;
        }
        if let Some(artifact) = &artifact {
            fs::write(Path::new(dir).join("campaign.json"), artifact.to_json())?;
        }
        println!("wrote {} CSV test cases and campaign.json to {dir}/", generation.suite.len());
    }
    if let (Some(path), Some(trace)) = (trace_events, &span_trace) {
        trace.write_chrome_json(Path::new(path))?;
        let dropped = trace.dropped();
        println!(
            "wrote {} span trace events to {path} (Perfetto/chrome://tracing loadable){}",
            trace.len(),
            if dropped > 0 { format!("; {dropped} dropped at capacity") } else { String::new() }
        );
    }
    if let Some(server) = server {
        server.shutdown();
    }
    Ok(())
}

/// `cftcg diff <model.mdlx> <a/campaign.json> <b/campaign.json>`: the
/// differential view of two persisted campaigns — goals gained/lost/shared
/// (with first-hit execution shifts), mutation-yield and span-profile
/// deltas, and the replay-based frontier-cause migration. Refuses
/// apples-to-oranges comparisons (different model/engine/workers/host)
/// unless `--allow-mismatch` downgrades the refusal to a loud annotation.
fn diff_cmd(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let a_path =
        rest.first().filter(|a| !a.starts_with("--")).ok_or("missing <a/campaign.json>")?;
    let b_path = rest.get(1).filter(|a| !a.starts_with("--")).ok_or("missing <b/campaign.json>")?;
    let a = CampaignArtifact::from_json(&fs::read_to_string(a_path)?)?;
    let b = CampaignArtifact::from_json(&fs::read_to_string(b_path)?)?;
    let compiled = compile(model)?;
    let diff = ArtifactDiff::compute(&a, &b);
    if !diff.mismatches.is_empty() && !rest.contains(&"--allow-mismatch".to_string()) {
        return Err(format!(
            "refusing apples-to-oranges comparison — {}; rerun with --allow-mismatch to \
             annotate instead of refusing",
            diff.mismatches.join("; ")
        )
        .into());
    }
    // The frontier migration replays both suites through the compiled
    // model; --no-frontier skips it for huge campaigns.
    let migration = if rest.contains(&"--no-frontier".to_string()) {
        None
    } else {
        let tracker_a = cftcg::compare::replay_tracker(&compiled, &a);
        let tracker_b = cftcg::compare::replay_tracker(&compiled, &b);
        Some(FrontierMigration::compute(compiled.map(), &tracker_a, &tracker_b))
    };
    print!("{}", terminal_report(&diff, migration.as_ref(), compiled.map()));
    write_diff_outputs(rest, &diff, &a, &b, migration.as_ref(), &compiled)
}

/// `cftcg ab <model.mdlx> --a SPEC --b SPEC`: the paired A/B harness.
/// Runs interleaved trials (A₁ B₁ A₂ B₂ …) with shared per-trial seeds,
/// prints median/IQR of goals-at-budget and time-to-goal, then feeds each
/// variant's representative (median-by-goals) artifact through the same
/// diff pipeline as `cftcg diff`.
fn ab_cmd(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let spec_a = VariantSpec::parse("A", flag_value(rest, "--a").unwrap_or(""))?;
    let spec_b = VariantSpec::parse("B", flag_value(rest, "--b").unwrap_or(""))?;
    let trials: usize =
        flag_value(rest, "--trials").map(str::parse).transpose()?.unwrap_or(3).max(1);
    let seed: u64 = flag_value(rest, "--seed").map(str::parse).transpose()?.unwrap_or(0);
    let budget = match flag_value(rest, "--executions") {
        Some(n) => AbBudget::Executions(n.parse()?),
        None => AbBudget::Millis(
            flag_value(rest, "--budget-ms").map(str::parse).transpose()?.unwrap_or(2_000),
        ),
    };
    let outcome = run_ab(model, &spec_a, &spec_b, trials, seed, budget)?;
    print!("{}", ab_report(&outcome, trials));
    let compiled = compile(model)?;
    let (a, b) = (&outcome.a.representative, &outcome.b.representative);
    let diff = ArtifactDiff::compute(a, b);
    let tracker_a = cftcg::compare::replay_tracker(&compiled, a);
    let tracker_b = cftcg::compare::replay_tracker(&compiled, b);
    let migration = FrontierMigration::compute(compiled.map(), &tracker_a, &tracker_b);
    print!("{}", terminal_report(&diff, Some(&migration), compiled.map()));
    write_diff_outputs(rest, &diff, a, b, Some(&migration), &compiled)
}

/// Shared tail of `diff` and `ab`: optional machine-JSON and HTML outputs,
/// plus the `results/diff_latest.html` mirror the live observatory's
/// `/diff` route serves.
fn write_diff_outputs(
    rest: &[String],
    diff: &ArtifactDiff,
    a: &CampaignArtifact,
    b: &CampaignArtifact,
    migration: Option<&FrontierMigration>,
    compiled: &CompiledModel,
) -> Result<(), Box<dyn Error>> {
    if let Some(path) = flag_value(rest, "--json") {
        fs::write(path, diff_json(diff, migration, compiled.map()))?;
        println!("wrote machine diff to {path}");
    }
    let html = diff_html(diff, a, b, migration, compiled.map());
    if let Some(path) = flag_value(rest, "--html") {
        fs::write(path, &html)?;
        println!("wrote HTML diff report to {path}");
    }
    fs::create_dir_all("results")?;
    fs::write("results/diff_latest.html", &html)?;
    println!("mirrored HTML diff report to results/diff_latest.html (served at /diff)");
    Ok(())
}

/// `cftcg explain <model.mdlx> <campaign.json> [CASE]`: without a case
/// reference, prints the campaign's coverage partition and the frontier
/// analysis of every open goal; with one (`s0:12` or a raw lineage id),
/// prints that case's full mutation lineage back to its seed and the goals
/// it was first to demonstrate.
fn explain(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let campaign_path =
        rest.first().filter(|a| !a.starts_with("--")).ok_or("missing <campaign.json>")?;
    let artifact = CampaignArtifact::from_json(&fs::read_to_string(campaign_path)?)?;
    let compiled = compile(model)?;
    let tracker = replay_tracker(&compiled, &artifact);
    let map = compiled.map();

    if let Some(case_ref) = rest.get(1) {
        let id = parse_case_id(case_ref)
            .ok_or_else(|| format!("bad case reference `{case_ref}` (expected s<shard>:<n>)"))?;
        let lineage = artifact.lineage_dag();
        let chain = lineage.chain(id);
        if chain.is_empty() {
            return Err(format!(
                "case `{case_ref}` is not in this campaign's lineage ({} records)",
                artifact.lineage.len()
            )
            .into());
        }
        let record = chain[0];
        println!(
            "case    : {} ({}, shard {}, minted at execution {})",
            cftcg::coverage::format_case_id(id),
            record.origin.tag(),
            record.shard,
            record.executions
        );
        if let Some(case) = artifact.case(id) {
            println!(
                "emitted : {} driver bytes at t={:.2}s, {} branches covered after",
                case.bytes.len(),
                case.t_s,
                case.covered_branches
            );
        } else {
            println!("emitted : no (corpus-retained only)");
        }
        println!("lineage : {}", format_chain(&chain));
        let firsts: Vec<_> = artifact.hits.iter().filter(|h| h.case == id).collect();
        if firsts.is_empty() {
            println!("goals   : none first-demonstrated by this case");
        } else {
            println!("goals first demonstrated by this case:");
            for hit in firsts {
                println!(
                    "  [{}] {} at execution {}",
                    hit.goal.metric(),
                    hit.goal.label(map),
                    hit.executions
                );
            }
        }
        return Ok(());
    }

    let report = CoverageReport::score(map, &tracker);
    let open = frontier(map, &tracker);
    println!(
        "campaign : model {} | seed {} | {} worker(s) | {} executions | {} cases",
        artifact.model,
        artifact.seed,
        artifact.workers,
        artifact.executions,
        artifact.cases.len()
    );
    println!("coverage : D {} | C {} | MCDC {}", report.decision, report.condition, report.mcdc);
    println!("goals    : {} covered with provenance, {} open", artifact.hits.len(), open.len());
    if open.is_empty() {
        println!("frontier : empty — every goal of the model is covered");
    } else {
        println!("frontier :");
        for entry in &open {
            println!("  {entry}");
        }
    }
    Ok(())
}

/// `cftcg trace <model.mdlx> <campaign.json> <CASE>`: replays one persisted
/// case on the compiled VM with signal probes attached and exports the
/// waveform as VCD (GTKWave-viewable) and optionally CSV. The probe mask
/// defaults to the outport drivers; `--probe PAT` (repeatable, substring
/// match) or `--all` widens it. `--profile` also replays the case on the
/// observed interpreter and prints the per-block cost table.
fn trace_cmd(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let campaign_path =
        rest.first().filter(|a| !a.starts_with("--")).ok_or("missing <campaign.json>")?;
    let case_ref = rest
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing <CASE> reference (s<shard>:<n>)")?;
    let artifact = CampaignArtifact::from_json(&fs::read_to_string(campaign_path)?)?;
    let id = parse_case_id(case_ref)
        .ok_or_else(|| format!("bad case reference `{case_ref}` (expected s<shard>:<n>)"))?;
    let case = artifact.case(id).ok_or_else(|| {
        format!(
            "case `{case_ref}` was not emitted by this campaign ({} cases)",
            artifact.cases.len()
        )
    })?;
    let compiled = compile(model)?;

    let patterns = flag_values(rest, "--probe");
    let names: Vec<&str> = compiled.signals().iter().map(|m| m.name.as_str()).collect();
    let mask = if rest.contains(&"--all".to_string()) {
        ProbeMask::all(names.len())
    } else if patterns.is_empty() {
        ProbeMask::outputs(&compiled)
    } else {
        ProbeMask::from_patterns(&names, &patterns)?
    };

    let trace = trace_vm_case(&compiled, &TestCase::new(case.bytes.clone()), &mask, 1 << 20);
    println!(
        "case {case_ref} ({} engine): {} ticks, {} probed signals, {} samples retained{}",
        cftcg::trace::replay_engine(),
        trace.ticks(),
        mask.len(),
        trace.len(),
        if trace.dropped() > 0 {
            format!(" ({} dropped from the ring)", trace.dropped())
        } else {
            String::new()
        }
    );
    for signal in trace.signals() {
        println!("  {} ({})", signal.name, signal.dtype);
    }
    let out = flag_value(rest, "--out").unwrap_or("trace.vcd");
    fs::write(out, to_vcd(&trace, model.name()))?;
    println!("wrote VCD waveform to {out}");
    if let Some(csv_path) = flag_value(rest, "--csv") {
        fs::write(csv_path, to_csv(&trace))?;
        println!("wrote CSV waveform to {csv_path}");
    }
    if rest.contains(&"--profile".to_string()) {
        let mut profile = BlockProfile::new();
        let ticks = profile_case(model, &compiled, &case.bytes, &mut profile)?;
        // A throwaway registry computes the mean/p99 columns for free.
        let registry = Telemetry::new();
        profile.merge_into(&registry);
        println!("per-block cost over {ticks} interpreter ticks:");
        print!("{}", block_table(&registry.block_costs()));
    }
    Ok(())
}

/// `cftcg audit <model.mdlx>`: runs the interpreter and the compiled VM in
/// lockstep and compares every signal after every tick — over the persisted
/// campaign suite when `--campaign` is given, and always over seeded random
/// fuzz-like inputs. Exits non-zero on the first divergence, printing its
/// exact tick, block path, and both values.
fn audit_cmd(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let cases: usize = flag_value(rest, "--cases").map(str::parse).transpose()?.unwrap_or(32);
    let ticks: usize = flag_value(rest, "--ticks").map(str::parse).transpose()?.unwrap_or(64);
    let seed: u64 = flag_value(rest, "--seed").map(str::parse).transpose()?.unwrap_or(0);
    let compiled = compile(model)?;
    let mut auditor = Auditor::new(model, &compiled)?;
    println!(
        "auditing {} on the {} engine: {} signals compared per tick",
        model.name(),
        cftcg::trace::replay_engine(),
        auditor.signal_count()
    );

    let mut total_cases = 0usize;
    let mut total_ticks = 0u64;
    if let Some(path) = flag_value(rest, "--campaign") {
        let artifact = CampaignArtifact::from_json(&fs::read_to_string(path)?)?;
        let corpus: Vec<(String, Vec<u8>)> = artifact
            .cases
            .iter()
            .map(|c| (cftcg::coverage::format_case_id(c.id), c.bytes.clone()))
            .collect();
        let report = auditor.audit_corpus(&corpus)?;
        if let Some(divergence) = report.divergence {
            return Err(format!("DIVERGENCE: {divergence}").into());
        }
        println!("corpus : {} cases, {} ticks — clean", report.cases, report.ticks);
        total_cases += report.cases;
        total_ticks += report.ticks;
    }
    let report = auditor.audit_random(cases, ticks, seed)?;
    if let Some(divergence) = report.divergence {
        return Err(format!("DIVERGENCE: {divergence}").into());
    }
    println!("random : {} cases x {ticks} ticks (seed {seed}) — clean", report.cases);
    total_cases += report.cases;
    total_ticks += report.ticks;
    println!(
        "audit passed: {total_cases} cases, {total_ticks} ticks, {} signals each",
        auditor.signal_count()
    );
    Ok(())
}

fn score(model: &Model, rest: &[String]) -> Result<(), Box<dyn Error>> {
    let detailed = rest.contains(&"--detailed".to_string());
    let csv_paths: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).collect();
    if csv_paths.is_empty() {
        return Err("score needs at least one <case.csv>".into());
    }
    let compiled = compile(model)?;
    let mut suite = Vec::new();
    for path in csv_paths {
        let csv = fs::read_to_string(path)?;
        suite.push(test_case_from_csv(compiled.layout(), &csv)?);
    }
    if detailed {
        let mut tracker = FullTracker::new(compiled.map());
        for case in &suite {
            replay_case(&compiled, case, &mut tracker);
        }
        print!("{}", detailed_report(compiled.map(), &tracker));
    } else {
        let report = replay_suite(&compiled, &suite);
        println!("{} test cases: {report}", suite.len());
    }
    Ok(())
}

/// Renders `(name, executions, coverage-earning)` attribution rows as an
/// aligned table with a hit-rate column, sorted by executions.
fn operator_table(rows: &[(String, u64, u64)]) -> String {
    let mut rows: Vec<&(String, u64, u64)> = rows.iter().collect();
    rows.sort_by_key(|&&(_, execs, earning)| {
        (std::cmp::Reverse(execs), std::cmp::Reverse(earning))
    });
    let width = rows.iter().map(|r| r.0.len()).max().unwrap_or(8).max("operator".len());
    let mut out = format!(
        "  {:width$}  {:>12}  {:>12}  {:>9}\n",
        "operator", "executions", "earning", "hit rate"
    );
    for (name, execs, earning) in rows {
        let rate = if *execs > 0 { 100.0 * *earning as f64 / *execs as f64 } else { 0.0 };
        out.push_str(&format!("  {name:width$}  {execs:>12}  {earning:>12}  {rate:>8.3}%\n"));
    }
    out
}

/// Renders the mutation-yield matrix (per-operator × outcome counters) as
/// an aligned table, sorted by executed inputs.
fn yield_table(rows: &[cftcg::telemetry::YieldReport]) -> String {
    let mut rows: Vec<&cftcg::telemetry::YieldReport> = rows.iter().collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.executed), std::cmp::Reverse(r.new_coverage)));
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(8).max("operator".len());
    let mut out = format!(
        "  {:width$}  {:>12}  {:>12}  {:>13}  {:>10}\n",
        "operator", "executed", "new-coverage", "corpus-insert", "violation"
    );
    for row in rows {
        out.push_str(&format!(
            "  {:width$}  {:>12}  {:>12}  {:>13}  {:>10}\n",
            row.name, row.executed, row.new_coverage, row.corpus_insert, row.violation
        ));
    }
    out
}

/// Renders the per-block-kind "hottest blocks" profile as an aligned table
/// (already sorted hottest-first by [`Telemetry::block_costs`]).
fn block_table(rows: &[BlockCost]) -> String {
    let width = rows.iter().map(|r| r.kind.len()).max().unwrap_or(4).max("kind".len());
    let mut out = format!(
        "  {:width$}  {:>12}  {:>14}  {:>10}  {:>10}\n",
        "kind", "executions", "total ns", "mean ns", "p99 ns"
    );
    for row in rows {
        out.push_str(&format!(
            "  {:width$}  {:>12}  {:>14}  {:>10.1}  {:>10}\n",
            row.kind, row.executions, row.total_ns, row.mean_ns, row.p99_ns
        ));
    }
    out
}

/// `cftcg report <stats.jsonl>`: renders a campaign event log as a summary —
/// run identity, coverage growth, violations, sync behaviour, and the
/// per-operator attribution table from the campaign-end event. With
/// `--html OUT --model M --campaign C` it instead renders the persisted
/// campaign artifact as the self-contained HTML campaign explorer.
fn report(rest: &[String]) -> Result<(), Box<dyn Error>> {
    if let Some(out) = flag_value(rest, "--html") {
        let model_path = flag_value(rest, "--model").ok_or("--html needs --model <model.mdlx>")?;
        let campaign_path =
            flag_value(rest, "--campaign").ok_or("--html needs --campaign <campaign.json>")?;
        let model = load_path(model_path)?;
        let artifact = CampaignArtifact::from_json(&fs::read_to_string(campaign_path)?)?;
        let compiled = compile(&model)?;
        let tracker = replay_tracker(&compiled, &artifact);
        let html = campaign_explorer_html(&compiled, &artifact, &tracker);
        fs::write(out, &html)?;
        println!("wrote campaign explorer to {out}");
        return Ok(());
    }
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .ok_or("missing <stats.jsonl>")?;
    let text = fs::read_to_string(path)?;
    let mut campaign: Option<Json> = None;
    let mut end: Option<Json> = None;
    let mut coverage_events = 0u64;
    let mut last_coverage: Option<(u64, u64)> = None;
    let mut violations: Vec<String> = Vec::new();
    let mut sync_rounds = 0u64;
    let mut sync_ms_total = 0.0f64;
    let mut seeds = 0u64;
    let mut evictions = 0u64;
    let mut plateaus = 0u64;
    let mut last_plateau: Option<Json> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event =
            Json::parse(line).map_err(|e| format!("{path}:{}: invalid JSONL: {e}", lineno + 1))?;
        let kind = event.get("type").and_then(Json::as_str).unwrap_or("?").to_string();
        match kind.as_str() {
            "campaign-start" => campaign = Some(event),
            "campaign-end" => end = Some(event),
            "new-coverage" => {
                coverage_events += 1;
                let covered = event.get("covered").and_then(Json::as_u64).unwrap_or(0);
                let total = event.get("total").and_then(Json::as_u64).unwrap_or(0);
                last_coverage = Some((covered, total));
            }
            "violation" => {
                let label = event.get("label").and_then(Json::as_str).unwrap_or("?").to_string();
                violations.push(label);
            }
            "sync-round" => {
                sync_rounds += 1;
                sync_ms_total += event.get("duration_ms").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "seed-added" => seeds += 1,
            "corpus-evict" => evictions += 1,
            "plateau" => {
                plateaus += 1;
                last_plateau = Some(event);
            }
            _ => {}
        }
    }

    if let Some(start) = &campaign {
        println!(
            "campaign : model {} | seed {} | {} worker(s) | budget {} ms | {} branch probes",
            start.get("model").and_then(Json::as_str).unwrap_or("?"),
            start.get("seed").and_then(Json::as_u64).unwrap_or(0),
            start.get("workers").and_then(Json::as_u64).unwrap_or(1),
            start
                .get("budget_ms")
                .and_then(Json::as_u64)
                .map_or_else(|| "?".to_string(), |v| v.to_string()),
            start.get("branch_count").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    if let Some(end) = &end {
        println!(
            "result   : {} executions / {} iterations in {:.2}s ({:.0} iterations/s)",
            end.get("executions").and_then(Json::as_u64).unwrap_or(0),
            end.get("iterations").and_then(Json::as_u64).unwrap_or(0),
            end.get("elapsed_s").and_then(Json::as_f64).unwrap_or(0.0),
            end.get("iterations_per_second").and_then(Json::as_f64).unwrap_or(0.0),
        );
        println!(
            "coverage : {}/{} branches",
            end.get("covered").and_then(Json::as_u64).unwrap_or(0),
            end.get("total").and_then(Json::as_u64).unwrap_or(0),
        );
    } else if let Some((covered, total)) = last_coverage {
        println!("coverage : {covered}/{total} branches (campaign still running)");
    }
    println!("progress : {coverage_events} new-coverage events, {seeds} seeds, {evictions} corpus evictions");
    if sync_rounds > 0 {
        println!(
            "sync     : {sync_rounds} rounds, {:.2} ms average merge cost",
            sync_ms_total / sync_rounds as f64
        );
    }
    if violations.is_empty() {
        println!("violations: none");
    } else {
        println!("violations:");
        for label in &violations {
            println!("  {label}");
        }
    }
    if let Some(last) = &last_plateau {
        println!(
            "plateaus : {plateaus} quiet window(s); last at {} executions with {} goal(s) open",
            last.get("executions").and_then(Json::as_u64).unwrap_or(0),
            last.get("open").and_then(Json::as_u64).unwrap_or(0),
        );
        if let Some(diff) = last.get("frontier").and_then(Json::as_array) {
            for row in diff.iter().take(8) {
                println!(
                    "  open: {} ({})",
                    row.get("label").and_then(Json::as_str).unwrap_or("?"),
                    row.get("cause").and_then(Json::as_str).unwrap_or("?"),
                );
            }
            if diff.len() > 8 {
                println!("  ... and {} more (see the event log)", diff.len() - 8);
            }
        }
    }
    if let Some(ops) = end.as_ref().and_then(|e| e.get("operators")).and_then(Json::as_array) {
        let rows: Vec<(String, u64, u64)> = ops
            .iter()
            .map(|op| {
                (
                    op.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                    op.get("executions").and_then(Json::as_u64).unwrap_or(0),
                    op.get("coverage_earning").and_then(Json::as_u64).unwrap_or(0),
                )
            })
            .collect();
        if !rows.is_empty() {
            println!("mutation-operator attribution:");
            print!("{}", operator_table(&rows));
        }
    }
    if let Some(yields) = end.as_ref().and_then(|e| e.get("yields")).and_then(Json::as_array) {
        let rows: Vec<cftcg::telemetry::YieldReport> = yields
            .iter()
            .map(|y| cftcg::telemetry::YieldReport {
                name: y.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                executed: y.get("executed").and_then(Json::as_u64).unwrap_or(0),
                new_coverage: y.get("new_coverage").and_then(Json::as_u64).unwrap_or(0),
                corpus_insert: y.get("corpus_insert").and_then(Json::as_u64).unwrap_or(0),
                violation: y.get("violation").and_then(Json::as_u64).unwrap_or(0),
            })
            .collect();
        if rows.iter().any(|r| r.executed > 0) {
            println!("mutation-yield matrix (per-operator outcomes):");
            print!("{}", yield_table(&rows));
        }
    }
    Ok(())
}

fn export_benchmarks(dir: &str) -> Result<(), Box<dyn Error>> {
    fs::create_dir_all(dir)?;
    for model in cftcg::benchmarks::all() {
        let path = Path::new(dir).join(format!("{}.mdlx", model.name().to_lowercase()));
        fs::write(&path, save_model(&model))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
